//! `dwapsp` — command-line front end.
//!
//! ```text
//! dwapsp gen  --family zero-heavy --n 32 --w 6 --seed 7 --out g.json
//! dwapsp run  --graph g.json --algo alg1|alg3|bf|approx [--sources 0,3,9]
//!             [--h 4] [--eps 1/2]
//! dwapsp validate --graph g.json          # run everything, diff vs Dijkstra
//! dwapsp info --graph g.json              # structural stats
//! ```
//!
//! Graphs are the JSON documents of `dw_graph::io` (n, directed, edge
//! list), so instances are easy to craft by hand or from other tools.
//!
//! The serving plane (`dw-serve`) adds a compute-once / query-forever
//! workflow:
//!
//! ```text
//! dwapsp tables  --graph g.json --out g.tables       # compute + persist
//! dwapsp serve   --tables g.tables --shards 4 --listen 127.0.0.1:7000
//! dwapsp query   --gateway 127.0.0.1:7000 --src 0 --dst 9 --path
//! dwapsp loadgen --gateway 127.0.0.1:7000 --tables g.tables --zipf 1.1
//! ```

use dwapsp::approx::approx_apsp;
use dwapsp::baselines::bf_apsp;
use dwapsp::blocker::alg3::{
    alg3_apsp, alg3_apsp_recorded, alg3_k_ssp, alg3_k_ssp_recorded, suggested_h_weight_regime,
};
use dwapsp::dynamic::{
    apply_update_batch, gen_update_batch, parse_updates, RecomputeEngine, UpdatePool,
};
use dwapsp::graph::{analysis, gen, io as gio};
use dwapsp::obs::export::{parse_jsonl, to_chrome_trace, to_jsonl};
use dwapsp::obs::report::{aggregate_phases, render_report, PhaseBound};
use dwapsp::obs::{ObsRecorder, Recorder, Recording};
use dwapsp::pipeline::bound::hk_round_bound;
use dwapsp::pipeline::runtime::run_hk_ssp_on_recorded;
use dwapsp::pipeline::{default_budget, hk_ssp_node, run_hk_ssp_chaos, ChaosConfig};
use dwapsp::prelude::*;
use dwapsp::seqref::matrices_equal;
use dwapsp::serve::{
    run_loadgen, serve_shard, shared_tables, Gateway, GatewayConfig, LoadgenConfig, QueryOutcome,
    ServeClient, ShardHandle, TableSnapshot, VersionedTables,
};
use dwapsp::transport::tcp::{
    run_coordinator_tcp, run_coordinator_tcp_mux, run_node_tcp, run_shard_tcp,
};
use dwapsp::transport::worker::TransportConfig;
use dwapsp::transport::{ChaosPlan, ShardMap};
use std::net::{SocketAddr, TcpListener};
use std::process::exit;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage_and_exit();
    };
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    match cmd.as_str() {
        "gen" => cmd_gen(&get),
        "run" => cmd_run(&get),
        "solve" => cmd_solve(&get),
        "chaos" => cmd_chaos(&get),
        "report" => cmd_report(&get),
        "run-node" => cmd_run_node(&get),
        "coordinator" => cmd_coordinator(&get),
        "tables" => cmd_tables(&get),
        "serve" => cmd_serve(&get),
        "serve-shard" => cmd_serve_shard(&get),
        "query" => cmd_query(&get),
        "update" => cmd_update(&get),
        "apply-updates" => cmd_apply_updates(&get),
        "loadgen" => cmd_loadgen(&get),
        "validate" => cmd_validate(&get),
        "info" => cmd_info(&get),
        _ => usage_and_exit(),
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage:\n  dwapsp gen --family <zero-heavy|positive|grid|grid2d|power-law|staircase|fig1> \
         [--n N] [--w W] [--attach A] [--seed S] [--out FILE]\n  dwapsp run --graph FILE --algo \
         <alg1|alg3|bf|approx> [--sources a,b,c] [--h H] [--eps NUM/DEN] [--delta D] \
         [--runtime <sim|threads[:P]|tcp[:P]>]\n  dwapsp run-node --graph FILE --node-id V \
         --listen ADDR --peers u=ADDR,w=ADDR --coordinator ADDR [--sources a,b,c] \
         [--delta D] [--timeout-secs T] [--shards P | --nodes-per-worker K]\n  \
         dwapsp run-node --maelstrom   (serve the Maelstrom node protocol on stdin/stdout)\n  \
         dwapsp coordinator --graph FILE --listen ADDR \
         [--sources a,b,c] [--budget B] [--shards P | --nodes-per-worker K]\n  \
         dwapsp solve --graph FILE [--algo <alg1|alg3>] \
         [--sources a,b,c] [--h H] [--delta D] [--runtime <sim|threads[:P]|tcp[:P]>] [--trace-out FILE] \
         [--metrics-out FILE] [--print-matrix]\n  dwapsp chaos --graph FILE \
         [--runtime <threads[:P]|tcp[:P]>] [--sources a,b,c] [--kill V@R,..] [--sever A-B@R,..] \
         [--stall R@MS,..] [--partition G1|G2@FROM[:HEAL],..] [--asym-loss U-V@FROM[:UNTIL],..] \
         [--bandwidth-cap A-B@BYTES,..] [--seed S] [--cadence <K|off>] [--deadline-ms MS] \
         [--metrics-out FILE]\n  dwapsp report --metrics FILE\n  \
         dwapsp tables --graph FILE --out FILE [--sources a,b,c] [--delta D] \
         [--runtime <sim|threads[:P]|tcp[:P]>] [--oracle]\n  \
         dwapsp serve --tables FILE [--listen ADDR] [--shards P | --shard-addrs A,B,..] \
         [--flush-us U] [--max-batch B] [--cache C] [--duration-secs T]\n  \
         dwapsp serve-shard --tables FILE --listen ADDR --shards P --shard-id S\n  \
         dwapsp query --gateway ADDR --src S --dst D [--path]\n  \
         dwapsp update --graph FILE --tables FILE --updates FILE [--batch-size B] \
         [--engine <alg1|oracle>] [--out-tables FILE] [--out-graph FILE]\n  \
         dwapsp apply-updates --graph FILE --tables FILE --updates FILE --gateway ADDR \
         [--batch-size B] [--engine <alg1|oracle>] [--out-tables FILE] [--out-graph FILE]\n  \
         dwapsp loadgen --gateway ADDR --tables FILE [--clients C] [--requests R] \
         [--zipf S] [--zipf-pairs P] [--path-fraction F] [--seed S] [--json] \
         [--update-graph FILE [--update-every-ms T] [--update-batch B] [--update-seed S] \
         [--update-engine <alg1|oracle>]]\n  \
         dwapsp validate --graph FILE\n  dwapsp info --graph FILE"
    );
    exit(2);
}

fn load(get: &impl Fn(&str) -> Option<String>) -> WGraph {
    let path = get("--graph").unwrap_or_else(|| {
        eprintln!("--graph FILE is required");
        exit(2);
    });
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    gio::from_json(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    })
}

fn cmd_gen(get: &impl Fn(&str) -> Option<String>) {
    let family = get("--family").unwrap_or_else(|| "zero-heavy".into());
    let n: usize = get("--n").map_or(32, |s| s.parse().expect("--n"));
    let w: u64 = get("--w").map_or(6, |s| s.parse().expect("--w"));
    let seed: u64 = get("--seed").map_or(1, |s| s.parse().expect("--seed"));
    let g = match family.as_str() {
        "zero-heavy" => gen::zero_heavy(n, 3.0 / n as f64, 0.4, w, true, seed),
        "positive" => gen::gnp_connected(
            n,
            3.0 / n as f64,
            true,
            gen::WeightDist::ZeroOr {
                p_zero: 0.0,
                max: w,
            },
            seed,
        ),
        "grid" => {
            let side = (n as f64).sqrt().round().max(2.0) as usize;
            gen::grid(
                side,
                side,
                false,
                gen::WeightDist::ZeroOr {
                    p_zero: 0.3,
                    max: w,
                },
                seed,
            )
        }
        "staircase" => gen::staircase(n.max(4) / 4, 4, w.max(1), true),
        "fig1" => gen::fig1_gadget(n.clamp(2, 64), w.max(1), 1, true).0,
        // Streaming large-graph families (no O(n²) intermediates): these
        // are the ones to use at 50k+ nodes.
        "grid2d" => {
            let side = (n as f64).sqrt().round().max(2.0) as usize;
            gen::grid2d(side, side, gen::WeightDist::Uniform { max: w }, seed)
        }
        "power-law" => {
            let attach: usize = get("--attach").map_or(2, |s| s.parse().expect("--attach"));
            gen::power_law(n.max(2), attach, gen::WeightDist::Uniform { max: w }, seed)
        }
        other => {
            eprintln!("unknown family {other}");
            exit(2);
        }
    };
    let json = gio::to_json(&g);
    match get("--out") {
        Some(path) => {
            std::fs::write(&path, json).expect("write graph file");
            eprintln!("wrote {} (n={}, m={})", path, g.n(), g.m());
        }
        None => println!("{json}"),
    }
}

fn parse_sources(get: &impl Fn(&str) -> Option<String>, n: usize) -> Option<Vec<NodeId>> {
    get("--sources").map(|s| {
        s.split(',')
            .map(|x| {
                let v: NodeId = x.trim().parse().expect("--sources must be node ids");
                assert!((v as usize) < n, "source {v} out of range");
                v
            })
            .collect()
    })
}

fn print_stats(prefix: &str, rounds: u64, messages: u64, link: u64) {
    println!("{prefix}: rounds={rounds} messages={messages} max-link-load={link}");
}

fn parse_runtime(get: &impl Fn(&str) -> Option<String>) -> Runtime {
    get("--runtime").map_or(Runtime::Sim, |s| {
        Runtime::parse(&s).unwrap_or_else(|| {
            eprintln!("unknown runtime {s} (expected sim, threads, tcp, threads:P or tcp:P)");
            exit(2);
        })
    })
}

fn cmd_run(get: &impl Fn(&str) -> Option<String>) {
    let g = load(get);
    let algo = get("--algo").unwrap_or_else(|| "alg1".into());
    let rt = parse_runtime(get);
    if rt != Runtime::Sim && algo != "alg1" {
        eprintln!("--runtime {} only supports --algo alg1", rt.as_str());
        exit(2);
    }
    let engine = EngineConfig::default();
    match algo.as_str() {
        "alg1" => {
            // `--delta` skips the exact Δ computation (a full sequential
            // APSP) — required on large graphs, where any sound upper
            // bound on the distances of interest keeps the run correct
            // (only the round budget depends on Δ).
            let delta_flag = get("--delta").map(|s| s.parse().expect("--delta"));
            if let Some(sources) = parse_sources(get, g.n()) {
                let delta = delta_flag.unwrap_or_else(|| max_finite_distance(&g).max(1));
                let cfg = SspConfig::k_ssp(g.n(), sources, delta);
                let (res, st, _) = run_hk_ssp_on(rt, &g, &cfg, engine).unwrap_or_else(|e| {
                    eprintln!("{} runtime failed: {e}", rt.as_str());
                    exit(1);
                });
                print_stats(
                    &format!("alg1 k-ssp [{}]", rt.as_str()),
                    st.rounds,
                    st.messages,
                    st.max_link_load,
                );
                print_matrix(&res.to_matrix());
            } else if rt == Runtime::Sim && delta_flag.is_none() {
                let (res, st, delta) = apsp_auto(&g, engine);
                print_stats(
                    &format!("alg1 apsp (Δ={delta})"),
                    st.rounds,
                    st.messages,
                    st.max_link_load,
                );
                print_matrix(&res.to_matrix());
            } else {
                let delta = delta_flag.unwrap_or_else(|| max_finite_distance(&g).max(1));
                let cfg = SspConfig::apsp(g.n(), delta);
                let (res, st, _) = run_hk_ssp_on(rt, &g, &cfg, engine).unwrap_or_else(|e| {
                    eprintln!("{} runtime failed: {e}", rt.as_str());
                    exit(1);
                });
                print_stats(
                    &format!("alg1 apsp (Δ={delta}) [{}]", rt.as_str()),
                    st.rounds,
                    st.messages,
                    st.max_link_load,
                );
                print_matrix(&res.to_matrix());
            }
        }
        "alg3" => {
            let h = get("--h").map_or_else(
                || suggested_h_weight_regime(g.n(), g.n(), g.max_weight()),
                |s| s.parse().expect("--h"),
            );
            let delta = dwapsp::seqref::max_finite_h_hop_distance(&g, 2 * h as usize).max(1);
            let out = if let Some(sources) = parse_sources(get, g.n()) {
                alg3_k_ssp(&g, &sources, h, delta, engine)
            } else {
                alg3_apsp(&g, h, delta, engine)
            };
            print_stats(
                &format!("alg3 (h={h}, |Q|={})", out.blockers.len()),
                out.stats.rounds,
                out.stats.messages,
                out.stats.max_link_load,
            );
            print_matrix(&out.matrix);
        }
        "bf" => {
            let (res, st) = bf_apsp(&g, engine);
            print_stats(
                "bellman-ford apsp",
                st.rounds,
                st.messages,
                st.max_link_load,
            );
            print_matrix(&res.to_matrix());
        }
        "approx" => {
            let eps = get("--eps").unwrap_or_else(|| "1/2".into());
            let (num, den) = eps
                .split_once('/')
                .map(|(a, b)| (a.parse().expect("--eps"), b.parse().expect("--eps")))
                .unwrap_or_else(|| (eps.parse().expect("--eps"), 1));
            let out = approx_apsp(&g, num, den, engine);
            print_stats(
                &format!("approx apsp (ε={num}/{den})"),
                out.stats.rounds,
                out.stats.messages,
                out.stats.max_link_load,
            );
            print_matrix(&out.matrix);
        }
        other => {
            eprintln!("unknown algo {other}");
            exit(2);
        }
    }
}

/// `solve`: run an algorithm under a phase recorder and emit the
/// observability artifacts — a text report on stdout, optionally a
/// JSONL event log (`--metrics-out`, readable by `dwapsp report`) and a
/// Chrome-trace file (`--trace-out`, loadable in `chrome://tracing` /
/// Perfetto).
fn cmd_solve(get: &impl Fn(&str) -> Option<String>) {
    let g = load(get);
    let algo = get("--algo").unwrap_or_else(|| "alg3".into());
    let rt = parse_runtime(get);
    let sources = parse_sources(get, g.n());
    let mut rec = ObsRecorder::new();
    rec.meta("algo", algo.clone());
    rec.meta("runtime", rt.as_str().to_string());
    rec.meta("n", g.n().to_string());

    let matrix = match algo.as_str() {
        "alg1" => {
            let delta = get("--delta").map_or_else(
                || max_finite_distance(&g).max(1),
                |s| s.parse().expect("--delta"),
            );
            let cfg = match sources {
                Some(s) => SspConfig::k_ssp(g.n(), s, delta),
                None => SspConfig::apsp(g.n(), delta),
            };
            rec.meta("k", cfg.k().to_string());
            rec.meta("h", cfg.h.to_string());
            rec.meta("delta", delta.to_string());
            let (res, _, _) =
                run_hk_ssp_on_recorded(rt, &g, &cfg, EngineConfig::default(), &mut rec)
                    .unwrap_or_else(|e| {
                        eprintln!("{} runtime failed: {e}", rt.as_str());
                        exit(1);
                    });
            res.to_matrix()
        }
        "alg3" => {
            if rt != Runtime::Sim {
                eprintln!("--algo alg3 records phases on the simulator only (use --runtime sim)");
                exit(2);
            }
            let h = get("--h").map_or_else(
                || suggested_h_weight_regime(g.n(), g.n(), g.max_weight()),
                |s| s.parse().expect("--h"),
            );
            let delta = dwapsp::seqref::max_finite_h_hop_distance(&g, 2 * h as usize).max(1);
            rec.meta("k", sources.as_ref().map_or(g.n(), Vec::len).to_string());
            rec.meta("h", h.to_string());
            rec.meta("delta", delta.to_string());
            let out = match sources {
                Some(s) => alg3_k_ssp_recorded(&g, &s, h, delta, EngineConfig::default(), &mut rec),
                None => alg3_apsp_recorded(&g, h, delta, EngineConfig::default(), &mut rec),
            };
            rec.meta("blockers", out.blockers.len().to_string());
            out.matrix
        }
        other => {
            eprintln!("solve supports --algo alg1 or alg3, not {other}");
            exit(2);
        }
    };

    let recording = rec.into_recording();
    if let Some(path) = get("--metrics-out") {
        std::fs::write(&path, to_jsonl(&recording)).expect("write metrics file");
        eprintln!("wrote {path}");
    }
    if let Some(path) = get("--trace-out") {
        std::fs::write(&path, to_chrome_trace(&recording)).expect("write trace file");
        eprintln!("wrote {path} (load in chrome://tracing or Perfetto)");
    }
    print!("{}", render_report(&recording, &phase_bounds(&recording)));
    if get("--print-matrix").is_some() {
        print_matrix(&matrix);
    }
}

/// Parse one numeric field of a chaos flag, with the flag and the whole
/// entry named in the error.
fn chaos_num(flag: &str, item: &str, x: &str) -> u64 {
    x.parse().unwrap_or_else(|_| {
        eprintln!("{flag} entry {item:?} has a non-numeric field {x:?}");
        exit(2);
    })
}

/// Parse a comma-separated fault list, e.g. `--kill 3@5,7@9`. Each item
/// is split on the given separators and handed to `build` as numbers.
fn parse_faults(spec: &str, flag: &str, seps: &[char], arity: usize) -> Vec<Vec<u64>> {
    spec.split(',')
        .map(|item| {
            let parts: Vec<u64> = item
                .trim()
                .split(seps)
                .map(|x| {
                    x.parse().unwrap_or_else(|_| {
                        eprintln!("{flag} entry {item:?} has a non-numeric field {x:?}");
                        exit(2);
                    })
                })
                .collect();
            if parts.len() != arity {
                eprintln!("{flag} entry {item:?}: expected {arity} fields");
                exit(2);
            }
            parts
        })
        .collect()
}

/// `chaos`: run Algorithm 1 on a real transport backend under a
/// scripted fault plan, then verify recovery by diffing the distances
/// against the fault-free simulator on the same instance. Exits 0 when
/// the chaos run recovers bit-identically, 1 on a distance mismatch,
/// and 3 when the faults were unrecoverable (printing the structured
/// partial outcome instead of hanging).
fn cmd_chaos(get: &impl Fn(&str) -> Option<String>) {
    let g = load(get);
    let rt = get("--runtime").map_or(Runtime::Threads, |s| {
        Runtime::parse(&s).unwrap_or_else(|| {
            eprintln!("unknown runtime {s}");
            exit(2);
        })
    });
    if rt == Runtime::Sim {
        eprintln!("chaos needs a real transport backend (--runtime threads or tcp)");
        exit(2);
    }
    let seed: u64 = get("--seed").map_or(0, |s| s.parse().expect("--seed"));
    let mut plan = ChaosPlan::new(seed);
    if let Some(spec) = get("--kill") {
        for f in parse_faults(&spec, "--kill", &['@'], 2) {
            plan = plan.with_kill(f[0] as NodeId, f[1]);
        }
    }
    if let Some(spec) = get("--sever") {
        for f in parse_faults(&spec, "--sever", &['-', '@'], 3) {
            plan = plan.with_sever(f[0] as NodeId, f[1] as NodeId, f[2]);
        }
    }
    if let Some(spec) = get("--stall") {
        for f in parse_faults(&spec, "--stall", &['@'], 2) {
            plan = plan.with_stall(f[0], f[1]);
        }
    }
    if let Some(spec) = get("--partition") {
        // `0.1.2|3.4@1:6` — dot-joined groups split by `|`, active from
        // round 1, healing at round 6 (omit `:HEAL` for a permanent cut).
        for item in spec.split(',') {
            let item = item.trim();
            let Some((grps, when)) = item.split_once('@') else {
                eprintln!("--partition entry {item:?}: expected GROUPS@FROM[:HEAL]");
                exit(2);
            };
            let groups: Vec<Vec<NodeId>> = grps
                .split('|')
                .map(|g| {
                    g.split('.')
                        .map(|x| chaos_num("--partition", item, x) as NodeId)
                        .collect()
                })
                .collect();
            let (from, heal) = match when.split_once(':') {
                Some((f, h)) => (
                    chaos_num("--partition", item, f),
                    Some(chaos_num("--partition", item, h)),
                ),
                None => (chaos_num("--partition", item, when), None),
            };
            plan = plan.with_partition(groups, from, heal);
        }
    }
    if let Some(spec) = get("--asym-loss") {
        // `3-4@0:9` drops 3→4 (one direction only) for rounds 0..9;
        // omit `:UNTIL` for a permanent one-way cut.
        for item in spec.split(',') {
            let item = item.trim();
            let (Some((link, when)), 1) = (item.split_once('@'), item.matches('@').count()) else {
                eprintln!("--asym-loss entry {item:?}: expected FROM-TO@FROM_ROUND[:UNTIL]");
                exit(2);
            };
            let Some((u, v)) = link.split_once('-') else {
                eprintln!("--asym-loss entry {item:?}: expected FROM-TO@FROM_ROUND[:UNTIL]");
                exit(2);
            };
            let (from_round, until) = match when.split_once(':') {
                Some((f, h)) => (
                    chaos_num("--asym-loss", item, f),
                    chaos_num("--asym-loss", item, h),
                ),
                None => (chaos_num("--asym-loss", item, when), dw_transport::NEVER),
            };
            plan = plan.with_asym_loss(
                chaos_num("--asym-loss", item, u) as NodeId,
                chaos_num("--asym-loss", item, v) as NodeId,
                from_round,
                until,
            );
        }
    }
    if let Some(spec) = get("--bandwidth-cap") {
        for f in parse_faults(&spec, "--bandwidth-cap", &['-', '@'], 3) {
            plan = plan.with_bandwidth_cap(f[0] as NodeId, f[1] as NodeId, f[2]);
        }
    }
    let chaos = ChaosConfig {
        plan,
        cadence: match get("--cadence").as_deref() {
            Some("off") => None,
            Some(s) => Some(s.parse().expect("--cadence")),
            None => ChaosConfig::default().cadence,
        },
        deadline: Duration::from_millis(
            get("--deadline-ms").map_or(500, |s| s.parse().expect("--deadline-ms")),
        ),
    };

    let delta = max_finite_distance(&g).max(1);
    let cfg = match parse_sources(get, g.n()) {
        Some(s) => SspConfig::k_ssp(g.n(), s, delta),
        None => SspConfig::apsp(g.n(), delta),
    };
    let engine = EngineConfig::default();
    let (reference, _, _) = run_hk_ssp_on(Runtime::Sim, &g, &cfg, engine.clone())
        .expect("fault-free simulator cannot fail");

    let mut rec = ObsRecorder::new();
    rec.meta("algo", "alg1-chaos".to_string());
    rec.meta("runtime", rt.as_str().to_string());
    rec.meta("n", g.n().to_string());
    rec.meta("chaos_seed", seed.to_string());
    let res = run_hk_ssp_chaos(rt, &g, &cfg, engine, &chaos, &mut rec);
    let recording = rec.into_recording();
    if let Some(path) = get("--metrics-out") {
        std::fs::write(&path, to_jsonl(&recording)).expect("write metrics file");
        eprintln!("wrote {path} (render the recovery timeline with `dwapsp report`)");
    }
    match res {
        Ok((res, st, outcome)) => {
            print_stats(
                &format!("alg1 chaos [{}] outcome={outcome:?}", rt.as_str()),
                st.rounds,
                st.messages,
                st.max_link_load,
            );
            let diffs = matrices_equal(&reference.to_matrix(), &res.to_matrix(), 5).len();
            if diffs == 0 {
                println!("recovered: distances bit-identical to the fault-free simulator ✓");
            } else {
                eprintln!("RECOVERY DIVERGED: {diffs} distance disagreement(s) vs simulator");
                exit(1);
            }
        }
        Err(partial) => {
            eprintln!(
                "unrecoverable: {} (round {}, failed nodes {:?}, incomplete sources {:?})",
                partial.reason, partial.round, partial.failed, partial.incomplete_sources
            );
            println!("salvaged distance upper bounds (failed columns are inf):");
            print_matrix(&partial.result.to_matrix());
            exit(3);
        }
    }
}

/// `report`: re-render the text report from a `--metrics-out` JSONL log.
fn cmd_report(get: &impl Fn(&str) -> Option<String>) {
    let path = get("--metrics").unwrap_or_else(|| {
        eprintln!("--metrics FILE (a `dwapsp solve --metrics-out` log) is required");
        exit(2);
    });
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let recording = parse_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    });
    print!("{}", render_report(&recording, &phase_bounds(&recording)));
}

/// The paper bounds the report checks phases against, derived from the
/// run meta (`k`, `h`, `delta`, `n`) the recorder stored.
fn phase_bounds(rec: &Recording) -> Vec<PhaseBound> {
    let meta_u64 = |key: &str| rec.meta_value(key).and_then(|v| v.parse::<u64>().ok());
    let (Some(k), Some(h), Some(delta)) = (meta_u64("k"), meta_u64("h"), meta_u64("delta")) else {
        return Vec::new();
    };
    let n = meta_u64("n").unwrap_or(0);
    let mut bounds: Vec<PhaseBound> = vec![
        (
            "hk_ssp",
            hk_round_bound(h, k, delta),
            "Thm I.1: 2sqrt(dhk)+k+h",
        ),
        (
            "csssp",
            hk_round_bound(2 * h, k, delta) + 2 * (k + h + 2) + n,
            "Thm I.1 at 2h + validation wave",
        ),
    ];
    // Lemma III.8 bounds one Algorithm 4 invocation; the phase occurs
    // once per selected blocker.
    let q = aggregate_phases(rec)
        .iter()
        .find(|p| p.name == "alg4_update")
        .map_or(0, |p| p.count as u64);
    if q > 0 && k + h >= 1 {
        bounds.push((
            "alg4_update",
            q * 2 * (k + h - 1),
            "Lemma III.8: |Q| x 2(k+h-1)",
        ));
    }
    bounds
}

/// The Algorithm 1 instance a distributed deployment solves. Every
/// participant derives it from the shared graph file (plus identical
/// `--sources` / `--delta` flags), so all processes agree without any
/// extra configuration channel.
fn deployment_config(get: &impl Fn(&str) -> Option<String>, g: &WGraph) -> SspConfig {
    let delta = get("--delta").map_or_else(
        || max_finite_distance(g).max(1),
        |s| s.parse().expect("--delta"),
    );
    match parse_sources(get, g.n()) {
        Some(sources) => SspConfig::k_ssp(g.n(), sources, delta),
        None => SspConfig::apsp(g.n(), delta),
    }
}

fn parse_addr(get: &impl Fn(&str) -> Option<String>, flag: &str) -> SocketAddr {
    let s = get(flag).unwrap_or_else(|| {
        eprintln!("{flag} ADDR is required");
        exit(2);
    });
    s.parse().unwrap_or_else(|e| {
        eprintln!("{flag} {s}: {e}");
        exit(2);
    })
}

/// The sharded-deployment worker count: `--shards P` directly, or
/// `--nodes-per-worker K` as `ceil(n / K)`. `None` means the classic
/// one-process-per-node layout.
fn shard_count(get: &impl Fn(&str) -> Option<String>, n: usize) -> Option<usize> {
    match (get("--shards"), get("--nodes-per-worker")) {
        (Some(_), Some(_)) => {
            eprintln!("--shards and --nodes-per-worker are mutually exclusive");
            exit(2);
        }
        (Some(p), None) => {
            let p: usize = p.parse().expect("--shards");
            assert!(p >= 1, "--shards must be >= 1");
            Some(p)
        }
        (None, Some(k)) => {
            let k: usize = k.parse().expect("--nodes-per-worker");
            assert!(k >= 1, "--nodes-per-worker must be >= 1");
            Some(n.div_ceil(k))
        }
        (None, None) => None,
    }
}

fn cmd_run_node(get: &impl Fn(&str) -> Option<String>) {
    if has_flag("--maelstrom") {
        // A true Maelstrom binary: the harness supplies the cluster over
        // stdin (init handshake), no graph or ids on the command line.
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        match dw_transport::maelstrom_serve(stdin.lock(), stdout.lock()) {
            Ok((init, stats)) => {
                eprintln!(
                    "maelstrom node {} (internal id {} of {} nodes): \
                     {} echoes, {} unsupported, {} skipped",
                    init.node_id,
                    init.internal_id(),
                    init.node_ids.len(),
                    stats.echoes,
                    stats.unsupported,
                    stats.skipped
                );
            }
            Err(e) => {
                eprintln!("maelstrom node failed: {e}");
                exit(1);
            }
        }
        return;
    }
    let g = load(get);
    let shards = shard_count(get, g.n());
    let id: NodeId = get("--node-id")
        .unwrap_or_else(|| {
            eprintln!("--node-id V is required");
            exit(2);
        })
        .parse()
        .expect("--node-id");
    if shards.is_none() {
        assert!((id as usize) < g.n(), "node id {id} out of range");
    }
    let peers: Vec<(NodeId, SocketAddr)> = get("--peers")
        .map(|s| {
            s.split(',')
                .map(|pair| {
                    let (u, addr) = pair
                        .trim()
                        .split_once('=')
                        .unwrap_or_else(|| panic!("--peers entry {pair} is not id=addr"));
                    (
                        u.parse().expect("--peers node id"),
                        addr.parse().expect("--peers address"),
                    )
                })
                .collect()
        })
        .unwrap_or_default();
    let coord = parse_addr(get, "--coordinator");
    let timeout = Duration::from_secs(
        get("--timeout-secs").map_or(30, |s| s.parse().expect("--timeout-secs")),
    );
    let cfg = deployment_config(get, &g);
    let listener = TcpListener::bind(parse_addr(get, "--listen")).unwrap_or_else(|e| {
        eprintln!("cannot listen: {e}");
        exit(1);
    });
    if let Some(p) = shards {
        // Sharded deployment: --node-id names a *shard*; this process
        // hosts every node in its contiguous block, and --peers lists
        // the adjacent shards' addresses.
        let map = ShardMap::new(g.n(), p);
        assert!(
            (id as usize) < map.shards(),
            "shard id {id} out of range (effective shards: {})",
            map.shards()
        );
        let nodes: Vec<_> = map.nodes(id).map(|v| hk_ssp_node(&cfg, v)).collect();
        let (nodes, outcome) = run_shard_tcp(
            &map,
            id,
            &g,
            &TransportConfig::default(),
            nodes,
            listener,
            &peers,
            coord,
            timeout,
        )
        .unwrap_or_else(|e| {
            eprintln!("shard {id} failed: {e}");
            exit(1);
        });
        println!(
            "shard {id}: outcome={outcome:?} nodes={}..{}",
            map.nodes(id).start,
            map.nodes(id).end
        );
        for (v, node) in map.nodes(id).zip(&nodes) {
            for &s in &cfg.sources {
                match node.best_for(s) {
                    Some(b) => println!("dist {s} -> {v}: {} (hops {})", b.d, b.l),
                    None => println!("dist {s} -> {v}: inf"),
                }
            }
        }
        return;
    }
    let node = hk_ssp_node(&cfg, id);
    let (node, outcome) = run_node_tcp(
        &g,
        &TransportConfig::default(),
        id,
        node,
        listener,
        &peers,
        coord,
        timeout,
    )
    .unwrap_or_else(|e| {
        eprintln!("node {id} failed: {e}");
        exit(1);
    });
    println!("node {id}: outcome={outcome:?}");
    for &s in &cfg.sources {
        match node.best_for(s) {
            Some(b) => println!("dist {s} -> {id}: {} (hops {})", b.d, b.l),
            None => println!("dist {s} -> {id}: inf"),
        }
    }
}

fn cmd_coordinator(get: &impl Fn(&str) -> Option<String>) {
    let g = load(get);
    let cfg = deployment_config(get, &g);
    let budget = get("--budget").map_or_else(
        || default_budget(&cfg, g.n()),
        |s| s.parse().expect("--budget"),
    );
    let listener = TcpListener::bind(parse_addr(get, "--listen")).unwrap_or_else(|e| {
        eprintln!("cannot listen: {e}");
        exit(1);
    });
    let (outcome, st) = match shard_count(get, g.n()) {
        Some(p) => {
            let participants = ShardMap::new(g.n(), p).shards();
            eprintln!("coordinator: waiting for {participants} shard workers (budget {budget})");
            run_coordinator_tcp_mux(participants, budget, listener)
        }
        None => {
            eprintln!("coordinator: waiting for {} nodes (budget {budget})", g.n());
            run_coordinator_tcp(g.n(), budget, listener)
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("coordinator failed: {e}");
        exit(1);
    });
    println!("coordinator: outcome={outcome:?}");
    print_stats("alg1 [tcp]", st.rounds, st.messages, st.max_link_load);
}

/// Presence-only flags (`--path`, `--oracle`, `--json`): the `get`
/// closure needs a following value, so test membership directly.
fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Load a table file in either format: legacy `DWT1` snapshots come
/// back as generation 0, versioned `DWD1` files (written by
/// `dwapsp update`) keep their generation.
fn load_tables(get: &impl Fn(&str) -> Option<String>) -> VersionedTables {
    let path = get("--tables").unwrap_or_else(|| {
        eprintln!("--tables FILE (written by `dwapsp tables` or `dwapsp update`) is required");
        exit(2);
    });
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    VersionedTables::from_any_file_bytes(&bytes).unwrap_or_else(|| {
        eprintln!("{path} is not a valid table snapshot (bad magic/version or corrupt payload)");
        exit(1);
    })
}

/// `tables`: compute k-SSP/APSP once — on any runtime, or with the
/// sequential Dijkstra oracle (`--oracle`) — and persist the per-source
/// distance + parent tables for the serving plane.
fn cmd_tables(get: &impl Fn(&str) -> Option<String>) {
    let g = load(get);
    let out = get("--out").unwrap_or_else(|| {
        eprintln!("--out FILE is required");
        exit(2);
    });
    let snap = if has_flag("--oracle") {
        let sources = parse_sources(get, g.n()).unwrap_or_else(|| (0..g.n() as NodeId).collect());
        let runs: Vec<_> = sources.iter().map(|&s| dijkstra(&g, s)).collect();
        TableSnapshot::from_sssp(&runs, g.n() as u32)
    } else {
        let rt = parse_runtime(get);
        let cfg = deployment_config(get, &g);
        let (res, st, _) =
            run_hk_ssp_on(rt, &g, &cfg, EngineConfig::default()).unwrap_or_else(|e| {
                eprintln!("{} runtime failed: {e}", rt.as_str());
                exit(1);
            });
        print_stats(
            &format!("alg1 tables [{}]", rt.as_str()),
            st.rounds,
            st.messages,
            st.max_link_load,
        );
        TableSnapshot::from_result(&res)
    };
    std::fs::write(&out, snap.to_file_bytes()).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    eprintln!(
        "wrote {out}: {} source rows over n={} ({} payload bytes)",
        snap.tables.len(),
        snap.n,
        snap.payload_bytes()
    );
}

/// `serve`: stand up the query plane for a persisted table snapshot.
/// Default mode spawns `--shards P` in-process shard servers plus the
/// gateway; `--shard-addrs` instead fronts externally started
/// `serve-shard` processes (shard `i` serves block `i` of the layout).
fn cmd_serve(get: &impl Fn(&str) -> Option<String>) {
    let vt = load_tables(get);
    let snap = &vt.snap;
    let cfg = GatewayConfig {
        flush_interval: Duration::from_micros(
            get("--flush-us").map_or(200, |s| s.parse().expect("--flush-us")),
        ),
        max_batch: get("--max-batch").map_or(128, |s| s.parse().expect("--max-batch")),
        cache_capacity: get("--cache").map_or(4096, |s| s.parse().expect("--cache")),
        initial_generation: vt.generation,
        ..GatewayConfig::default()
    };
    let listener = match get("--listen") {
        Some(_) => TcpListener::bind(parse_addr(get, "--listen")),
        None => TcpListener::bind(("127.0.0.1", 0)),
    }
    .unwrap_or_else(|e| {
        eprintln!("cannot listen: {e}");
        exit(1);
    });

    let mut local_shards: Vec<ShardHandle> = Vec::new();
    let (map, addrs) = if let Some(spec) = get("--shard-addrs") {
        let addrs: Vec<SocketAddr> = spec
            .split(',')
            .map(|a| {
                a.trim().parse().unwrap_or_else(|e| {
                    eprintln!("--shard-addrs {a}: {e}");
                    exit(2);
                })
            })
            .collect();
        (ShardMap::new(snap.n as usize, addrs.len()), addrs)
    } else {
        let shards: usize = get("--shards").map_or(1, |s| s.parse().expect("--shards"));
        let map = ShardMap::new(snap.n as usize, shards);
        let mut addrs = Vec::with_capacity(map.shards());
        for s in 0..map.shards() {
            let h = ShardHandle::spawn_versioned(VersionedTables {
                generation: vt.generation,
                snap: snap.for_shard(&map, s as NodeId),
            })
            .unwrap_or_else(|e| {
                eprintln!("cannot spawn shard {s}: {e}");
                exit(1);
            });
            addrs.push(h.addr);
            local_shards.push(h);
        }
        (map, addrs)
    };
    let mut gw = Gateway::spawn_on(listener, map.clone(), &addrs, cfg).unwrap_or_else(|e| {
        eprintln!("cannot start gateway: {e}");
        exit(1);
    });
    println!(
        "gateway listening on {} (tables generation {})",
        gw.addr, vt.generation
    );
    for (s, a) in addrs.iter().enumerate() {
        let block = map.nodes(s as NodeId);
        eprintln!(
            "  shard {s} at {a}: sources [{}, {})",
            block.start, block.end
        );
    }

    match get("--duration-secs") {
        Some(t) => {
            let t: u64 = t.parse().expect("--duration-secs");
            std::thread::sleep(Duration::from_secs(t));
            let st = gw.stats();
            println!(
                "served {} queries: cache-hit-rate={:.3} mean-batch={:.1} shard-unavailable={}",
                st.queries,
                st.cache_hit_rate(),
                st.mean_batch_size(),
                st.shard_unavailable
            );
            gw.shutdown();
            for h in &mut local_shards {
                h.stop();
            }
        }
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
}

/// `serve-shard`: one standalone shard worker, serving the rows of its
/// contiguous source block until killed. Pair with
/// `dwapsp serve --shard-addrs` on the gateway side.
fn cmd_serve_shard(get: &impl Fn(&str) -> Option<String>) {
    let vt = load_tables(get);
    let snap = &vt.snap;
    let shards: usize = get("--shards")
        .unwrap_or_else(|| {
            eprintln!("--shards P (the full layout size) is required");
            exit(2);
        })
        .parse()
        .expect("--shards");
    let id: NodeId = get("--shard-id")
        .unwrap_or_else(|| {
            eprintln!("--shard-id S is required");
            exit(2);
        })
        .parse()
        .expect("--shard-id");
    let map = ShardMap::new(snap.n as usize, shards);
    assert!(
        (id as usize) < map.shards(),
        "shard id {id} out of range (effective shards: {})",
        map.shards()
    );
    let sub = snap.for_shard(&map, id);
    let listener = TcpListener::bind(parse_addr(get, "--listen")).unwrap_or_else(|e| {
        eprintln!("cannot listen: {e}");
        exit(1);
    });
    let block = map.nodes(id);
    eprintln!(
        "shard {id} serving {} source rows [{}, {}) on {} (generation {})",
        sub.tables.len(),
        block.start,
        block.end,
        listener.local_addr().unwrap(),
        vt.generation
    );
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let tables = shared_tables(VersionedTables {
        generation: vt.generation,
        snap: sub,
    });
    if let Err(e) = serve_shard(listener, tables, stop) {
        eprintln!("shard {id} failed: {e}");
        exit(1);
    }
}

/// `query`: one point-to-point lookup against a running gateway. Exits
/// 0 on an answer (including "unreachable"), 3 on degraded mode
/// (`ShardUnavailable`), 2 on a malformed query.
fn cmd_query(get: &impl Fn(&str) -> Option<String>) {
    let gateway = parse_addr(get, "--gateway");
    let src: NodeId = get("--src")
        .unwrap_or_else(|| {
            eprintln!("--src S is required");
            exit(2);
        })
        .parse()
        .expect("--src");
    let dst: NodeId = get("--dst")
        .unwrap_or_else(|| {
            eprintln!("--dst D is required");
            exit(2);
        })
        .parse()
        .expect("--dst");
    let mut client = ServeClient::connect(gateway, Duration::from_secs(5)).unwrap_or_else(|e| {
        eprintln!("cannot connect to gateway {gateway}: {e}");
        exit(1);
    });
    let outcome = client
        .query(src, dst, has_flag("--path"))
        .unwrap_or_else(|e| {
            eprintln!("query failed: {e}");
            exit(1);
        });
    match outcome {
        QueryOutcome::Dist { dist } => println!("dist {src} -> {dst}: {dist}"),
        QueryOutcome::Path { dist, path } => {
            let hops: Vec<String> = path.iter().map(|v| v.to_string()).collect();
            println!("dist {src} -> {dst}: {dist}");
            println!("path: {}", hops.join(" -> "));
        }
        QueryOutcome::Unreachable => println!("dist {src} -> {dst}: inf"),
        QueryOutcome::UnknownSource => {
            eprintln!("source {src} has no computed table row");
            exit(2);
        }
        QueryOutcome::OutOfRange => {
            eprintln!("src/dst out of the table's node range");
            exit(2);
        }
        QueryOutcome::ShardUnavailable { shard, lo, hi } => {
            eprintln!("degraded: shard {shard} (sources [{lo}, {hi})) is unavailable");
            exit(3);
        }
    }
}

fn parse_engine(get: &impl Fn(&str) -> Option<String>, flag: &str) -> RecomputeEngine {
    match get(flag).as_deref() {
        None | Some("alg1") => RecomputeEngine::Alg1,
        Some("oracle") => RecomputeEngine::Oracle,
        Some(other) => {
            eprintln!("{flag} {other}: expected alg1 or oracle");
            exit(2);
        }
    }
}

fn print_update_report(r: &dwapsp::dynamic::UpdateReport) {
    println!(
        "batch {} -> generation {}: recomputed {}/{} rows ({:.1}%), edges +{} -{} ~{} ({} noops), \
         delta={}, patch {}us solve {}us",
        r.seq,
        r.generation,
        r.recomputed,
        r.recomputed + r.reused,
        100.0 * r.recomputed_fraction(),
        r.inserted,
        r.removed,
        r.reweighted,
        r.noops,
        r.delta,
        r.patch_micros,
        r.solve_micros
    );
}

/// Shared front half of `update` / `apply-updates`: load the graph, the
/// tables (either format) and the update file, drain the pool through
/// the incremental engine in `--batch-size` batches, and return the
/// patched graph plus the final table generation.
fn run_update_batches(get: &impl Fn(&str) -> Option<String>) -> (WGraph, VersionedTables) {
    let mut g = load(get);
    let mut vt = load_tables(get);
    if vt.snap.n as usize != g.n() {
        eprintln!(
            "tables cover n={} but the graph has n={}; recompute with `dwapsp tables`",
            vt.snap.n,
            g.n()
        );
        exit(2);
    }
    let upath = get("--updates").unwrap_or_else(|| {
        eprintln!("--updates FILE (`ins u v w` / `set u v w` / `del u v` lines) is required");
        exit(2);
    });
    let text = std::fs::read_to_string(&upath).unwrap_or_else(|e| {
        eprintln!("cannot read {upath}: {e}");
        exit(1);
    });
    let updates = parse_updates(&text).unwrap_or_else(|e| {
        eprintln!("{upath}: {e}");
        exit(2);
    });
    let engine = parse_engine(get, "--engine");
    let batch_size: usize =
        get("--batch-size").map_or(updates.len().max(1), |s| s.parse().expect("--batch-size"));
    let mut pool = UpdatePool::new();
    pool.extend(updates);
    while let Some(batch) = pool.take_batch(batch_size) {
        match apply_update_batch(&mut g, &vt, &batch, engine) {
            Ok((next, report)) => {
                print_update_report(&report);
                vt = next;
            }
            Err(e) => {
                eprintln!(
                    "batch {} rejected, graph and tables unchanged: {e}",
                    batch.seq
                );
                exit(1);
            }
        }
    }
    (g, vt)
}

fn write_update_outputs(get: &impl Fn(&str) -> Option<String>, g: &WGraph, vt: &VersionedTables) {
    if let Some(out) = get("--out-tables") {
        std::fs::write(&out, vt.to_file_bytes()).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            exit(1);
        });
        eprintln!(
            "wrote {out}: generation {} ({} source rows over n={})",
            vt.generation,
            vt.snap.tables.len(),
            vt.snap.n
        );
    }
    if let Some(out) = get("--out-graph") {
        std::fs::write(&out, gio::to_json(g)).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            exit(1);
        });
        eprintln!("wrote {out}: patched graph (n={}, m={})", g.n(), g.m());
    }
}

/// `update`: offline incremental recompute. Patches the graph with a
/// batch file, re-solves only the rows the tight/slack invalidation
/// rule marks dirty, and persists the next `DWD1` generation.
fn cmd_update(get: &impl Fn(&str) -> Option<String>) {
    let (g, vt) = run_update_batches(get);
    write_update_outputs(get, &g, &vt);
}

/// `apply-updates`: the online variant — recompute incrementally, then
/// push the new generation to a running gateway, which swaps every
/// shard atomically without dropping in-flight queries. Exits 3 when
/// the swap was degraded (some shard down).
fn cmd_apply_updates(get: &impl Fn(&str) -> Option<String>) {
    let gateway = parse_addr(get, "--gateway");
    let (g, vt) = run_update_batches(get);
    let mut client = ServeClient::connect(gateway, Duration::from_secs(30)).unwrap_or_else(|e| {
        eprintln!("cannot connect to gateway {gateway}: {e}");
        exit(1);
    });
    let rep = client
        .apply_tables(vt.generation, &vt.snap)
        .unwrap_or_else(|e| {
            eprintln!("apply failed: {e}");
            exit(1);
        });
    println!(
        "apply generation {}: accepted={} shards-installed={} shards-down={}",
        rep.generation, rep.accepted, rep.shards_installed, rep.shards_down
    );
    write_update_outputs(get, &g, &vt);
    if !rep.accepted {
        exit(3);
    }
}

/// `loadgen`: the closed-loop generator behind BENCH_7 — reports
/// sustained QPS and client-observed latency percentiles. With
/// `--update-graph`, a background updater thread applies seeded
/// incremental batches through the gateway while the query load runs,
/// exercising the mixed query + swap path end to end.
fn cmd_loadgen(get: &impl Fn(&str) -> Option<String>) {
    let gateway = parse_addr(get, "--gateway");
    let vt = load_tables(get);
    let sources: Vec<NodeId> = vt.snap.tables.iter().map(|t| t.source).collect();
    let cfg = LoadgenConfig {
        clients: get("--clients").map_or(4, |s| s.parse().expect("--clients")),
        requests_per_client: get("--requests").map_or(1000, |s| s.parse().expect("--requests")),
        path_fraction: get("--path-fraction").map_or(0.5, |s| s.parse().expect("--path-fraction")),
        zipf: get("--zipf").map(|s| s.parse().expect("--zipf")),
        zipf_pairs: get("--zipf-pairs").map_or(10_000, |s| s.parse().expect("--zipf-pairs")),
        seed: get("--seed").map_or(1, |s| s.parse().expect("--seed")),
        ..LoadgenConfig::default()
    };

    // Mixed stream: a background updater recomputes + swaps table
    // generations through the gateway while the query load runs.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let updater = get("--update-graph").map(|gpath| {
        let interval = Duration::from_millis(
            get("--update-every-ms").map_or(200, |s| s.parse().expect("--update-every-ms")),
        );
        let batch_size: usize =
            get("--update-batch").map_or(8, |s| s.parse().expect("--update-batch"));
        let seed: u64 =
            get("--update-seed").map_or(cfg.seed ^ 0xD15C0, |s| s.parse().expect("--update-seed"));
        let engine = parse_engine(get, "--update-engine");
        let text = std::fs::read_to_string(&gpath).unwrap_or_else(|e| {
            eprintln!("cannot read {gpath}: {e}");
            exit(1);
        });
        let mut g = gio::from_json(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {gpath}: {e}");
            exit(1);
        });
        if g.n() != vt.snap.n as usize {
            eprintln!(
                "--update-graph has n={} but the tables cover n={}",
                g.n(),
                vt.snap.n
            );
            exit(2);
        }
        let mut vt = vt.clone();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let Ok(mut client) = ServeClient::connect(gateway, Duration::from_secs(5)) else {
                return (0u64, 0u64);
            };
            let max_w = g.max_weight().max(1);
            let (mut swaps, mut accepted) = (0u64, 0u64);
            for seq in 0u64.. {
                std::thread::sleep(interval);
                if stop.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                let batch = gen_update_batch(&g, seq, batch_size, max_w, &mut rng);
                let Ok((next, _)) = apply_update_batch(&mut g, &vt, &batch, engine) else {
                    break;
                };
                vt = next;
                match client.apply_tables(vt.generation, &vt.snap) {
                    Ok(rep) => {
                        swaps += 1;
                        if rep.accepted {
                            accepted += 1;
                        }
                    }
                    Err(_) => break,
                }
            }
            (swaps, accepted)
        })
    });

    let report = run_loadgen(gateway, &sources, vt.snap.n, &cfg).unwrap_or_else(|e| {
        eprintln!("loadgen failed: {e}");
        exit(1);
    });
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let swap_stats = updater.map(|h| h.join().expect("updater thread"));

    if has_flag("--json") {
        let swap_suffix = swap_stats.map_or(String::new(), |(s, a)| {
            format!(",\"swaps\":{s},\"swaps_accepted\":{a}")
        });
        println!(
            "{{\"queries\":{},\"ok\":{},\"shard_unavailable\":{},\"errors\":{},\"wall_ms\":{},\
             \"qps\":{:.1},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}{}}}",
            report.queries,
            report.ok,
            report.shard_unavailable,
            report.errors,
            report.wall.as_millis(),
            report.qps,
            report.p50_us,
            report.p95_us,
            report.p99_us,
            swap_suffix
        );
    } else {
        let mix = cfg
            .zipf
            .map_or("uniform".to_string(), |s| format!("zipf({s})"));
        println!(
            "loadgen [{mix}]: {} queries in {:?} ({:.0} qps, {} clients)",
            report.queries, report.wall, report.qps, cfg.clients
        );
        println!(
            "latency: p50={}us p95={}us p99={}us; shard-unavailable={} errors={}",
            report.p50_us, report.p95_us, report.p99_us, report.shard_unavailable, report.errors
        );
        if let Some((s, a)) = swap_stats {
            println!(
                "updates: {s} generation swaps applied mid-run ({a} accepted by the whole fleet)"
            );
        }
    }
}

fn print_matrix(m: &DistMatrix) {
    for (i, &s) in m.sources.iter().enumerate() {
        let row: Vec<String> = (0..m.n() as NodeId)
            .map(|v| {
                let d = m.at(i, v);
                if d == INFINITY {
                    "inf".into()
                } else {
                    d.to_string()
                }
            })
            .collect();
        println!("{s}: {}", row.join(" "));
    }
}

fn cmd_validate(get: &impl Fn(&str) -> Option<String>) {
    let g = load(get);
    let reference = apsp_dijkstra(&g);
    let engine = EngineConfig::default();
    let mut failures = 0;

    let (a1, _, _) = apsp_auto(&g, engine.clone());
    failures += report_diff("alg1", matrices_equal(&reference, &a1.to_matrix(), 5).len());

    let (bf, _) = bf_apsp(&g, engine.clone());
    failures += report_diff("bf", matrices_equal(&reference, &bf.to_matrix(), 5).len());

    let h = suggested_h_weight_regime(g.n(), g.n(), g.max_weight());
    let delta = dwapsp::seqref::max_finite_h_hop_distance(&g, 2 * h as usize).max(1);
    let a3 = alg3_apsp(&g, h, delta, engine.clone());
    failures += report_diff("alg3", matrices_equal(&reference, &a3.matrix, 5).len());

    let ap = approx_apsp(&g, 1, 2, engine);
    let mut ratio_bad = 0usize;
    for s in g.nodes() {
        for v in g.nodes() {
            let d = reference.from_source(s, v).unwrap();
            let e = ap.matrix.from_source(s, v).unwrap();
            let ok = match (d, e) {
                (INFINITY, e) => e == INFINITY,
                (d, e) => e >= d && 2 * e <= 3 * d || (d == 0 && e == 0),
            };
            if !ok {
                ratio_bad += 1;
            }
        }
    }
    failures += report_diff("approx(ε=1/2 ratio)", ratio_bad);

    if failures == 0 {
        println!("all algorithms validated against sequential Dijkstra ✓");
    } else {
        eprintln!("{failures} validation failure(s)");
        exit(1);
    }
}

fn report_diff(name: &str, diffs: usize) -> usize {
    if diffs == 0 {
        println!("{name}: ok");
        0
    } else {
        println!("{name}: {diffs} DISAGREEMENT(S)");
        1
    }
}

fn cmd_info(get: &impl Fn(&str) -> Option<String>) {
    let g = load(get);
    let st = analysis::stats(&g);
    println!("n={} m={} directed={}", st.n, st.m, st.directed);
    println!(
        "weights: max={} zero-edges={} ({:.0}%)",
        st.max_weight,
        st.zero_edges,
        100.0 * st.zero_edges as f64 / st.m.max(1) as f64
    );
    println!(
        "comm degree: min={} max={} avg={:.2}",
        st.min_comm_degree, st.max_comm_degree, st.avg_comm_degree
    );
    println!("comm connected: {}", analysis::comm_connected(&g));
    if let Some(d) = analysis::comm_diameter(&g) {
        println!("comm diameter: {d}");
    }
    println!("Δ (max finite distance): {}", max_finite_distance(&g));
}
