//! The paper's closing open problem, running: Gabow-scaling APSP on top
//! of the zero-weight-capable pipeline.
//!
//! Per-scale *reduced costs* are frequently zero even when the input has
//! no zero-weight edge — which is exactly why the paper's machinery is
//! the prerequisite for this technique. Watch the per-scale rounds stay
//! flat while W (and Δ) grow, versus Algorithm 1's √Δ growth.
//!
//! ```text
//! cargo run -p dwapsp --example scaling_future --release
//! ```

use dwapsp::pipeline::scaling_apsp;
use dwapsp::prelude::*;

fn main() {
    println!(
        "{:>6} {:>6} {:>14} {:>16} {:>8} {:>16}",
        "W", "Δ", "alg1 rounds", "scaling rounds", "scales", "max scale rounds"
    );
    for w in [4u64, 16, 64, 256, 1024] {
        let g = gen::gnp_connected(
            16,
            0.12,
            true,
            gen::WeightDist::ZeroOr {
                p_zero: 0.0,
                max: w,
            },
            1300 + w,
        );
        let reference = apsp_dijkstra(&g);
        let delta = reference.max_finite();

        let (a1, a1_st, _) = apsp(&g, delta.max(1), EngineConfig::default());
        assert_eq!(reference, a1.to_matrix(), "Algorithm 1 exact");

        let sc = scaling_apsp(&g, EngineConfig::default());
        assert_eq!(reference, sc.matrix, "scaling exact");

        println!(
            "{:>6} {:>6} {:>14} {:>16} {:>8} {:>16}",
            w,
            delta,
            a1_st.rounds,
            sc.stats.rounds,
            sc.scales,
            sc.per_scale_rounds.iter().copied().max().unwrap_or(0)
        );
    }
    println!();
    println!("scaling rounds = (flat per-scale cost) × log₂W — the shape the Conclusion is after.");
    println!("every run verified against sequential Dijkstra ✓");
}
