//! Why zero-weight edges matter: the classical weight-expansion pipeline
//! (replace an edge of weight w by w unit edges) silently breaks when
//! zero-weight edges are present, while Algorithm 1's composite key
//! `κ = d·γ + l` handles them exactly. This is the paper's Section I
//! motivation, reproduced.
//!
//! ```text
//! cargo run -p dwapsp --example zero_weights
//! ```

use dwapsp::baselines::delayed_bfs_apsp;
use dwapsp::prelude::*;
use dwapsp::seqref::matrices_equal;

fn main() {
    let mut broke = 0usize;
    let mut total = 0usize;
    for seed in 0..8u64 {
        let g = gen::zero_heavy(18, 0.2, 0.6, 5, true, seed);
        let delta = max_finite_distance(&g).max(1);
        let reference = apsp_dijkstra(&g);

        // The classical approach: pipelined weight-expansion ("delayed
        // BFS"), schedule r = d + pos. Exact for positive weights...
        let (out, _) = delayed_bfs_apsp(&g, delta, EngineConfig::default());
        let wrong = matrices_equal(&reference, &out.matrix, usize::MAX).len();

        // ...the pipelined Algorithm 1 with the composite key: exact.
        let (alg1, _, _) = apsp(&g, delta, EngineConfig::default());
        let alg1_wrong = matrices_equal(&reference, &alg1.to_matrix(), usize::MAX).len();
        assert_eq!(alg1_wrong, 0, "Algorithm 1 must be exact");

        total += 1;
        if wrong > 0 || out.stranded > 0 {
            broke += 1;
            println!(
                "seed {seed}: weight-expansion broke ({wrong} wrong entries, {} stranded estimates); Algorithm 1 exact ✓",
                out.stranded
            );
        } else {
            println!("seed {seed}: both exact (zero edges happened to be harmless here)");
        }
    }
    println!();
    println!(
        "weight-expansion failed on {broke}/{total} zero-heavy instances; Algorithm 1 failed on 0/{total}"
    );
    assert!(broke > 0, "expected at least one failure across seeds");
}
