//! Quickstart: exact weighted APSP on a small network with zero-weight
//! edges, via the paper's pipelined Algorithm 1.
//!
//! ```text
//! cargo run -p dwapsp --example quickstart
//! ```

use dwapsp::prelude::*;

fn main() {
    // A delivery network: 8 depots, directed roads, some free transfers
    // (weight 0 — the case classical distributed APSP methods cannot
    // handle).
    let mut b = GraphBuilder::new(8, true);
    b.extend([
        (0, 1, 3),
        (1, 2, 0), // free transfer
        (2, 3, 4),
        (0, 4, 1),
        (4, 5, 0), // free transfer
        (5, 3, 2),
        (3, 6, 5),
        (6, 7, 0),
        (5, 7, 9),
        (7, 0, 2),
    ]);
    let g = b.build();

    // Run APSP. Δ (the max shortest-path distance) is discovered by
    // guess-and-double; the run is exact on convergence.
    let (result, stats, delta) = apsp_auto(&g, EngineConfig::default());

    println!(
        "pipelined APSP on n={} nodes (Δ discovered = {delta})",
        g.n()
    );
    println!(
        "rounds: {}   messages: {}   max link load: {}",
        stats.rounds, stats.messages, stats.max_link_load
    );
    println!();
    println!("distance matrix (rows = sources):");
    for s in g.nodes() {
        let row: Vec<String> = g
            .nodes()
            .map(|v| {
                let d = result.dist[s as usize][v as usize];
                if d == INFINITY {
                    "  ∞".into()
                } else {
                    format!("{d:3}")
                }
            })
            .collect();
        println!("  {s}: [{}]", row.join(" "));
    }

    // Every node also knows the last edge of a shortest path, so routes
    // can be reconstructed hop by hop:
    let (src, dst) = (0u32, 6u32);
    let mut path = vec![dst];
    let mut cur = dst;
    while let Some(p) = result.parent[src as usize][cur as usize] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    println!();
    println!(
        "shortest route {src} -> {dst} (weight {}): {path:?}",
        result.dist[src as usize][dst as usize]
    );

    // Cross-check against a centralized reference.
    let reference = apsp_dijkstra(&g);
    assert_eq!(reference, result.to_matrix());
    println!("verified against sequential Dijkstra ✓");
}
