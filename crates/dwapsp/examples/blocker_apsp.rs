//! Algorithm 3 end-to-end: APSP via CSSSP + blocker set + per-blocker
//! SSSP + broadcast + local combine, with the per-step round breakdown
//! the analysis of Lemma III.2 talks about.
//!
//! ```text
//! cargo run -p dwapsp --example blocker_apsp
//! ```

use dwapsp::blocker::alg3::{alg3_apsp, suggested_h_weight_regime};
use dwapsp::prelude::*;

fn main() {
    let n = 26;
    let w_max = 5;
    let g = gen::zero_heavy(n, 0.15, 0.4, w_max, true, 7);
    println!(
        "workload: n={n}, m={}, W={w_max}, zero edges: {}",
        g.m(),
        g.zero_weight_edges()
    );

    // Small h to force real blocker work (the theory-suggested h for this
    // tiny n would cover the whole graph and leave nothing to block).
    for h in [2u64, 3, 4, suggested_h_weight_regime(n, n, w_max)] {
        let delta2h = dwapsp::seqref::max_finite_h_hop_distance(&g, 2 * h as usize).max(1);
        let out = alg3_apsp(&g, h, delta2h, EngineConfig::default());

        // exactness
        let reference = apsp_dijkstra(&g);
        assert_eq!(reference, out.matrix, "Algorithm 3 must be exact");

        println!();
        println!("h = {h}:");
        println!(
            "  blocker set Q ({} nodes): {:?}",
            out.blockers.len(),
            out.blockers
        );
        println!(
            "  rounds: step1 CSSSP {}, step2 blocker {}, step3 SSSPs {}, step4 broadcasts {} — total {}",
            out.step1_rounds,
            out.step2_rounds,
            out.step3_rounds,
            out.step4_rounds,
            out.stats.rounds
        );
        println!(
            "  Algorithm 4 diagnostics: max rounds {}, max per-round inbox {} (Lemma III.8 bound k+h-1 = {})",
            out.blocker.alg4_max_rounds,
            out.blocker.alg4_max_inbox,
            n as u64 + h - 1
        );
    }
    println!();
    println!("all runs verified against sequential Dijkstra ✓");
}
