//! The (1+ε)-approximate APSP of Theorem I.5: accuracy/rounds trade-off
//! across ε, on graphs with zero-weight edges.
//!
//! ```text
//! cargo run -p dwapsp --example approx_tradeoff
//! ```

use dwapsp::prelude::*;

fn main() {
    let g = gen::zero_heavy(20, 0.18, 0.5, 8, true, 11);
    let exact = apsp_dijkstra(&g);
    let exact_delta = exact.max_finite();
    println!(
        "workload: n={}, m={}, zero edges {}, Δ={exact_delta}",
        g.n(),
        g.m(),
        g.zero_weight_edges()
    );
    println!();
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>12}",
        "ε", "rounds", "zero-phase", "pos-phase", "worst ratio"
    );

    for (num, den) in [(2u64, 1u64), (1, 1), (1, 2), (1, 4), (1, 8)] {
        let out = approx_apsp(&g, num, den, EngineConfig::default());
        let mut worst: f64 = 1.0;
        for s in g.nodes() {
            for v in g.nodes() {
                let d = exact.from_source(s, v).unwrap();
                let e = out.matrix.from_source(s, v).unwrap();
                match (d, e) {
                    (INFINITY, e) => assert_eq!(e, INFINITY),
                    (0, e) => assert_eq!(e, 0, "zero closure must be exact"),
                    (d, e) => {
                        assert!(e >= d, "never underestimates");
                        worst = worst.max(e as f64 / d as f64);
                        assert!(
                            e as f64 <= (1.0 + num as f64 / den as f64) * d as f64 + 1e-9,
                            "ratio bound"
                        );
                    }
                }
            }
        }
        println!(
            "{:<8} {:>8} {:>12} {:>12} {:>12.4}",
            format!("{num}/{den}"),
            out.stats.rounds,
            out.zero_rounds,
            out.positive_rounds,
            worst
        );
    }
    println!();
    println!(
        "smaller ε buys accuracy with more rounds — the O((n/ε²)·log n) trade of Theorem I.5 ✓"
    );
}
