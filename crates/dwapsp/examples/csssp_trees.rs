//! Fig. 1, live: h-hop shortest-path parent pointers need not form trees
//! of height <= h, and the CSSSP construction (run Algorithm 1 with 2h
//! hops, keep the initial h hops) repairs this.
//!
//! ```text
//! cargo run -p dwapsp --example csssp_trees
//! ```

use dwapsp::graph::gen;
use dwapsp::pipeline::csssp::{check_consistency, parent_chain_hops};
use dwapsp::prelude::*;

fn main() {
    let h = 4usize;
    let (g, nd) = gen::fig1_gadget(h, 7, 1, true);
    println!("the Fig. 1 gadget (h = {h}):");
    println!(
        "  s={} --0--> ... --0--> a={} (h hops, weight 0)",
        nd.s, nd.a
    );
    println!("  s={} --------7-------> a={} (1 hop)", nd.s, nd.a);
    println!("  a={} --1--> t={}", nd.a, nd.t);
    println!();

    // Raw h-hop run: t's parent chain passes through a's h-hop zero path.
    let delta_h = dwapsp::seqref::max_finite_h_hop_distance(&g, h).max(1);
    let cfg = SspConfig::new(vec![nd.s], h as u64, delta_h);
    let (raw, _, _) = run_hk_ssp(&g, &cfg, EngineConfig::default());
    let chain = parent_chain_hops(&raw, 0, nd.t).unwrap();
    println!(
        "raw h-hop run: δ⁴(s,t) = {} via parent a; but following parent pointers from t ",
        raw.dist[0][nd.t as usize]
    );
    println!("takes {chain} hops (> h = {h}) because a's own recorded path is the zero route.");
    assert!(chain > h as u64);

    // The cure: CSSSP.
    let delta_2h = dwapsp::seqref::max_finite_h_hop_distance(&g, 2 * h).max(1);
    let (c, _) = build_csssp(&g, &[nd.s], h as u64, delta_2h, EngineConfig::default());
    check_consistency(&g, &c).expect("CSSSP must be consistent");
    println!();
    println!(
        "CSSSP (2h trick): tree height {} <= h, consistency verified ✓",
        c.height(0)
    );
    println!(
        "  a in tree: {} (depth {}), t in tree: {} — t's only distance-1 route needs {} hops,",
        c.in_tree(0, nd.a),
        c.hops[0][nd.a as usize],
        c.in_tree(0, nd.t),
        h + 1
    );
    println!("  so Definition III.3 correctly leaves t out of the h-hop tree.");

    // Chained gadgets amplify the pathology.
    println!();
    for copies in [2usize, 4, 8] {
        let (g, nds) = gen::fig1_chain(h, copies, 7, true);
        let delta_h = dwapsp::seqref::max_finite_h_hop_distance(&g, h).max(1);
        let cfg = SspConfig::new(vec![nds[0].s], h as u64, delta_h);
        let (raw, _, _) = run_hk_ssp(&g, &cfg, EngineConfig::default());
        let worst = g
            .nodes()
            .filter_map(|v| parent_chain_hops(&raw, 0, v))
            .max()
            .unwrap();
        let delta_2h = dwapsp::seqref::max_finite_h_hop_distance(&g, 2 * h).max(1);
        let (c, _) = build_csssp(&g, &[nds[0].s], h as u64, delta_2h, EngineConfig::default());
        check_consistency(&g, &c).unwrap();
        println!(
            "{copies} chained gadgets (n={}): naive chain {worst} hops, CSSSP height {} ✓",
            g.n(),
            c.height(0)
        );
    }
}
