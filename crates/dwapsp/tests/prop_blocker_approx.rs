//! Property tests over the Section III and Section IV pipelines:
//! arbitrary random graphs, arbitrary parameters — blocker coverage,
//! Algorithm 3 exactness, and the (1+ε) sandwich, every time.

use dwapsp::blocker::alg3::alg3_apsp;
use dwapsp::blocker::{find_blocker_set, verify_blocker_coverage, TreeKnowledge};
use dwapsp::prelude::*;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = WGraph> {
    (4usize..=12).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0u64..=8), n..3 * n);
        (Just(n), edges, any::<bool>()).prop_map(|(n, edges, directed)| {
            let mut b = GraphBuilder::new(n, directed);
            for (s, d, w) in edges {
                b.add_edge(s, d, w);
            }
            // backbone so at least something is connected
            for v in 1..n as u32 {
                b.add_edge(v - 1, v, 1);
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn blocker_pipeline_covers_and_drains(g in arb_graph(), h in 2u64..5) {
        let delta = dwapsp::seqref::max_finite_h_hop_distance(&g, 2 * h as usize).max(1);
        let sources: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let (c, _) = build_csssp(&g, &sources, h, delta, EngineConfig::default());
        let know = TreeKnowledge::from_csssp(&c);
        let out = find_blocker_set(&g, &know, EngineConfig::default());
        prop_assert!(verify_blocker_coverage(&know, &out.blockers).is_ok());
        prop_assert!(out.final_scores.iter().flatten().all(|&s| s == 0));
        prop_assert!(out.alg4_max_inbox <= 2, "near-Lemma III.6 behaviour");
    }

    #[test]
    fn alg3_exact_on_arbitrary_graphs(g in arb_graph(), h in 2u64..5) {
        let delta = dwapsp::seqref::max_finite_h_hop_distance(&g, 2 * h as usize).max(1);
        let out = alg3_apsp(&g, h, delta, EngineConfig::default());
        let reference = apsp_dijkstra(&g);
        let diffs = dwapsp::seqref::matrices_equal(&reference, &out.matrix, 3);
        prop_assert!(diffs.is_empty(), "{diffs:?}");
    }

    #[test]
    fn approx_sandwich_on_arbitrary_graphs(g in arb_graph(), den in 1u64..5) {
        let out = approx_apsp(&g, 1, den, EngineConfig::default());
        let exact = apsp_dijkstra(&g);
        for s in g.nodes() {
            for v in g.nodes() {
                let d = exact.from_source(s, v).unwrap();
                let e = out.matrix.from_source(s, v).unwrap();
                match d {
                    INFINITY => prop_assert_eq!(e, INFINITY),
                    0 => prop_assert_eq!(e, 0),
                    d => {
                        prop_assert!(e >= d, "{s}->{v}: {e} < {d}");
                        prop_assert!(
                            e * den <= d * (den + 1),
                            "{s}->{v}: {e} > (1+1/{den})·{d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scaling_apsp_exact_on_arbitrary_graphs(g in arb_graph()) {
        let out = dwapsp::pipeline::scaling_apsp(&g, EngineConfig::default());
        let reference = apsp_dijkstra(&g);
        let diffs = dwapsp::seqref::matrices_equal(&reference, &out.matrix, 3);
        prop_assert!(diffs.is_empty(), "{diffs:?}");
    }
}
