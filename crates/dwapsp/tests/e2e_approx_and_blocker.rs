//! End-to-end coverage of the Section III/IV pipelines: CSSSP + blocker
//! machinery diagnostics, and the (1+ε) approximation guarantee.

use dwapsp::blocker::{find_blocker_set, verify_blocker_coverage, TreeKnowledge};
use dwapsp::pipeline::csssp::check_consistency;
use dwapsp::prelude::*;

#[test]
fn blocker_pipeline_full_stack() {
    for seed in 0..3u64 {
        let g = gen::zero_heavy(18, 0.18, 0.5, 5, true, seed);
        let h = 3u64;
        let delta = dwapsp::seqref::max_finite_h_hop_distance(&g, 2 * h as usize).max(1);
        let sources: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let (c, _) = build_csssp(&g, &sources, h, delta, EngineConfig::default());
        let know = TreeKnowledge::from_csssp(&c);
        let out = find_blocker_set(&g, &know, EngineConfig::default());
        verify_blocker_coverage(&know, &out.blockers).unwrap();
        // all scores consumed
        assert!(out.final_scores.iter().flatten().all(|&s| s == 0));
    }
}

#[test]
fn csssp_consistency_rate_is_high() {
    // Definition III.3's cross-tree clause holds in the vast majority of
    // instances; hop-boundary cases may fail it (reproduction finding
    // documented in EXPERIMENTS.md) without affecting any end-to-end
    // theorem. We require a high measured rate rather than perfection.
    let mut consistent = 0;
    let total = 10;
    for seed in 0..total {
        let g = gen::zero_heavy(16, 0.18, 0.5, 5, true, seed);
        let h = 4u64;
        let delta = dwapsp::seqref::max_finite_h_hop_distance(&g, 2 * h as usize).max(1);
        let sources: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let (c, _) = build_csssp(&g, &sources, h, delta, EngineConfig::default());
        if check_consistency(&g, &c).is_ok() {
            consistent += 1;
        }
    }
    // Measured rate at slack 2 is ~60-80% on dense zero-heavy graphs
    // (experiment E4b's ablation shows it rising to 100% with more
    // slack). Guard against regressions below half.
    assert!(
        consistent * 2 >= total,
        "consistency rate {consistent}/{total} below 50%"
    );
}

#[test]
fn approx_ratio_sandwich() {
    for seed in 0..2u64 {
        let g = gen::zero_heavy(12, 0.25, 0.5, 6, true, seed);
        let exact = apsp_dijkstra(&g);
        for (num, den) in [(1u64, 1u64), (1, 3)] {
            let out = approx_apsp(&g, num, den, EngineConfig::default());
            for s in g.nodes() {
                for v in g.nodes() {
                    let d = exact.from_source(s, v).unwrap();
                    let e = out.matrix.from_source(s, v).unwrap();
                    if d == INFINITY {
                        assert_eq!(e, INFINITY);
                    } else {
                        assert!(e >= d);
                        assert!(e * den <= d * (den + num) || d == 0 && e == 0);
                    }
                }
            }
        }
    }
}

#[test]
fn approx_handles_pure_zero_components() {
    // two zero components bridged by a heavy edge
    let mut b = GraphBuilder::new(6, true);
    b.add_edge(0, 1, 0).add_edge(1, 2, 0).add_edge(2, 0, 0);
    b.add_edge(3, 4, 0).add_edge(4, 5, 0);
    b.add_edge(2, 3, 7);
    let g = b.build();
    let out = approx_apsp(&g, 1, 2, EngineConfig::default());
    assert_eq!(out.matrix.from_source(0, 2), Some(0));
    assert_eq!(out.matrix.from_source(3, 5), Some(0));
    let e = out.matrix.from_source(0, 5).unwrap();
    assert!((7..=10).contains(&e), "7 <= {e} <= (1+ε)·7");
    assert_eq!(out.matrix.from_source(5, 0), Some(INFINITY));
}
