//! Golden-file regression tests: small, fully deterministic E2- and
//! E5-style workloads (plus one fault-injected recovery run) rendered to
//! text and compared against checked-in snapshots.
//!
//! Any engine, scheduler or pipeline change that alters rounds, message
//! counts or distances shows up here as a readable diff. To accept an
//! intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p dwapsp --test golden_regression
//! ```
//!
//! and commit the rewritten files under `tests/golden/`.

use dwapsp::congest::{EngineConfig, FaultPlan, RunStats};
use dwapsp::pipeline::recovery::{run_hk_ssp_reliable, RecoveryConfig};
use dwapsp::prelude::*;
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {path:?} ({e}); create it with UPDATE_GOLDEN=1")
    });
    assert_eq!(
        expected, actual,
        "golden mismatch for {name}; if intentional, rerun with UPDATE_GOLDEN=1 and commit"
    );
}

fn fmt_dist(d: Weight) -> String {
    if d == INFINITY {
        "INF".to_string()
    } else {
        d.to_string()
    }
}

fn render_stats(out: &mut String, st: &RunStats) {
    writeln!(out, "rounds          {}", st.rounds).unwrap();
    writeln!(out, "rounds_executed {}", st.rounds_executed).unwrap();
    writeln!(out, "messages        {}", st.messages).unwrap();
    writeln!(out, "total_words     {}", st.total_words).unwrap();
    writeln!(out, "max_link_load   {}", st.max_link_load).unwrap();
    writeln!(out, "max_node_sends  {}", st.max_node_sends).unwrap();
}

fn render_matrix(out: &mut String, dist: &[Vec<Weight>]) {
    writeln!(out, "dist matrix").unwrap();
    for row in dist {
        let cells: Vec<String> = row.iter().map(|&d| fmt_dist(d)).collect();
        writeln!(out, "  {}", cells.join(" ")).unwrap();
    }
}

/// E2 in miniature: exact APSP by pipelined Algorithm 1 on the standard
/// zero-heavy workload.
#[test]
fn golden_e2_small_apsp() {
    let g = gen::zero_heavy(16, 0.75, 0.5, 6, true, 77);
    let delta = max_finite_distance(&g).max(1);
    let (res, stats, _) = apsp(&g, delta, EngineConfig::default());

    let mut out = String::new();
    writeln!(
        out,
        "workload zero-heavy n={} m={} delta={}",
        g.n(),
        g.m(),
        delta
    )
    .unwrap();
    render_stats(&mut out, &stats);
    render_matrix(&mut out, &res.dist);
    check_golden("e2_small_apsp.txt", &out);
}

/// E5 in miniature: short-range h-hop SSSP (rounds, per-node sends and
/// distances) for two hop budgets.
#[test]
fn golden_e5_short_range() {
    let g = gen::gnp_connected(14, 0.85, false, gen::WeightDist::Uniform { max: 9 }, 13);
    let delta = max_finite_distance(&g).max(1);

    let mut out = String::new();
    writeln!(
        out,
        "workload positive n={} m={} delta={}",
        g.n(),
        g.m(),
        delta
    )
    .unwrap();
    for h in [4u64, 9] {
        let (res, stats) = short_range_sssp(&g, 0, h, delta, EngineConfig::default());
        writeln!(out, "h={h}").unwrap();
        writeln!(out, "  rounds {}", stats.rounds).unwrap();
        writeln!(out, "  messages {}", stats.messages).unwrap();
        let sends: Vec<String> = res.sends.iter().map(u64::to_string).collect();
        writeln!(out, "  sends {}", sends.join(" ")).unwrap();
        let dist: Vec<String> = res.dist.iter().map(|&d| fmt_dist(d)).collect();
        writeln!(out, "  dist {}", dist.join(" ")).unwrap();
    }
    check_golden("e5_short_range.txt", &out);
}

/// The fault layer itself, pinned end to end: a seeded 5%-drop plan
/// through the recovery stack. Fault decisions, retransmissions and the
/// degradation report are all deterministic, so the full report is a
/// stable regression anchor.
#[test]
fn golden_e14_faulted_recovery() {
    let g = gen::zero_heavy(12, 0.3, 0.4, 5, true, 42);
    let delta = max_finite_distance(&g).max(1);
    let cfg = SspConfig::apsp(g.n(), delta);
    let engine = EngineConfig {
        faults: Some(FaultPlan::drop_only(0xD0_5E, 0.05)),
        ..EngineConfig::default()
    };
    let (res, rep) = run_hk_ssp_reliable(&g, &cfg, engine, &RecoveryConfig::default());

    let mut out = String::new();
    writeln!(
        out,
        "workload zero-heavy n={} m={} delta={}",
        g.n(),
        g.m(),
        delta
    )
    .unwrap();
    writeln!(out, "plan drop_only seed=0xD05E p=0.05").unwrap();
    writeln!(out, "rounds          {}", rep.rounds).unwrap();
    writeln!(out, "base_rounds     {}", rep.base_rounds).unwrap();
    writeln!(out, "extra_rounds    {}", rep.extra_rounds).unwrap();
    writeln!(out, "retries         {}", rep.retries).unwrap();
    writeln!(out, "late_sends      {}", rep.late_sends).unwrap();
    writeln!(out, "outcome         {:?}", rep.outcome).unwrap();
    writeln!(out, "dropped         {}", rep.stats.dropped).unwrap();
    writeln!(out, "data_sent       {}", rep.reliable.data_sent).unwrap();
    writeln!(out, "acks_sent       {}", rep.reliable.acks_sent).unwrap();
    writeln!(out, "delivered       {}", rep.reliable.delivered).unwrap();
    render_matrix(&mut out, &res.dist);
    check_golden("e14_faulted_recovery.txt", &out);
}
