//! The routes, not just the distances: every algorithm's parent pointers
//! must reconstruct into real paths of exactly the claimed weight —
//! checked on the structured topologies (tree, torus, barbell, expander).

use dwapsp::prelude::*;
use dwapsp::seqref::verify_sssp_witnesses;

fn families() -> Vec<(String, WGraph)> {
    let zo = |max| gen::WeightDist::ZeroOr { p_zero: 0.3, max };
    vec![
        ("binary_tree".into(), gen::binary_tree(15, false, zo(5), 1)),
        ("torus".into(), gen::torus(4, 4, zo(4), 2)),
        ("barbell".into(), gen::barbell(5, 4, zo(6), 3)),
        ("expander".into(), gen::expanderish(18, 4, zo(5), 4)),
    ]
}

#[test]
fn alg1_parent_tables_are_witnesses() {
    for (name, g) in families() {
        let delta = max_finite_distance(&g).max(1);
        let (res, _, _) = apsp(&g, delta, EngineConfig::default());
        for (i, &s) in res.sources.iter().enumerate() {
            verify_sssp_witnesses(&g, s, &res.dist[i], &res.parent[i])
                .unwrap_or_else(|e| panic!("{name}, source {s}: {e}"));
        }
    }
}

#[test]
fn bf_parent_tables_are_witnesses() {
    for (name, g) in families() {
        let (res, _) = bf_apsp(&g, EngineConfig::default());
        for (i, &s) in res.sources.iter().enumerate() {
            verify_sssp_witnesses(&g, s, &res.dist[i], &res.parent[i])
                .unwrap_or_else(|e| panic!("{name}, source {s}: {e}"));
        }
    }
}

#[test]
fn short_range_parents_are_witnesses() {
    for (name, g) in families() {
        let delta = max_finite_distance(&g).max(1);
        for h in [2u64, 4, g.n() as u64] {
            let (res, _) = short_range_sssp(&g, 0, h, delta, EngineConfig::default());
            // the recorded walk must be a real path of the claimed weight
            verify_sssp_witnesses(&g, 0, &res.dist, &res.parent)
                .unwrap_or_else(|e| panic!("{name}, h={h}: {e}"));
        }
    }
}

#[test]
fn structured_families_apsp_exact() {
    for (name, g) in families() {
        let (res, _, _) = apsp_auto(&g, EngineConfig::default());
        dwapsp::seqref::assert_matrices_equal(&apsp_dijkstra(&g), &res.to_matrix(), &name);
    }
}
