//! End-to-end k-SSP (Theorem I.1(iii) and Algorithm 3's k-source mode).

use dwapsp::blocker::alg3::alg3_k_ssp;
use dwapsp::prelude::*;
use dwapsp::seqref::{assert_matrices_equal, k_source_dijkstra};

#[test]
fn pipelined_k_ssp_exact() {
    for seed in 0..3 {
        let g = gen::zero_heavy(20, 0.18, 0.5, 6, true, seed);
        let sources = vec![1u32, 5, 9, 13];
        let delta = max_finite_distance(&g).max(1);
        let (res, stats, _) = k_ssp(&g, sources.clone(), delta, EngineConfig::default());
        assert_matrices_equal(&k_source_dijkstra(&g, &sources), &res.to_matrix(), "k-ssp");
        // Theorem I.1(iii): 2√(Δkn) + n + k
        let bound = dwapsp::pipeline::hk_round_bound(g.n() as u64, sources.len() as u64, delta);
        assert!(stats.rounds <= bound);
    }
}

#[test]
fn alg3_k_ssp_exact() {
    for seed in 0..2 {
        let g = gen::zero_heavy(16, 0.2, 0.4, 5, true, 50 + seed);
        let sources = vec![0u32, 7, 11];
        for h in [2u64, 3] {
            let delta = dwapsp::seqref::max_finite_h_hop_distance(&g, 2 * h as usize).max(1);
            let out = alg3_k_ssp(&g, &sources, h, delta, EngineConfig::default());
            assert_matrices_equal(
                &k_source_dijkstra(&g, &sources),
                &out.matrix,
                &format!("alg3 k-ssp h={h}"),
            );
        }
    }
}

#[test]
fn single_source_is_k_equals_one() {
    let g = gen::zero_heavy(18, 0.2, 0.5, 6, true, 9);
    let delta = max_finite_distance(&g).max(1);
    let (res, _, _) = k_ssp(&g, vec![4], delta, EngineConfig::default());
    let reference = dijkstra(&g, 4);
    for v in g.nodes() {
        assert_eq!(res.dist[0][v as usize], reference.dist[v as usize]);
    }
}

#[test]
fn k_ssp_parent_edges_exist_and_decompose() {
    let g = gen::zero_heavy(15, 0.25, 0.4, 4, true, 77);
    let delta = max_finite_distance(&g).max(1);
    let sources = vec![2u32, 8];
    let (res, _, _) = k_ssp(&g, sources.clone(), delta, EngineConfig::default());
    for (i, &s) in sources.iter().enumerate() {
        for v in g.nodes() {
            if let Some(p) = res.parent[i][v as usize] {
                let w = g.edge_weight(p, v).expect("parent edge in G");
                assert_eq!(
                    res.dist[i][v as usize],
                    res.dist[i][p as usize] + w,
                    "distance decomposes along the recorded last edge ({s}->{v})"
                );
            }
        }
    }
}
