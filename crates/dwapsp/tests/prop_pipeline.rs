//! Property-based tests (proptest): the pipelined algorithm against the
//! sequential references on arbitrary random graphs, and the exact key
//! arithmetic against a high-precision model.

use dwapsp::pipeline::Gamma;
use dwapsp::prelude::*;
use dwapsp::seqref::assert_matrices_equal;
use proptest::prelude::*;

/// Strategy: a random directed graph given as an edge list over `n <= 14`
/// nodes, weights `0..=6` (zero-weight edges likely).
fn arb_graph() -> impl Strategy<Value = WGraph> {
    (3usize..=14).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0u64..=6), 0..(3 * n));
        (Just(n), edges, any::<bool>()).prop_map(|(n, edges, directed)| {
            let mut b = GraphBuilder::new(n, directed);
            for (s, d, w) in edges {
                b.add_edge(s, d, w);
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alg1_apsp_matches_dijkstra(g in arb_graph()) {
        let delta = max_finite_distance(&g).max(1);
        let cfg = SspConfig::apsp(g.n(), delta);
        let (res, stats, rep) =
            dwapsp::pipeline::invariants::run_with_report(&g, &cfg, EngineConfig::default());
        assert_matrices_equal(&apsp_dijkstra(&g), &res.to_matrix(), "proptest apsp");
        // The theorem bound covers the convergence round and is asserted
        // whenever the run was healthy (Invariants 1-2 held, no re-armed
        // announcements; see E2/E3).
        let _ = &stats;
        if rep.holds() && rep.late_sends == 0 {
            let bound = dwapsp::pipeline::apsp_round_bound(g.n(), delta);
            prop_assert!(rep.convergence_round <= bound);
        }
    }

    #[test]
    fn alg1_hops_are_minimal_among_shortest(g in arb_graph()) {
        let delta = max_finite_distance(&g).max(1);
        let (res, _, _) = apsp(&g, delta, EngineConfig::default());
        for s in g.nodes() {
            let reference = dwapsp::seqref::bellman_ford(&g, s);
            for v in g.nodes() {
                let vi = v as usize;
                if reference[vi].is_reachable() {
                    prop_assert_eq!(res.hops[s as usize][vi], u64::from(reference[vi].hops),
                        "minimal hop count for {}->{}", s, v);
                }
            }
        }
    }

    #[test]
    fn key_comparator_is_total_order(
        k in 1u64..=32, h in 1u64..=32, delta in 1u64..=64,
        pts in proptest::collection::vec((0u64..100, 0u64..40), 3)
    ) {
        let g = Gamma::new(k, h, delta);
        let (a, b, c) = (pts[0], pts[1], pts[2]);
        // antisymmetry
        let ab = g.cmp_kappa(a.0, a.1, b.0, b.1);
        prop_assert_eq!(g.cmp_kappa(b.0, b.1, a.0, a.1), ab.reverse());
        // transitivity
        let bc = g.cmp_kappa(b.0, b.1, c.0, c.1);
        if ab == bc {
            prop_assert_eq!(g.cmp_kappa(a.0, a.1, c.0, c.1), ab);
        }
        // consistency with ceil: κa < κb ⇒ ⌈κa⌉ <= ⌈κb⌉
        if ab == std::cmp::Ordering::Less {
            prop_assert!(g.ceil_kappa(a.0, a.1) <= g.ceil_kappa(b.0, b.1));
        }
    }

    #[test]
    fn ceil_kappa_is_exact_ceiling(
        k in 1u64..=32, h in 1u64..=32, delta in 1u64..=64,
        d in 0u64..1000, l in 0u64..100
    ) {
        let g = Gamma::new(k, h, delta);
        let m = (g.ceil_kappa(d, l) - l) as u128;
        let rhs = (d as u128) * (d as u128) * g.kh();
        // m = ⌈d·γ⌉ ⇔ m²Δ >= d²kh and (m-1)²Δ < d²kh
        prop_assert!(m * m * g.delta() >= rhs);
        if m > 0 {
            prop_assert!((m - 1) * (m - 1) * g.delta() < rhs);
        }
    }

    #[test]
    fn short_range_contract(g in arb_graph(), h in 1u64..=8) {
        let delta = max_finite_distance(&g).max(1);
        let (res, _) = short_range_sssp(&g, 0, h, delta, EngineConfig::default());
        let exact = dwapsp::seqref::bellman_ford(&g, 0);
        for v in g.nodes() {
            let vi = v as usize;
            if exact[vi].is_reachable() && u64::from(exact[vi].hops) <= h {
                prop_assert_eq!(res.dist[vi], exact[vi].dist);
            } else if res.dist[vi] != INFINITY {
                prop_assert!(res.dist[vi] >= exact[vi].dist);
                prop_assert!(res.hops[vi] <= h);
            }
        }
    }
}
