//! End-to-end conformance of the paper's algorithms on the real
//! message-passing runtimes: Algorithm 1 (pipelined (h,k)-SSP),
//! Algorithm 2 (short-range), and the `Reliable`-wrapped short-range
//! protocol must produce bit-identical results, `RunStats` and
//! outcomes on the thread and loopback-TCP backends versus the
//! lockstep simulator — on multiple seeded graphs, with and without
//! an injected `FaultPlan`.

use dwapsp::congest::{
    EngineConfig, FaultPlan, Network, Reliable, ReliableConfig, RunOutcome, RunStats,
};
use dwapsp::graph::gen;
use dwapsp::graph::WGraph;
use dwapsp::obs::NullRecorder;
use dwapsp::pipeline::short_range::{extract_instance, short_range_gamma, ShortRangeNode};
use dwapsp::pipeline::{run_hk_ssp_chaos, ChaosConfig};
use dwapsp::prelude::*;
use dwapsp::transport::channels::run_threads;
use dwapsp::transport::tcp::run_tcp_loopback;
use dwapsp::transport::worker::TransportConfig;
use dwapsp::transport::ChaosPlan;
use std::time::Duration;

fn graphs() -> Vec<(u64, WGraph)> {
    [71, 72, 73]
        .into_iter()
        .map(|seed| (seed, gen::zero_heavy(10, 0.3, 0.35, 5, true, seed)))
        .collect()
}

fn fault_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed ^ 0x5eed)
        .with_drop(0.08)
        .with_duplicate(0.04)
        .with_delay(0.1, 3)
}

fn engine(faults: Option<FaultPlan>) -> EngineConfig {
    EngineConfig {
        faults,
        ..EngineConfig::default()
    }
}

#[test]
fn alg1_conforms_across_seeds_and_runtimes() {
    for (seed, g) in graphs() {
        let delta = max_finite_distance(&g).max(1);
        let cfg = SspConfig::apsp(g.n(), delta);
        let sim = run_hk_ssp_on(Runtime::Sim, &g, &cfg, engine(None)).unwrap();
        for rt in [Runtime::Threads, Runtime::Tcp] {
            let got = run_hk_ssp_on(rt, &g, &cfg, engine(None)).unwrap();
            assert_eq!(got, sim, "seed {seed} runtime {}", rt.as_str());
        }
    }
}

#[test]
fn alg1_conforms_under_faults() {
    for (seed, g) in graphs() {
        let delta = max_finite_distance(&g).max(1);
        let cfg = SspConfig::k_ssp(g.n(), vec![0, (g.n() / 2) as NodeId], delta);
        let sim = run_hk_ssp_on(Runtime::Sim, &g, &cfg, engine(Some(fault_plan(seed)))).unwrap();
        for rt in [Runtime::Threads, Runtime::Tcp] {
            let got = run_hk_ssp_on(rt, &g, &cfg, engine(Some(fault_plan(seed)))).unwrap();
            assert_eq!(got, sim, "seed {seed} runtime {}", rt.as_str());
        }
    }
}

#[test]
fn short_range_conforms_across_seeds() {
    for (seed, g) in graphs() {
        let delta = max_finite_distance(&g).max(1);
        let h = g.n() as u64;
        let sim = short_range_sssp_on(Runtime::Sim, &g, 0, h, delta, engine(None)).unwrap();
        for rt in [Runtime::Threads, Runtime::Tcp] {
            let got = short_range_sssp_on(rt, &g, 0, h, delta, engine(None)).unwrap();
            assert_eq!(got, sim, "seed {seed} runtime {}", rt.as_str());
        }
    }
}

#[test]
fn short_range_conforms_under_faults() {
    for (seed, g) in graphs() {
        let delta = max_finite_distance(&g).max(1);
        let h = g.n() as u64;
        let plan = fault_plan(seed ^ 1);
        let sim =
            short_range_sssp_on(Runtime::Sim, &g, 0, h, delta, engine(Some(plan.clone()))).unwrap();
        for rt in [Runtime::Threads, Runtime::Tcp] {
            let got = short_range_sssp_on(rt, &g, 0, h, delta, engine(Some(plan.clone()))).unwrap();
            assert_eq!(got, sim, "seed {seed} runtime {}", rt.as_str());
        }
    }
}

/// The fault machinery itself is conformant, counter by counter: under
/// the same seeded `FaultPlan`, the simulator and both transports must
/// report bit-identical `dropped` / `duplicated` / `delayed` /
/// `late_delivered` tallies (not just equal totals — each fault decision
/// is driven by the same per-message hash, so the ledgers must agree
/// entry for entry), and the plan must actually exercise every fault
/// type so the equality is not vacuous.
#[test]
fn fault_counters_match_bit_for_bit_across_runtimes() {
    let mut late_total = 0u64;
    for (seed, g) in graphs() {
        let delta = max_finite_distance(&g).max(1);
        let cfg = SspConfig::apsp(g.n(), delta);
        let plan = fault_plan(seed);
        let (_, sim, _) =
            run_hk_ssp_on(Runtime::Sim, &g, &cfg, engine(Some(plan.clone()))).unwrap();
        assert!(
            sim.dropped > 0 && sim.duplicated > 0 && sim.delayed > 0,
            "seed {seed}: plan must exercise every fault type \
             (dropped={} duplicated={} delayed={})",
            sim.dropped,
            sim.duplicated,
            sim.delayed
        );
        late_total += sim.late_delivered;
        for rt in [Runtime::Threads, Runtime::Tcp] {
            let (_, st, _) = run_hk_ssp_on(rt, &g, &cfg, engine(Some(plan.clone()))).unwrap();
            for ((name, want), (_, got)) in sim.fields().iter().zip(st.fields().iter()) {
                assert_eq!(
                    got,
                    want,
                    "seed {seed} runtime {}: {name} diverges from sim",
                    rt.as_str()
                );
            }
        }
    }
    assert!(
        late_total > 0,
        "across all seeds some delayed message must have arrived late"
    );
}

/// Crash-fault tolerance end to end: kill one node mid-run on each
/// real backend, let checkpoint/restore and neighbor replay bring it
/// back, and require the recovered run's distances, stats and outcome
/// to be bit-identical to the fault-free simulator's.
#[test]
fn chaos_kill_recovers_bit_identical_across_runtimes() {
    for (seed, g) in graphs() {
        let delta = max_finite_distance(&g).max(1);
        let cfg = SspConfig::apsp(g.n(), delta);
        let sim = run_hk_ssp_on(Runtime::Sim, &g, &cfg, engine(None)).unwrap();
        let chaos = ChaosConfig {
            plan: ChaosPlan::new(seed).with_kill((g.n() / 2) as NodeId, 4),
            cadence: Some(3),
            deadline: Duration::from_millis(500),
        };
        for rt in [Runtime::Threads, Runtime::Tcp] {
            let got = run_hk_ssp_chaos(rt, &g, &cfg, engine(None), &chaos, &mut NullRecorder)
                .unwrap_or_else(|p| {
                    panic!("seed {seed} {}: unrecoverable: {}", rt.as_str(), p.reason)
                });
            assert_eq!(got, sim, "seed {seed} runtime {}", rt.as_str());
        }
    }
}

/// The reliability layer (seq/ack retransmission) composes with the
/// transports exactly as with the simulator: same retransmit schedule,
/// same recovered distances, same fault tally.
#[test]
fn reliable_short_range_conforms_under_drops() {
    for (seed, g) in graphs() {
        let delta = max_finite_distance(&g).max(1);
        let h = g.n() as u64;
        let gamma = short_range_gamma(h);
        let budget = 4 * (gamma.ceil_kappa(delta.max(1), h) + 2) + 64;
        let plan = FaultPlan::new(seed ^ 0xd00d).with_drop(0.15);
        let make = |v: NodeId| {
            Reliable::new(
                ShortRangeNode::new(gamma, h, (v == 0).then_some(0)),
                ReliableConfig::default(),
            )
        };

        let mut net = Network::new(&g, engine(Some(plan.clone())), make);
        let sim_outcome = net.run(budget);
        let sim_stats = net.stats();
        let sim_inner: Vec<ShortRangeNode> = net
            .into_nodes()
            .into_iter()
            .map(|r| r.into_inner())
            .collect();
        let sim_res = extract_instance(0, &sim_inner);
        assert!(
            sim_stats.dropped > 0,
            "seed {seed}: plan must drop messages"
        );

        let tcfg = TransportConfig {
            faults: Some(plan.clone()),
            ..TransportConfig::default()
        };
        let runs: Vec<(&str, _, RunStats, RunOutcome)> = vec![
            {
                let r = run_threads(&g, &tcfg, budget, make).unwrap();
                ("threads", r.nodes, r.stats, r.outcome)
            },
            {
                let r = run_tcp_loopback(&g, &tcfg, budget, make).unwrap();
                ("tcp", r.nodes, r.stats, r.outcome)
            },
        ];
        for (name, nodes, stats, outcome) in runs {
            assert_eq!(outcome, sim_outcome, "seed {seed} {name}");
            assert_eq!(stats, sim_stats, "seed {seed} {name}");
            let inner: Vec<ShortRangeNode> = nodes.into_iter().map(|r| r.into_inner()).collect();
            assert_eq!(extract_instance(0, &inner), sim_res, "seed {seed} {name}");
        }
    }
}
