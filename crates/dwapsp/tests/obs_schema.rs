//! Observability wire-format regression tests.
//!
//! A fully deterministic recorded Algorithm 3 run is exported to the
//! JSONL event log and the Chrome-trace document and compared against
//! checked-in snapshots under `tests/golden/`, so any change to the
//! `dwapsp-obs-v1` schema (or to the recorded phase decomposition
//! itself) shows up as a readable diff. Accept intentional changes with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p dwapsp --test obs_schema
//! ```
//!
//! The suite also pins the parse → re-export round trip (byte
//! identical) and the runtime-independence of recordings: the same
//! Algorithm 1 workload recorded on the simulator and on the thread
//! transport must produce equal spans and round samples.

use dwapsp::obs::export::{parse_jsonl, to_chrome_trace, to_jsonl, JSONL_SCHEMA};
use dwapsp::pipeline::runtime::run_hk_ssp_on_recorded;
use dwapsp::prelude::*;
use dwapsp::seqref::max_finite_h_hop_distance;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {path:?} ({e}); create it with UPDATE_GOLDEN=1")
    });
    assert_eq!(
        expected, actual,
        "golden mismatch for {name}; if intentional, rerun with UPDATE_GOLDEN=1 and commit"
    );
}

/// The fixed workload behind both golden fixtures: small enough to keep
/// the JSONL readable, rich enough to exercise every phase (blockers
/// are forced by h much smaller than n), deterministic by construction.
fn recorded_alg3_run() -> Recording {
    let g = gen::zero_heavy(14, 0.18, 0.4, 5, true, 3);
    let h = 3;
    let delta = max_finite_h_hop_distance(&g, 2 * h as usize).max(1);
    let mut rec = ObsRecorder::new();
    rec.meta("algo", "alg3".to_string());
    rec.meta("n", g.n().to_string());
    rec.meta("k", g.n().to_string());
    rec.meta("h", h.to_string());
    rec.meta("delta", delta.to_string());
    let out = alg3_apsp_recorded(&g, h, delta, EngineConfig::default(), &mut rec);
    assert!(!out.blockers.is_empty(), "workload must select blockers");
    let mut recording = rec.into_recording();
    // wall time is the one nondeterministic field
    recording.normalize_wall();
    recording
}

#[test]
fn golden_jsonl_schema() {
    let doc = to_jsonl(&recorded_alg3_run());
    assert!(doc.starts_with(&format!(
        "{{\"type\":\"schema\",\"schema\":\"{JSONL_SCHEMA}\"}}"
    )));
    check_golden("obs_metrics.jsonl", &doc);
}

#[test]
fn golden_chrome_trace() {
    let doc = to_chrome_trace(&recorded_alg3_run());
    check_golden("obs_trace.json", &doc);
}

/// parse(export(r)) re-exports byte-identically — the schema is closed
/// under its own parser, so `dwapsp report` sees exactly what `solve`
/// recorded.
#[test]
fn jsonl_round_trip_is_byte_identical() {
    let recording = recorded_alg3_run();
    let doc = to_jsonl(&recording);
    let parsed = parse_jsonl(&doc).expect("re-parse own export");
    assert_eq!(parsed, recording);
    assert_eq!(to_jsonl(&parsed), doc);
}

/// Minimal structural sanity of the Chrome-trace document without a
/// JSON parser: balanced braces/brackets and one complete-event entry
/// per span.
#[test]
fn chrome_trace_is_structurally_sound() {
    let recording = recorded_alg3_run();
    let doc = to_chrome_trace(&recording);
    let opens = doc.matches('{').count();
    let closes = doc.matches('}').count();
    assert_eq!(opens, closes, "unbalanced braces");
    assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    assert_eq!(
        doc.matches("\"ph\":\"X\"").count(),
        recording.spans.len(),
        "one complete event per span"
    );
    assert_eq!(
        doc.matches("\"ph\":\"C\"").count(),
        recording.rounds.len(),
        "one counter event per round sample"
    );
}

/// A recording is a property of the *protocol*, not the backend: the
/// same seeded Algorithm 1 workload recorded under the simulator and
/// the thread transport yields identical spans, stats and per-round
/// samples (only wall time may differ).
#[test]
fn recorded_phases_identical_sim_vs_threads() {
    let g = gen::zero_heavy(10, 0.3, 0.35, 5, true, 71);
    let delta = max_finite_distance(&g).max(1);
    let cfg = SspConfig::apsp(g.n(), delta);

    let run = |rt: Runtime| {
        let mut rec = ObsRecorder::new();
        run_hk_ssp_on_recorded(rt, &g, &cfg, EngineConfig::default(), &mut rec)
            .unwrap_or_else(|e| panic!("{} runtime failed: {e}", rt.as_str()));
        let mut r = rec.into_recording();
        r.normalize_wall();
        r
    };
    let sim = run(Runtime::Sim);
    assert_eq!(sim.spans.len(), 1, "alg1 records a single hk_ssp span");
    assert!(sim.spans[0].stats.rounds > 0);
    assert!(!sim.rounds.is_empty(), "sim run must emit round samples");
    let threads = run(Runtime::Threads);
    assert_eq!(threads, sim, "threads recording diverges from sim");
}
