//! End-to-end: every exact algorithm in the workspace agrees with
//! sequential Dijkstra across graph families, seeds, directions and
//! weight regimes (zero-weight edges throughout).

use dwapsp::blocker::alg3::alg3_apsp;
use dwapsp::prelude::*;
use dwapsp::seqref::assert_matrices_equal;

fn families(seed: u64) -> Vec<(String, WGraph)> {
    vec![
        (
            format!("zero-heavy directed s{seed}"),
            gen::zero_heavy(16, 0.2, 0.5, 6, true, seed),
        ),
        (
            format!("zero-heavy undirected s{seed}"),
            gen::zero_heavy(14, 0.25, 0.5, 6, false, seed),
        ),
        (
            format!("grid s{seed}"),
            gen::grid(
                3,
                5,
                false,
                gen::WeightDist::ZeroOr {
                    p_zero: 0.4,
                    max: 4,
                },
                seed,
            ),
        ),
        (
            format!("staircase s{seed}"),
            gen::staircase(3, 4, 2 + (seed % 3), true),
        ),
        (
            format!("ring s{seed}"),
            gen::ring(12, true, gen::WeightDist::Uniform { max: 5 }, seed),
        ),
    ]
}

#[test]
fn alg1_apsp_exact_across_families() {
    for seed in 0..4 {
        for (name, g) in families(seed) {
            let delta = max_finite_distance(&g).max(1);
            let cfg = SspConfig::apsp(g.n(), delta);
            let (res, stats, rep) =
                dwapsp::pipeline::invariants::run_with_report(&g, &cfg, EngineConfig::default());
            assert_matrices_equal(&apsp_dijkstra(&g), &res.to_matrix(), &name);
            // The Theorem I.1 bound covers the *convergence* round and is
            // guaranteed for healthy runs (Invariants 1-2 held, no
            // re-armed announcements); zero-cycle-heavy instances can
            // exceed it while staying exact (see E2/E3).
            let _ = &stats;
            if rep.holds() && rep.late_sends == 0 {
                let bound = dwapsp::pipeline::apsp_round_bound(g.n(), delta);
                assert!(
                    rep.convergence_round <= bound,
                    "{name}: {} > {bound}",
                    rep.convergence_round
                );
            }
        }
    }
}

#[test]
fn alg1_apsp_auto_needs_no_delta() {
    for seed in 10..13 {
        for (name, g) in families(seed) {
            let (res, _, _) = apsp_auto(&g, EngineConfig::default());
            assert_matrices_equal(&apsp_dijkstra(&g), &res.to_matrix(), &name);
        }
    }
}

#[test]
fn alg3_apsp_exact_across_families_and_h() {
    for seed in 0..2 {
        for (name, g) in families(seed) {
            for h in [2u64, 4] {
                let delta = dwapsp::seqref::max_finite_h_hop_distance(&g, 2 * h as usize).max(1);
                let out = alg3_apsp(&g, h, delta, EngineConfig::default());
                assert_matrices_equal(&apsp_dijkstra(&g), &out.matrix, &format!("{name} h={h}"));
            }
        }
    }
}

#[test]
fn bf_apsp_exact_across_families() {
    for (name, g) in families(3) {
        let (res, _) = bf_apsp(&g, EngineConfig::default());
        assert_matrices_equal(&apsp_dijkstra(&g), &res.to_matrix(), &name);
    }
}

#[test]
fn all_algorithms_agree_with_each_other() {
    let g = gen::zero_heavy(15, 0.2, 0.5, 5, true, 42);
    let delta = max_finite_distance(&g).max(1);
    let (a1, _, _) = apsp(&g, delta, EngineConfig::default());
    let (bf, _) = bf_apsp(&g, EngineConfig::default());
    let h = 3;
    let d2h = dwapsp::seqref::max_finite_h_hop_distance(&g, 2 * h).max(1);
    let a3 = alg3_apsp(&g, h as u64, d2h, EngineConfig::default());
    assert_eq!(a1.to_matrix(), bf.to_matrix());
    assert_eq!(a1.to_matrix(), a3.matrix);
}
