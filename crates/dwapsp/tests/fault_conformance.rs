//! Fault-injection conformance: determinism of the seeded fault layer
//! across engine execution modes, byte-identity of the zero-fault path,
//! and end-to-end correctness of the recovery stack under drops, delays
//! and duplicates.

use dwapsp::congest::{
    trace::RoundTrace, EngineConfig, FaultPlan, Network, RunStats, SchedulingMode,
};
use dwapsp::pipeline::node::PipelinedNode;
use dwapsp::pipeline::recovery::{run_hk_ssp_reliable, short_range_sssp_reliable, RecoveryConfig};
use dwapsp::pipeline::{default_budget, Gamma};
use dwapsp::prelude::*;
use dwapsp::seqref::assert_matrices_equal;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = WGraph> {
    (3usize..=12).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0u64..=6), 0..(3 * n));
        (Just(n), edges, any::<bool>()).prop_map(|(n, edges, directed)| {
            let mut b = GraphBuilder::new(n, directed);
            for (s, d, w) in edges {
                b.add_edge(s, d, w);
            }
            b.build()
        })
    })
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), 0u64..=20, 0u64..=10, 0u64..=10, 1u64..=3).prop_map(
        |(seed, drop_pct, dup_pct, delay_pct, max_delay)| {
            FaultPlan::new(seed)
                .with_drop(drop_pct as f64 / 100.0)
                .with_duplicate(dup_pct as f64 / 100.0)
                .with_delay(delay_pct as f64 / 100.0, max_delay)
        },
    )
}

/// Run an all-sources Algorithm-1 network round by round (no
/// fast-forward, so sequential and parallel executions step the exact
/// same rounds) and capture everything observable: distances, stats and
/// the full per-round trace.
fn traced_apsp(
    g: &WGraph,
    plan: &FaultPlan,
    parallel: bool,
) -> (Vec<Vec<Weight>>, RunStats, RoundTrace) {
    traced_apsp_mode(g, plan, parallel, SchedulingMode::ActiveSet)
}

fn traced_apsp_mode(
    g: &WGraph,
    plan: &FaultPlan,
    parallel: bool,
    scheduling: SchedulingMode,
) -> (Vec<Vec<Weight>>, RunStats, RoundTrace) {
    let delta = max_finite_distance(g).max(1);
    let cfg = SspConfig::apsp(g.n(), delta);
    let gamma = Gamma::new(cfg.k(), cfg.h, cfg.delta);
    let engine = EngineConfig {
        faults: Some(plan.clone()),
        parallel_threshold: if parallel { 1 } else { usize::MAX },
        threads: 4,
        scheduling,
        ..EngineConfig::default()
    };
    let mut net = Network::new(g, engine, |_| {
        PipelinedNode::new(gamma, cfg.h, cfg.k(), true, false)
    });
    let mut trace = RoundTrace::new();
    for _ in 0..default_budget(&cfg, g.n()) {
        net.step_traced(&mut trace);
    }
    let dist: Vec<Vec<Weight>> = (0..g.n() as NodeId)
        .map(|s| {
            (0..g.n())
                .map(|v| net.node(v as NodeId).best_for(s).map_or(INFINITY, |b| b.d))
                .collect()
        })
        .collect();
    let stats = net.stats();
    (dist, stats, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The tentpole determinism guarantee: the same seed and the same
    // fault plan produce bit-identical metrics and traces whether the
    // engine runs its phases sequentially or thread-parallel.
    #[test]
    fn same_plan_same_seed_is_bit_identical_across_engines(
        g in arb_graph(), plan in arb_plan()
    ) {
        let (d1, s1, t1) = traced_apsp(&g, &plan, false);
        let (d2, s2, t2) = traced_apsp(&g, &plan, true);
        prop_assert_eq!(d1, d2, "distances diverged across engine modes");
        prop_assert_eq!(s1, s2, "metrics diverged across engine modes");
        prop_assert_eq!(t1.records(), t2.records(), "traces diverged");
    }

    // A pristine plan (fault probabilities all zero) must leave the
    // delivery path byte-identical to running with no plan at all: same
    // distances, same round count, same metrics.
    #[test]
    fn pristine_plan_equals_no_plan(g in arb_graph(), seed in any::<u64>()) {
        let delta = max_finite_distance(&g).max(1);
        let (r0, s0, _) = apsp(&g, delta, EngineConfig::default());
        let engine = EngineConfig {
            faults: Some(FaultPlan::new(seed)),
            ..EngineConfig::default()
        };
        let (r1, s1, _) = apsp(&g, delta, engine);
        prop_assert_eq!(r0, r1, "pristine plan changed the results");
        prop_assert_eq!(s0.clone(), s1, "pristine plan changed the metrics");
        prop_assert_eq!(s0.fault_events(), 0);
    }

    // Active-set scheduling is an optimization, not a semantics change:
    // on the real Algorithm-1 pipeline under arbitrary fault plans it
    // must produce bit-identical distances, metrics and traces compared
    // to exhaustively polling every node each round — in both the
    // sequential and thread-parallel engines.
    #[test]
    fn active_set_matches_exhaustive_poll_on_pipeline(
        g in arb_graph(), plan in arb_plan()
    ) {
        let (d_ex, s_ex, t_ex) =
            traced_apsp_mode(&g, &plan, false, SchedulingMode::ExhaustivePoll);
        let (d_as, s_as, t_as) =
            traced_apsp_mode(&g, &plan, false, SchedulingMode::ActiveSet);
        prop_assert_eq!(&d_ex, &d_as, "distances diverged across scheduling modes");
        prop_assert_eq!(&s_ex, &s_as, "metrics diverged across scheduling modes");
        prop_assert_eq!(t_ex.records(), t_as.records(), "traces diverged");
        let (d_p, s_p, t_p) =
            traced_apsp_mode(&g, &plan, true, SchedulingMode::ActiveSet);
        prop_assert_eq!(&d_as, &d_p, "parallel active-set distances diverged");
        prop_assert_eq!(&s_as, &s_p, "parallel active-set metrics diverged");
        prop_assert_eq!(t_as.records(), t_p.records(), "parallel traces diverged");
    }

    // Replaying the identical faulty run twice is deterministic.
    #[test]
    fn faulty_runs_replay_deterministically(g in arb_graph(), plan in arb_plan()) {
        let (d1, s1, t1) = traced_apsp(&g, &plan, false);
        let (d2, s2, t2) = traced_apsp(&g, &plan, false);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(t1.records(), t2.records());
    }
}

/// Algorithm 1 through the recovery stack vs Dijkstra on zero-heavy
/// random graphs at drop rates 0%, 1% and 5%.
#[test]
fn alg1_recovers_exact_apsp_under_drop_rates() {
    for seed in 0..3u64 {
        let g = gen::zero_heavy(14, 0.2, 0.4, 6, true, seed);
        let delta = max_finite_distance(&g).max(1);
        let cfg = SspConfig::apsp(g.n(), delta);
        let reference = apsp_dijkstra(&g);
        for drop_p in [0.0, 0.01, 0.05] {
            let engine = EngineConfig {
                faults: Some(FaultPlan::drop_only(1000 + seed, drop_p)),
                ..EngineConfig::default()
            };
            let (res, rep) = run_hk_ssp_reliable(&g, &cfg, engine, &RecoveryConfig::default());
            assert_matrices_equal(
                &reference,
                &res.to_matrix(),
                &format!("seed {seed} drop {drop_p}"),
            );
            if drop_p == 0.0 {
                assert_eq!(rep.retries, 0, "seed {seed}: clean run retried");
                assert_eq!(rep.extra_rounds, 0, "seed {seed}: clean run degraded");
            } else if rep.stats.dropped > 0 {
                assert!(
                    rep.retries > 0,
                    "seed {seed} drop {drop_p}: drops must force retries"
                );
            }
        }
    }
}

/// Algorithm 2 (short-range) through the recovery stack keeps its h-hop
/// contract under the same drop rates.
#[test]
fn alg2_recovers_h_hop_distances_under_drop_rates() {
    for seed in 0..3u64 {
        let g = gen::zero_heavy(16, 0.18, 0.5, 5, false, 100 + seed);
        let delta = max_finite_distance(&g).max(1);
        let h = 6u64;
        let exact = dwapsp::seqref::bellman_ford(&g, 0);
        for drop_p in [0.0, 0.01, 0.05] {
            let engine = EngineConfig {
                faults: Some(FaultPlan::drop_only(2000 + seed, drop_p)),
                ..EngineConfig::default()
            };
            let (res, rep) =
                short_range_sssp_reliable(&g, 0, h, delta, engine, &RecoveryConfig::default());
            for v in g.nodes() {
                let vi = v as usize;
                if exact[vi].is_reachable() && u64::from(exact[vi].hops) <= h {
                    assert_eq!(
                        res.dist[vi], exact[vi].dist,
                        "seed {seed} drop {drop_p}: 0 -> {v}"
                    );
                } else if res.dist[vi] != INFINITY {
                    assert!(res.dist[vi] >= exact[vi].dist, "no underestimates");
                }
            }
            if drop_p == 0.0 {
                assert_eq!(rep.late_sends, 0);
                assert_eq!(rep.retries, 0);
            }
        }
    }
}

/// Delay faults alone need no reliable channel: Algorithm 1's `<= r`
/// re-arm (`NodeList::find_send`) absorbs late arrivals, at the price of
/// `late_sends` and possibly extra rounds — distances stay exact.
#[test]
fn alg1_unwrapped_absorbs_pure_delays() {
    let g = gen::zero_heavy(14, 0.2, 0.4, 5, true, 9);
    let delta = max_finite_distance(&g).max(1);
    let cfg = SspConfig::apsp(g.n(), delta);
    let engine = EngineConfig {
        faults: Some(FaultPlan::new(31).with_delay(0.25, 4)),
        ..EngineConfig::default()
    };
    let gamma = Gamma::new(cfg.k(), cfg.h, cfg.delta);
    let (res, stats, _) =
        dwapsp::pipeline::run_with_budget(&g, &cfg, gamma, 4 * default_budget(&cfg, g.n()), engine);
    assert_matrices_equal(&apsp_dijkstra(&g), &res.to_matrix(), "delay-only apsp");
    assert!(stats.delayed > 0, "the plan must actually delay messages");
    assert_eq!(stats.delayed, stats.late_delivered, "all delays must land");
}
