//! Property-based tests for the observability layer: on arbitrary
//! random graphs, the recorded phase decomposition of Algorithm 3 must
//! account for the run *exactly* — top-level span stats compose (via
//! `RunStats::then`) to precisely the `Alg3Outcome` totals, sibling
//! spans tile the composed round timeline, and the `csssp` phase's
//! `hk_2h` child respects the Theorem I.1 round bound at hop bound
//! `2h`.

use dwapsp::congest::RunStats;
use dwapsp::pipeline::bound::hk_round_bound;
use dwapsp::prelude::*;
use dwapsp::seqref::max_finite_h_hop_distance;
use proptest::prelude::*;

/// Strategy: a random directed graph over `n <= 12` nodes with a ring
/// backbone (Algorithm 3's broadcasts need a connected communication
/// graph), weights `0..=5` (zero-weight edges likely), plus a hop
/// parameter small enough to force blocker selections on deep graphs.
fn arb_instance() -> impl Strategy<Value = (WGraph, u64)> {
    (4usize..=12).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0u64..=5), n..(3 * n));
        let ring = proptest::collection::vec(0u64..=5, n);
        (Just(n), edges, ring, any::<bool>(), 1u64..=4).prop_map(|(n, edges, ring, directed, h)| {
            let mut b = GraphBuilder::new(n, directed);
            for (i, w) in ring.into_iter().enumerate() {
                b.add_edge(i as u32, ((i + 1) % n) as u32, w);
            }
            for (s, d, w) in edges {
                b.add_edge(s, d, w);
            }
            (b.build(), h)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Every round and message of an Algorithm 3 run is attributed to
    // exactly one top-level phase span: the composition of the spans
    // equals `Alg3Outcome::stats` field for field, and the spans tile
    // the `[0, rounds]` timeline with no gaps or overlaps.
    #[test]
    fn alg3_phase_spans_sum_exactly_to_run_totals((g, h) in arb_instance()) {
        let delta = max_finite_h_hop_distance(&g, 2 * h as usize).max(1);
        let mut rec = ObsRecorder::new();
        let out = alg3_apsp_recorded(&g, h, delta, EngineConfig::default(), &mut rec);
        let recording = rec.into_recording();

        // exact equality, every field (rounds, messages, congestion,
        // fault counters): nothing happened outside a span
        prop_assert_eq!(recording.total(), out.stats.clone());

        // sibling spans tile the composed timeline
        let mut cursor = 0u64;
        for span in recording.top_level() {
            prop_assert_eq!(span.start_round, cursor, "gap before {}", span.name);
            prop_assert_eq!(span.end_round, span.start_round + span.stats.rounds);
            cursor = span.end_round;
        }
        prop_assert_eq!(cursor, out.stats.rounds);

        // the phase set is exactly the documented taxonomy
        for span in &recording.spans {
            prop_assert!(
                matches!(span.name, "csssp" | "hk_2h" | "validate" | "blocker_scores"
                    | "blocker_select" | "alg4_update" | "per_blocker_sssp"
                    | "broadcast" | "combine"),
                "unknown phase {}", span.name
            );
        }

        // one per_blocker_sssp + one broadcast span per blocker, and the
        // counter agrees with the selection count
        let count = |name: &str| recording.spans.iter().filter(|s| s.name == name).count();
        prop_assert_eq!(count("per_blocker_sssp"), out.blockers.len());
        prop_assert_eq!(count("broadcast"), out.blockers.len());
        prop_assert_eq!(
            recording.counters.get("blocker.selected").copied().unwrap_or(0),
            out.blockers.len() as u64
        );
    }

    // The `csssp` phase's children refine it exactly, and its pipelined
    // `hk_2h` run obeys the Theorem I.1 round bound instantiated at hop
    // bound `2h` (the CSSSP construction runs Algorithm 1 with `2h`).
    #[test]
    fn csssp_children_refine_parent_and_respect_hk_bound((g, h) in arb_instance()) {
        let delta = max_finite_h_hop_distance(&g, 2 * h as usize).max(1);
        let k = g.n() as u64;
        let mut rec = ObsRecorder::new();
        let _ = alg3_apsp_recorded(&g, h, delta, EngineConfig::default(), &mut rec);
        let recording = rec.into_recording();

        let (csssp_idx, csssp) = recording
            .spans
            .iter()
            .enumerate()
            .find(|(_, s)| s.name == "csssp")
            .expect("csssp span");
        let children: Vec<_> = recording
            .spans
            .iter()
            .filter(|s| s.parent.map(|p| p.index()) == Some(csssp_idx))
            .collect();
        prop_assert_eq!(children.len(), 2);
        prop_assert_eq!(children[0].name, "hk_2h");
        prop_assert_eq!(children[1].name, "validate");

        // children tile the parent and compose to its stats exactly
        prop_assert_eq!(children[0].start_round, csssp.start_round);
        prop_assert_eq!(children[1].start_round, children[0].end_round);
        prop_assert_eq!(children[1].end_round, csssp.end_round);
        let composed = children
            .iter()
            .fold(RunStats::default(), |acc, c| acc.then(&c.stats));
        prop_assert_eq!(composed, csssp.stats.clone());

        // Theorem I.1 at hop bound 2h: convergence within
        // 2*sqrt(Δ·2h·k) + k + 2h rounds. As in `prop_pipeline` / E2,
        // the bound covers the convergence round (residual non-SP
        // traffic may trail it) and is asserted when the run was healthy
        // (Invariants 1-2 held, no re-armed late announcements);
        // re-running the identical 2h instance under the invariant
        // checker classifies it and pins down its convergence round.
        let sources: Vec<NodeId> = g.nodes().collect();
        let cfg_2h = SspConfig::new(sources, 2 * h, delta);
        let (_, st_2h, rep) = dwapsp::pipeline::invariants::run_with_report(
            &g,
            &cfg_2h,
            EngineConfig::default(),
        );
        // the recorded span is that same deterministic run: identical
        // round count, and it covers the convergence round
        prop_assert_eq!(children[0].stats.rounds, st_2h.rounds);
        prop_assert!(rep.convergence_round <= children[0].stats.rounds);
        if rep.holds() && rep.late_sends == 0 {
            let bound = hk_round_bound(2 * h, k, delta);
            prop_assert!(
                rep.convergence_round <= bound,
                "hk_2h converged at {} rounds, bound {bound}",
                rep.convergence_round
            );
        }
    }
}
