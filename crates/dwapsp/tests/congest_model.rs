//! CONGEST-model conformance across the whole stack: deterministic
//! replays, sequential/parallel engine equivalence, and bandwidth
//! accounting sanity.

use dwapsp::prelude::*;

#[test]
fn apsp_runs_are_bit_deterministic() {
    let g = gen::zero_heavy(18, 0.2, 0.5, 6, true, 5);
    let delta = max_finite_distance(&g).max(1);
    let (r1, s1, _) = apsp(&g, delta, EngineConfig::default());
    let (r2, s2, _) = apsp(&g, delta, EngineConfig::default());
    assert_eq!(r1, r2);
    assert_eq!(s1, s2);
}

#[test]
fn parallel_engine_matches_sequential_exactly() {
    let g = gen::zero_heavy(24, 0.15, 0.5, 6, true, 8);
    let delta = max_finite_distance(&g).max(1);
    let seq_cfg = EngineConfig {
        parallel_threshold: usize::MAX,
        ..EngineConfig::default()
    };
    let par_cfg = EngineConfig {
        parallel_threshold: 1,
        threads: 4,
        ..EngineConfig::default()
    };
    let (r1, s1, _) = apsp(&g, delta, seq_cfg);
    let (r2, s2, _) = apsp(&g, delta, par_cfg);
    assert_eq!(r1, r2, "distances must not depend on the execution mode");
    assert_eq!(s1, s2, "metrics must not depend on the execution mode");
}

#[test]
fn message_words_accounted() {
    let g = gen::zero_heavy(12, 0.25, 0.5, 5, true, 3);
    let delta = max_finite_distance(&g).max(1);
    let (_, stats, _) = apsp(&g, delta, EngineConfig::default());
    // Algorithm 1 messages are 4 words each.
    assert_eq!(stats.total_words, 4 * stats.messages);
}

#[test]
fn per_link_congestion_bounded_by_rounds() {
    let g = gen::zero_heavy(14, 0.2, 0.5, 6, true, 21);
    let delta = max_finite_distance(&g).max(1);
    let (_, stats, _) = apsp(&g, delta, EngineConfig::default());
    // each directed link carries at most one message per round
    assert!(stats.max_link_load <= stats.rounds);
    assert!(stats.max_round_messages <= 2 * g.m() as u64);
}

#[test]
fn directed_communication_is_bidirectional() {
    // A strictly one-directional weighted path still floods information
    // both ways at the CONGEST layer; only relaxations respect direction.
    let mut b = GraphBuilder::new(4, true);
    b.add_edge(3, 2, 1).add_edge(2, 1, 1).add_edge(1, 0, 1);
    let g = b.build();
    let (res, _, _) = apsp_auto(&g, EngineConfig::default());
    assert_eq!(res.dist[3][0], 3);
    assert_eq!(res.dist[0][3], INFINITY);
}
