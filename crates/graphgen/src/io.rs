//! Graph (de)serialization for reproducible experiment manifests.
//!
//! The on-disk format is a plain JSON document with an explicit edge list,
//! so instances can be inspected, diffed and regenerated independently of
//! the in-memory adjacency layout. The encoder/parser are hand-rolled (no
//! serde in the offline build); the grammar is the fixed document shape
//! `{"n":..,"directed":..,"edges":[{"src":..,"dst":..,"w":..},..]}` with
//! arbitrary whitespace and arbitrary key order accepted on input.

use crate::builder::GraphBuilder;
use crate::graph::{Edge, WGraph};
use std::fmt;

/// Serializable graph document.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphDoc {
    pub n: usize,
    pub directed: bool,
    pub edges: Vec<Edge>,
}

impl From<&WGraph> for GraphDoc {
    fn from(g: &WGraph) -> Self {
        GraphDoc {
            n: g.n(),
            directed: g.is_directed(),
            edges: g.edges().collect(),
        }
    }
}

impl GraphDoc {
    /// Rebuild the graph (re-validating all invariants).
    pub fn to_graph(&self) -> WGraph {
        let mut b = GraphBuilder::new(self.n, self.directed);
        for e in &self.edges {
            b.add_edge(e.src, e.dst, e.w);
        }
        b.build()
    }
}

/// Error produced when parsing a graph document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph json error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Serialize a graph to a JSON string.
pub fn to_json(g: &WGraph) -> String {
    let doc = GraphDoc::from(g);
    let mut s = String::with_capacity(64 + doc.edges.len() * 24);
    s.push_str("{\"n\":");
    s.push_str(&doc.n.to_string());
    s.push_str(",\"directed\":");
    s.push_str(if doc.directed { "true" } else { "false" });
    s.push_str(",\"edges\":[");
    for (i, e) in doc.edges.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"src\":");
        s.push_str(&e.src.to_string());
        s.push_str(",\"dst\":");
        s.push_str(&e.dst.to_string());
        s.push_str(",\"w\":");
        s.push_str(&e.w.to_string());
        s.push('}');
    }
    s.push_str("]}");
    s
}

/// Parse a graph from JSON produced by [`to_json`].
pub fn from_json(s: &str) -> Result<WGraph, JsonError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let doc = p.document()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(doc.to_graph())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    /// Parse a `"key"` token and return it.
    fn key(&mut self) -> Result<&'a str, JsonError> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let k = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("non-utf8 key"))?;
                self.pos += 1;
                return Ok(k);
            }
            if b == b'\\' {
                return Err(self.err("escapes not supported in keys"));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string"))
    }

    fn u64_value(&mut self) -> Result<u64, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ascii")
            .parse::<u64>()
            .map_err(|_| self.err("number out of range"))
    }

    fn bool_value(&mut self) -> Result<bool, JsonError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(true)
        } else if self.bytes[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(false)
        } else {
            Err(self.err("expected boolean"))
        }
    }

    fn edge(&mut self) -> Result<Edge, JsonError> {
        self.expect(b'{')?;
        let (mut src, mut dst, mut w) = (None, None, None);
        loop {
            let k = self.key()?;
            self.expect(b':')?;
            let v = self.u64_value()?;
            match k {
                "src" => src = Some(u32::try_from(v).map_err(|_| self.err("src out of range"))?),
                "dst" => dst = Some(u32::try_from(v).map_err(|_| self.err("dst out of range"))?),
                "w" => w = Some(v),
                _ => return Err(self.err("unknown edge key")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or '}' in edge")),
            }
        }
        match (src, dst, w) {
            (Some(src), Some(dst), Some(w)) => Ok(Edge { src, dst, w }),
            _ => Err(self.err("edge missing src/dst/w")),
        }
    }

    fn edges(&mut self) -> Result<Vec<Edge>, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.edge()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected ',' or ']' in edge list")),
            }
        }
    }

    fn document(&mut self) -> Result<GraphDoc, JsonError> {
        self.expect(b'{')?;
        let (mut n, mut directed, mut edges) = (None, None, None);
        if self.peek() == Some(b'}') {
            return Err(self.err("document missing n/directed/edges"));
        }
        loop {
            let k = self.key()?;
            self.expect(b':')?;
            match k {
                "n" => {
                    let v = self.u64_value()?;
                    n = Some(usize::try_from(v).map_err(|_| self.err("n out of range"))?);
                }
                "directed" => directed = Some(self.bool_value()?),
                "edges" => edges = Some(self.edges()?),
                _ => return Err(self.err("unknown document key")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or '}' in document")),
            }
        }
        match (n, directed, edges) {
            (Some(n), Some(directed), Some(edges)) => Ok(GraphDoc { n, directed, edges }),
            _ => Err(self.err("document missing n/directed/edges")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, WeightDist};

    #[test]
    fn roundtrip_random_graph() {
        let g = gen::gnp(25, 0.3, true, WeightDist::Uniform { max: 9 }, 5);
        let j = to_json(&g);
        let g2 = from_json(&j).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_undirected() {
        let g = gen::grid(
            3,
            3,
            false,
            WeightDist::ZeroOr {
                p_zero: 0.4,
                max: 3,
            },
            2,
        );
        assert_eq!(from_json(&to_json(&g)).unwrap(), g);
    }

    #[test]
    fn bad_json_is_error() {
        assert!(from_json("{").is_err());
    }

    #[test]
    fn whitespace_and_key_order_tolerated() {
        let j = r#" { "directed" : true , "edges" : [ { "w" : 3 , "src" : 0 , "dst" : 1 } ] , "n" : 2 } "#;
        let g = from_json(j).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(3));
    }

    #[test]
    fn trailing_garbage_is_error() {
        let g = gen::gnp(4, 0.5, true, WeightDist::Constant(1), 1);
        let mut j = to_json(&g);
        j.push('x');
        assert!(from_json(&j).is_err());
    }
}
