//! Graph (de)serialization for reproducible experiment manifests.
//!
//! The on-disk format is a plain JSON document with an explicit edge list,
//! so instances can be inspected, diffed and regenerated independently of
//! the in-memory adjacency layout.

use crate::builder::GraphBuilder;
use crate::graph::{Edge, WGraph};
use serde::{Deserialize, Serialize};

/// Serializable graph document.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct GraphDoc {
    pub n: usize,
    pub directed: bool,
    pub edges: Vec<Edge>,
}

impl From<&WGraph> for GraphDoc {
    fn from(g: &WGraph) -> Self {
        GraphDoc {
            n: g.n(),
            directed: g.is_directed(),
            edges: g.edges().collect(),
        }
    }
}

impl GraphDoc {
    /// Rebuild the graph (re-validating all invariants).
    pub fn to_graph(&self) -> WGraph {
        let mut b = GraphBuilder::new(self.n, self.directed);
        for e in &self.edges {
            b.add_edge(e.src, e.dst, e.w);
        }
        b.build()
    }
}

/// Serialize a graph to a JSON string.
pub fn to_json(g: &WGraph) -> String {
    serde_json::to_string(&GraphDoc::from(g)).expect("graph serialization cannot fail")
}

/// Parse a graph from JSON produced by [`to_json`].
pub fn from_json(s: &str) -> Result<WGraph, serde_json::Error> {
    let doc: GraphDoc = serde_json::from_str(s)?;
    Ok(doc.to_graph())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, WeightDist};

    #[test]
    fn roundtrip_random_graph() {
        let g = gen::gnp(25, 0.3, true, WeightDist::Uniform { max: 9 }, 5);
        let j = to_json(&g);
        let g2 = from_json(&j).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_undirected() {
        let g = gen::grid(3, 3, false, WeightDist::ZeroOr { p_zero: 0.4, max: 3 }, 2);
        assert_eq!(from_json(&to_json(&g)).unwrap(), g);
    }

    #[test]
    fn bad_json_is_error() {
        assert!(from_json("{").is_err());
    }
}
