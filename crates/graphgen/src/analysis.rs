//! Structural statistics used by the experiment harness.

use crate::graph::{WGraph, Weight};

/// Summary statistics of a graph instance, recorded with every experiment
/// row so results are self-describing.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub n: usize,
    pub m: usize,
    pub directed: bool,
    pub max_weight: Weight,
    pub zero_edges: usize,
    pub min_comm_degree: usize,
    pub max_comm_degree: usize,
    pub avg_comm_degree: f64,
}

/// Compute [`GraphStats`].
pub fn stats(g: &WGraph) -> GraphStats {
    let degrees: Vec<usize> = g.nodes().map(|v| g.comm_degree(v)).collect();
    let total: usize = degrees.iter().sum();
    GraphStats {
        n: g.n(),
        m: g.m(),
        directed: g.is_directed(),
        max_weight: g.max_weight(),
        zero_edges: g.zero_weight_edges(),
        min_comm_degree: degrees.iter().copied().min().unwrap_or(0),
        max_comm_degree: degrees.iter().copied().max().unwrap_or(0),
        avg_comm_degree: if g.n() == 0 {
            0.0
        } else {
            total as f64 / g.n() as f64
        },
    }
}

/// Whether the *communication* graph (underlying undirected graph) is
/// connected. CONGEST algorithms that broadcast/convergecast assume this.
pub fn comm_connected(g: &WGraph) -> bool {
    let n = g.n();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0u32];
    seen[0] = true;
    let mut count = 1;
    while let Some(v) = stack.pop() {
        for &u in g.comm_neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                count += 1;
                stack.push(u);
            }
        }
    }
    count == n
}

/// Hop diameter of the communication graph (`None` if disconnected).
pub fn comm_diameter(g: &WGraph) -> Option<usize> {
    let n = g.n();
    if n == 0 {
        return Some(0);
    }
    let mut diameter = 0usize;
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as u32 {
        dist.iter_mut().for_each(|d| *d = usize::MAX);
        dist[s as usize] = 0;
        queue.clear();
        queue.push_back(s);
        let mut reached = 1;
        while let Some(v) = queue.pop_front() {
            for &u in g.comm_neighbors(v) {
                if dist[u as usize] == usize::MAX {
                    dist[u as usize] = dist[v as usize] + 1;
                    diameter = diameter.max(dist[u as usize]);
                    reached += 1;
                    queue.push_back(u);
                }
            }
        }
        if reached != n {
            return None;
        }
    }
    Some(diameter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen::{self, WeightDist};

    #[test]
    fn stats_on_path() {
        let g = gen::path(4, false, WeightDist::Constant(2), 0);
        let s = stats(&g);
        assert_eq!(s.n, 4);
        assert_eq!(s.m, 3);
        assert_eq!(s.max_weight, 2);
        assert_eq!(s.zero_edges, 0);
        assert_eq!(s.min_comm_degree, 1);
        assert_eq!(s.max_comm_degree, 2);
        assert!((s.avg_comm_degree - 1.5).abs() < 1e-9);
    }

    #[test]
    fn connectivity() {
        let g = gen::ring(5, true, WeightDist::Constant(1), 0);
        assert!(comm_connected(&g));
        let mut b = GraphBuilder::new(4, false);
        b.add_edge(0, 1, 1).add_edge(2, 3, 1);
        assert!(!comm_connected(&b.build()));
    }

    #[test]
    fn diameter_of_path() {
        let g = gen::path(6, true, WeightDist::Constant(9), 0);
        // directed edges, but communication is undirected
        assert_eq!(comm_diameter(&g), Some(5));
    }

    #[test]
    fn diameter_disconnected_is_none() {
        let mut b = GraphBuilder::new(3, false);
        b.add_edge(0, 1, 1);
        assert_eq!(comm_diameter(&b.build()), None);
    }
}
