//! The core weighted graph type.

/// Node identifier. The paper assigns IDs in `1..poly(n)`; we use dense
/// `0..n` which is equivalent up to relabeling and keeps adjacency arrays
/// compact.
pub type NodeId = u32;

/// Non-negative integer edge weight (zero allowed). The paper assumes
/// weights representable in `B = O(log n)` bits; `u64` is ample.
pub type Weight = u64;

/// Sentinel for "unreachable" distances.
pub const INFINITY: Weight = Weight::MAX;

/// A single weighted edge `src -> dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    pub src: NodeId,
    pub dst: NodeId,
    pub w: Weight,
}

impl Edge {
    pub fn new(src: NodeId, dst: NodeId, w: Weight) -> Self {
        Edge { src, dst, w }
    }
}

/// A weighted graph with non-negative integer edge weights.
///
/// * For **directed** graphs, `out[v]` are edges leaving `v` and `inc[v]`
///   edges entering `v`.
/// * For **undirected** graphs, every edge `{u,v}` appears in `out[u]`,
///   `out[v]`, `inc[u]` and `inc[v]` so that the directed code paths work
///   unchanged.
///
/// `comm[v]` is the neighborhood of `v` in the *underlying undirected*
/// communication graph `U_G` — the set of nodes `v` shares a CONGEST link
/// with, regardless of edge direction (paper Section I-B).
///
/// Invariants (enforced by [`crate::builder::GraphBuilder`]):
/// * no self loops;
/// * no parallel edges (the minimum weight is kept);
/// * adjacency lists sorted by neighbor id (determinism).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WGraph {
    n: usize,
    directed: bool,
    out: Vec<Vec<(NodeId, Weight)>>,
    inc: Vec<Vec<(NodeId, Weight)>>,
    comm: Vec<Vec<NodeId>>,
    m: usize,
}

impl WGraph {
    /// Construct from parts. Prefer [`crate::builder::GraphBuilder`]; this is
    /// used by the builder and by deserialization validation.
    pub(crate) fn from_parts(
        n: usize,
        directed: bool,
        out: Vec<Vec<(NodeId, Weight)>>,
        inc: Vec<Vec<(NodeId, Weight)>>,
        comm: Vec<Vec<NodeId>>,
        m: usize,
    ) -> Self {
        WGraph {
            n,
            directed,
            out,
            inc,
            comm,
            m,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of (logical) edges `m`: directed edge count for directed
    /// graphs, undirected edge count for undirected graphs.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Whether the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-neighbors of `v` with weights, sorted by neighbor id.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[(NodeId, Weight)] {
        &self.out[v as usize]
    }

    /// In-neighbors of `v` with weights, sorted by neighbor id.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[(NodeId, Weight)] {
        &self.inc[v as usize]
    }

    /// Communication neighbors of `v` in the underlying undirected graph.
    #[inline]
    pub fn comm_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.comm[v as usize]
    }

    /// Degree of `v` in the communication graph.
    #[inline]
    pub fn comm_degree(&self, v: NodeId) -> usize {
        self.comm[v as usize].len()
    }

    /// The weight of edge `u -> v`, if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let row = &self.out[u as usize];
        row.binary_search_by_key(&v, |&(d, _)| d)
            .ok()
            .map(|i| row[i].1)
    }

    /// Iterator over all logical edges. For undirected graphs each edge is
    /// yielded once with `src < dst`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.out.iter().enumerate().flat_map(move |(u, row)| {
            let u = u as NodeId;
            row.iter().filter_map(move |&(v, w)| {
                if self.directed || u < v {
                    Some(Edge::new(u, v, w))
                } else {
                    None
                }
            })
        })
    }

    /// Iterator over node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.n as NodeId
    }

    /// Largest edge weight `W` (0 for edgeless graphs).
    pub fn max_weight(&self) -> Weight {
        self.out
            .iter()
            .flat_map(|row| row.iter().map(|&(_, w)| w))
            .max()
            .unwrap_or(0)
    }

    /// Number of zero-weight edges (logical count, like [`WGraph::m`]).
    pub fn zero_weight_edges(&self) -> usize {
        self.edges().filter(|e| e.w == 0).count()
    }

    /// The subgraph containing only zero-weight edges (same node set).
    /// Used by the approximate-APSP zero-closure step (paper Section IV).
    pub fn zero_subgraph(&self) -> WGraph {
        let mut b = crate::builder::GraphBuilder::new(self.n, self.directed);
        for e in self.edges() {
            if e.w == 0 {
                b.add_edge(e.src, e.dst, 0);
            }
        }
        b.build()
    }

    /// Apply `f` to every edge weight, producing a new graph with the same
    /// topology. Used by the Section IV weight transform and by the
    /// approximate-APSP scale rounding.
    pub fn map_weights(&self, mut f: impl FnMut(Edge) -> Weight) -> WGraph {
        let out: Vec<Vec<(NodeId, Weight)>> = self
            .out
            .iter()
            .enumerate()
            .map(|(u, row)| {
                row.iter()
                    .map(|&(v, w)| (v, f(Edge::new(u as NodeId, v, w))))
                    .collect()
            })
            .collect();
        let inc: Vec<Vec<(NodeId, Weight)>> = self
            .inc
            .iter()
            .enumerate()
            .map(|(v, row)| {
                row.iter()
                    .map(|&(u, w)| {
                        let _ = w;
                        let nw = out[u as usize]
                            .iter()
                            .find(|&&(d, _)| d == v as NodeId)
                            .map(|&(_, w)| w)
                            .expect("in-edge must mirror an out-edge");
                        (u, nw)
                    })
                    .collect()
            })
            .collect();
        WGraph {
            n: self.n,
            directed: self.directed,
            out,
            inc,
            comm: self.comm.clone(),
            m: self.m,
        }
    }

    /// Reverse all edges (no-op for undirected graphs).
    pub fn reversed(&self) -> WGraph {
        if !self.directed {
            return self.clone();
        }
        WGraph {
            n: self.n,
            directed: true,
            out: self.inc.clone(),
            inc: self.out.clone(),
            comm: self.comm.clone(),
            m: self.m,
        }
    }

    /// Total number of directed adjacency entries (2m for undirected).
    pub fn out_entry_count(&self) -> usize {
        self.out.iter().map(|r| r.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond(directed: bool) -> WGraph {
        let mut b = GraphBuilder::new(4, directed);
        b.add_edge(0, 1, 2);
        b.add_edge(0, 2, 0);
        b.add_edge(1, 3, 1);
        b.add_edge(2, 3, 5);
        b.build()
    }

    #[test]
    fn directed_adjacency() {
        let g = diamond(true);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.out_edges(0), &[(1, 2), (2, 0)]);
        assert_eq!(g.in_edges(3), &[(1, 1), (2, 5)]);
        assert_eq!(g.out_edges(3), &[]);
        assert!(g.is_directed());
    }

    #[test]
    fn undirected_adjacency_mirrors() {
        let g = diamond(false);
        assert_eq!(g.m(), 4);
        assert_eq!(g.out_edges(3), &[(1, 1), (2, 5)]);
        assert_eq!(g.in_edges(3), &[(1, 1), (2, 5)]);
        assert_eq!(g.comm_neighbors(0), &[1, 2]);
    }

    #[test]
    fn comm_neighbors_union_of_directions() {
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 1, 7);
        b.add_edge(2, 0, 3);
        let g = b.build();
        assert_eq!(g.comm_neighbors(0), &[1, 2]);
        assert_eq!(g.comm_neighbors(1), &[0]);
        assert_eq!(g.comm_neighbors(2), &[0]);
    }

    #[test]
    fn edge_weight_lookup() {
        let g = diamond(true);
        assert_eq!(g.edge_weight(0, 2), Some(0));
        assert_eq!(g.edge_weight(2, 0), None);
        assert_eq!(g.edge_weight(1, 3), Some(1));
    }

    #[test]
    fn edges_iterator_counts() {
        let gd = diamond(true);
        assert_eq!(gd.edges().count(), 4);
        let gu = diamond(false);
        assert_eq!(gu.edges().count(), 4);
        assert!(gu.edges().all(|e| e.src < e.dst));
    }

    #[test]
    fn zero_subgraph_keeps_only_zero_edges() {
        let g = diamond(true);
        let z = g.zero_subgraph();
        assert_eq!(z.m(), 1);
        assert_eq!(z.edge_weight(0, 2), Some(0));
        assert_eq!(z.n(), 4);
    }

    #[test]
    fn map_weights_transform() {
        let g = diamond(true);
        let t = g.map_weights(|e| if e.w == 0 { 1 } else { e.w * 10 });
        assert_eq!(t.edge_weight(0, 2), Some(1));
        assert_eq!(t.edge_weight(0, 1), Some(20));
        assert_eq!(t.in_edges(3), &[(1, 10), (2, 50)]);
    }

    #[test]
    fn reversed_swaps_directions() {
        let g = diamond(true).reversed();
        assert_eq!(g.out_edges(3), &[(1, 1), (2, 5)]);
        assert_eq!(g.in_edges(0), &[(1, 2), (2, 0)]);
    }

    #[test]
    fn max_weight_and_zero_count() {
        let g = diamond(true);
        assert_eq!(g.max_weight(), 5);
        assert_eq!(g.zero_weight_edges(), 1);
    }
}
