//! The core weighted graph type.

/// Node identifier. The paper assigns IDs in `1..poly(n)`; we use dense
/// `0..n` which is equivalent up to relabeling and keeps adjacency arrays
/// compact.
pub type NodeId = u32;

/// Non-negative integer edge weight (zero allowed). The paper assumes
/// weights representable in `B = O(log n)` bits; `u64` is ample.
pub type Weight = u64;

/// Sentinel for "unreachable" distances.
pub const INFINITY: Weight = Weight::MAX;

/// A single weighted edge `src -> dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    pub src: NodeId,
    pub dst: NodeId,
    pub w: Weight,
}

impl Edge {
    pub fn new(src: NodeId, dst: NodeId, w: Weight) -> Self {
        Edge { src, dst, w }
    }
}

/// A weighted graph with non-negative integer edge weights, stored in
/// compressed sparse row (CSR) form: one flat packed array per adjacency
/// kind plus an `n+1`-entry offset table, so per-node rows are contiguous
/// slices and whole-graph scans walk a single allocation. This is what
/// keeps the engine's send/receive phases cache-friendly at 100k+ nodes;
/// the per-node-`Vec` layout it replaced scattered rows across the heap.
///
/// * For **directed** graphs, row `v` of `out` holds edges leaving `v`
///   and row `v` of `inc` edges entering `v`.
/// * For **undirected** graphs, every edge `{u,v}` appears in both rows
///   of both arrays so that the directed code paths work unchanged.
///
/// `comm` row `v` is the neighborhood of `v` in the *underlying
/// undirected* communication graph `U_G` — the set of nodes `v` shares a
/// CONGEST link with, regardless of edge direction (paper Section I-B).
///
/// Invariants (enforced by [`crate::builder::GraphBuilder`] and
/// [`WGraph::from_edge_list`]):
/// * no self loops;
/// * no parallel edges (the minimum weight is kept);
/// * adjacency rows sorted by neighbor id (determinism).
///
/// Because rows are sorted and concatenated in node order, two logically
/// equal graphs have byte-identical CSR arrays, so the derived
/// `PartialEq` still means logical equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WGraph {
    pub(crate) n: usize,
    pub(crate) directed: bool,
    pub(crate) m: usize,
    pub(crate) out_off: Vec<usize>,
    pub(crate) out_adj: Vec<(NodeId, Weight)>,
    pub(crate) inc_off: Vec<usize>,
    pub(crate) inc_adj: Vec<(NodeId, Weight)>,
    pub(crate) comm_off: Vec<usize>,
    pub(crate) comm_adj: Vec<NodeId>,
}

/// Flatten per-node rows into a packed CSR (offsets, entries) pair.
fn pack<T: Copy>(n: usize, rows: &[Vec<T>]) -> (Vec<usize>, Vec<T>) {
    let total: usize = rows.iter().map(|r| r.len()).sum();
    let mut off = Vec::with_capacity(n + 1);
    let mut adj = Vec::with_capacity(total);
    off.push(0);
    for row in rows {
        adj.extend_from_slice(row);
        off.push(adj.len());
    }
    (off, adj)
}

/// Split a packed CSR pair back into per-node rows.
fn unpack<T: Copy>(off: &[usize], adj: &[T]) -> Vec<Vec<T>> {
    off.windows(2).map(|w| adj[w[0]..w[1]].to_vec()).collect()
}

impl WGraph {
    /// Construct from parts. Prefer [`crate::builder::GraphBuilder`]; this is
    /// used by the builder and by deserialization validation.
    pub(crate) fn from_parts(
        n: usize,
        directed: bool,
        out: Vec<Vec<(NodeId, Weight)>>,
        inc: Vec<Vec<(NodeId, Weight)>>,
        comm: Vec<Vec<NodeId>>,
        m: usize,
    ) -> Self {
        Self::from_vecs(n, directed, &out, &inc, &comm, m)
    }

    /// Bridge from the Vec-of-Vec adjacency form to CSR. Rows must obey
    /// the [`WGraph`] invariants (sorted by neighbor, no self loops, no
    /// parallel edges); the builders that call this guarantee them.
    pub fn from_vecs(
        n: usize,
        directed: bool,
        out: &[Vec<(NodeId, Weight)>],
        inc: &[Vec<(NodeId, Weight)>],
        comm: &[Vec<NodeId>],
        m: usize,
    ) -> Self {
        assert_eq!(out.len(), n);
        assert_eq!(inc.len(), n);
        assert_eq!(comm.len(), n);
        let (out_off, out_adj) = pack(n, out);
        let (inc_off, inc_adj) = pack(n, inc);
        let (comm_off, comm_adj) = pack(n, comm);
        WGraph {
            n,
            directed,
            m,
            out_off,
            out_adj,
            inc_off,
            inc_adj,
            comm_off,
            comm_adj,
        }
    }

    /// Bridge back to the Vec-of-Vec form `(out, inc, comm)` — the exact
    /// inverse of [`WGraph::from_vecs`]. Used by tests and by callers
    /// that want to edit adjacency rows before rebuilding.
    #[allow(clippy::type_complexity)]
    pub fn to_vecs(
        &self,
    ) -> (
        Vec<Vec<(NodeId, Weight)>>,
        Vec<Vec<(NodeId, Weight)>>,
        Vec<Vec<NodeId>>,
    ) {
        (
            unpack(&self.out_off, &self.out_adj),
            unpack(&self.inc_off, &self.inc_adj),
            unpack(&self.comm_off, &self.comm_adj),
        )
    }

    /// Streaming construction from an edge list: sort + scan, never any
    /// per-node intermediate or O(n²) structure, so it is the right entry
    /// point for 100k+-node generators. Self loops are dropped and
    /// parallel edges deduplicated keeping the minimum weight (the same
    /// normalization [`crate::builder::GraphBuilder`] applies).
    pub fn from_edge_list(n: usize, directed: bool, edges: impl IntoIterator<Item = Edge>) -> Self {
        // Normalize to the logical edge set: sorted, min-weight deduped.
        let mut logical: Vec<Edge> = edges
            .into_iter()
            .filter(|e| e.src != e.dst)
            .map(|e| {
                assert!(
                    (e.src as usize) < n && (e.dst as usize) < n,
                    "edge ({}, {}) out of range for n={n}",
                    e.src,
                    e.dst
                );
                if !directed && e.src > e.dst {
                    Edge::new(e.dst, e.src, e.w)
                } else {
                    e
                }
            })
            .collect();
        logical.sort_unstable_by_key(|e| (e.src, e.dst, e.w));
        logical.dedup_by_key(|e| (e.src, e.dst));
        let m = logical.len();

        // Directed adjacency entries: one per logical edge for directed
        // graphs, both orientations for undirected ones.
        let mut fwd: Vec<Edge> = Vec::with_capacity(if directed { m } else { 2 * m });
        fwd.extend_from_slice(&logical);
        if !directed {
            fwd.extend(logical.iter().map(|e| Edge::new(e.dst, e.src, e.w)));
        }
        let mut rev: Vec<Edge> = fwd.iter().map(|e| Edge::new(e.dst, e.src, e.w)).collect();
        fwd.sort_unstable_by_key(|e| (e.src, e.dst));
        rev.sort_unstable_by_key(|e| (e.src, e.dst));

        let csr = |entries: &[Edge]| {
            let mut off = Vec::with_capacity(n + 1);
            let mut adj = Vec::with_capacity(entries.len());
            off.push(0);
            let mut next: NodeId = 0;
            for e in entries {
                while next < e.src {
                    off.push(adj.len());
                    next += 1;
                }
                adj.push((e.dst, e.w));
            }
            while off.len() < n + 1 {
                off.push(adj.len());
            }
            (off, adj)
        };
        let (out_off, out_adj) = csr(&fwd);
        let (inc_off, inc_adj) = csr(&rev);

        // Communication graph: union of both directions, deduped.
        let mut comm_pairs: Vec<(NodeId, NodeId)> = fwd
            .iter()
            .map(|e| (e.src, e.dst))
            .chain(rev.iter().map(|e| (e.src, e.dst)))
            .collect();
        comm_pairs.sort_unstable();
        comm_pairs.dedup();
        let mut comm_off = Vec::with_capacity(n + 1);
        let mut comm_adj = Vec::with_capacity(comm_pairs.len());
        comm_off.push(0);
        let mut next: NodeId = 0;
        for &(u, v) in &comm_pairs {
            while next < u {
                comm_off.push(comm_adj.len());
                next += 1;
            }
            comm_adj.push(v);
        }
        while comm_off.len() < n + 1 {
            comm_off.push(comm_adj.len());
        }

        WGraph {
            n,
            directed,
            m,
            out_off,
            out_adj,
            inc_off,
            inc_adj,
            comm_off,
            comm_adj,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of (logical) edges `m`: directed edge count for directed
    /// graphs, undirected edge count for undirected graphs.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Whether the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-neighbors of `v` with weights, sorted by neighbor id.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[(NodeId, Weight)] {
        let v = v as usize;
        &self.out_adj[self.out_off[v]..self.out_off[v + 1]]
    }

    /// In-neighbors of `v` with weights, sorted by neighbor id.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[(NodeId, Weight)] {
        let v = v as usize;
        &self.inc_adj[self.inc_off[v]..self.inc_off[v + 1]]
    }

    /// Communication neighbors of `v` in the underlying undirected graph.
    #[inline]
    pub fn comm_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.comm_adj[self.comm_off[v]..self.comm_off[v + 1]]
    }

    /// Degree of `v` in the communication graph.
    #[inline]
    pub fn comm_degree(&self, v: NodeId) -> usize {
        self.comm_off[v as usize + 1] - self.comm_off[v as usize]
    }

    /// The weight of edge `u -> v`, if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let row = self.out_edges(u);
        row.binary_search_by_key(&v, |&(d, _)| d)
            .ok()
            .map(|i| row[i].1)
    }

    /// Iterator over all logical edges. For undirected graphs each edge is
    /// yielded once with `src < dst`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.nodes().flat_map(move |u| {
            self.out_edges(u).iter().filter_map(move |&(v, w)| {
                if self.directed || u < v {
                    Some(Edge::new(u, v, w))
                } else {
                    None
                }
            })
        })
    }

    /// Iterator over node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.n as NodeId
    }

    /// Largest edge weight `W` (0 for edgeless graphs).
    pub fn max_weight(&self) -> Weight {
        self.out_adj.iter().map(|&(_, w)| w).max().unwrap_or(0)
    }

    /// Number of zero-weight edges (logical count, like [`WGraph::m`]).
    pub fn zero_weight_edges(&self) -> usize {
        self.edges().filter(|e| e.w == 0).count()
    }

    /// The subgraph containing only zero-weight edges (same node set).
    /// Used by the approximate-APSP zero-closure step (paper Section IV).
    pub fn zero_subgraph(&self) -> WGraph {
        WGraph::from_edge_list(self.n, self.directed, self.edges().filter(|e| e.w == 0))
    }

    /// Apply `f` to every edge weight, producing a new graph with the same
    /// topology. Used by the Section IV weight transform and by the
    /// approximate-APSP scale rounding.
    pub fn map_weights(&self, mut f: impl FnMut(Edge) -> Weight) -> WGraph {
        let mut mapped = self.clone();
        for u in self.nodes() {
            let (lo, hi) = (self.out_off[u as usize], self.out_off[u as usize + 1]);
            for i in lo..hi {
                let (v, w) = self.out_adj[i];
                mapped.out_adj[i].1 = f(Edge::new(u, v, w));
            }
        }
        // Mirror the mapped out-weights into the in-adjacency.
        for v in self.nodes() {
            let (lo, hi) = (self.inc_off[v as usize], self.inc_off[v as usize + 1]);
            for i in lo..hi {
                let u = self.inc_adj[i].0;
                mapped.inc_adj[i].1 = mapped
                    .edge_weight(u, v)
                    .expect("in-edge must mirror an out-edge");
            }
        }
        mapped
    }

    /// Reverse all edges (no-op for undirected graphs).
    pub fn reversed(&self) -> WGraph {
        if !self.directed {
            return self.clone();
        }
        let mut rev = self.clone();
        std::mem::swap(&mut rev.out_off, &mut rev.inc_off);
        std::mem::swap(&mut rev.out_adj, &mut rev.inc_adj);
        rev
    }

    /// Total number of directed adjacency entries (2m for undirected).
    #[inline]
    pub fn out_entry_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Resident bytes of the CSR arrays themselves — the irreducible
    /// storage cost of the graph, used to derive memory budgets for the
    /// scale smoke test.
    pub fn csr_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.out_off.len() + self.inc_off.len() + self.comm_off.len()) * size_of::<usize>()
            + (self.out_adj.len() + self.inc_adj.len()) * size_of::<(NodeId, Weight)>()
            + self.comm_adj.len() * size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond(directed: bool) -> WGraph {
        let mut b = GraphBuilder::new(4, directed);
        b.add_edge(0, 1, 2);
        b.add_edge(0, 2, 0);
        b.add_edge(1, 3, 1);
        b.add_edge(2, 3, 5);
        b.build()
    }

    #[test]
    fn directed_adjacency() {
        let g = diamond(true);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.out_edges(0), &[(1, 2), (2, 0)]);
        assert_eq!(g.in_edges(3), &[(1, 1), (2, 5)]);
        assert_eq!(g.out_edges(3), &[]);
        assert!(g.is_directed());
    }

    #[test]
    fn undirected_adjacency_mirrors() {
        let g = diamond(false);
        assert_eq!(g.m(), 4);
        assert_eq!(g.out_edges(3), &[(1, 1), (2, 5)]);
        assert_eq!(g.in_edges(3), &[(1, 1), (2, 5)]);
        assert_eq!(g.comm_neighbors(0), &[1, 2]);
    }

    #[test]
    fn comm_neighbors_union_of_directions() {
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 1, 7);
        b.add_edge(2, 0, 3);
        let g = b.build();
        assert_eq!(g.comm_neighbors(0), &[1, 2]);
        assert_eq!(g.comm_neighbors(1), &[0]);
        assert_eq!(g.comm_neighbors(2), &[0]);
    }

    #[test]
    fn edge_weight_lookup() {
        let g = diamond(true);
        assert_eq!(g.edge_weight(0, 2), Some(0));
        assert_eq!(g.edge_weight(2, 0), None);
        assert_eq!(g.edge_weight(1, 3), Some(1));
    }

    #[test]
    fn edges_iterator_counts() {
        let gd = diamond(true);
        assert_eq!(gd.edges().count(), 4);
        let gu = diamond(false);
        assert_eq!(gu.edges().count(), 4);
        assert!(gu.edges().all(|e| e.src < e.dst));
    }

    #[test]
    fn zero_subgraph_keeps_only_zero_edges() {
        let g = diamond(true);
        let z = g.zero_subgraph();
        assert_eq!(z.m(), 1);
        assert_eq!(z.edge_weight(0, 2), Some(0));
        assert_eq!(z.n(), 4);
    }

    #[test]
    fn map_weights_transform() {
        let g = diamond(true);
        let t = g.map_weights(|e| if e.w == 0 { 1 } else { e.w * 10 });
        assert_eq!(t.edge_weight(0, 2), Some(1));
        assert_eq!(t.edge_weight(0, 1), Some(20));
        assert_eq!(t.in_edges(3), &[(1, 10), (2, 50)]);
    }

    #[test]
    fn reversed_swaps_directions() {
        let g = diamond(true).reversed();
        assert_eq!(g.out_edges(3), &[(1, 1), (2, 5)]);
        assert_eq!(g.in_edges(0), &[(1, 2), (2, 0)]);
    }

    #[test]
    fn max_weight_and_zero_count() {
        let g = diamond(true);
        assert_eq!(g.max_weight(), 5);
        assert_eq!(g.zero_weight_edges(), 1);
    }

    #[test]
    fn vec_bridge_round_trips() {
        for directed in [true, false] {
            let g = diamond(directed);
            let (out, inc, comm) = g.to_vecs();
            let back = WGraph::from_vecs(g.n(), directed, &out, &inc, &comm, g.m());
            assert_eq!(g, back);
        }
    }

    #[test]
    fn from_edge_list_matches_builder() {
        for directed in [true, false] {
            let edges = [
                Edge::new(0, 1, 2),
                Edge::new(0, 2, 0),
                Edge::new(1, 3, 1),
                Edge::new(2, 3, 5),
            ];
            let g = WGraph::from_edge_list(4, directed, edges);
            assert_eq!(g, diamond(directed));
        }
    }

    #[test]
    fn from_edge_list_dedups_min_and_drops_loops() {
        let edges = [
            Edge::new(1, 0, 9),
            Edge::new(0, 1, 4), // parallel (undirected): min kept
            Edge::new(2, 2, 1), // self loop: dropped
            Edge::new(1, 2, 3),
        ];
        let g = WGraph::from_edge_list(3, false, edges);
        assert_eq!(g.m(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(4));
        assert_eq!(g.edge_weight(1, 0), Some(4));
        assert_eq!(g.edge_weight(1, 2), Some(3));

        let gd = WGraph::from_edge_list(3, true, edges);
        assert_eq!(gd.m(), 3); // (1,0) and (0,1) are distinct directed edges
        assert_eq!(gd.edge_weight(1, 0), Some(9));
        assert_eq!(gd.comm_neighbors(1), &[0, 2]);
    }

    #[test]
    fn from_edge_list_isolated_nodes_have_empty_rows() {
        let g = WGraph::from_edge_list(5, false, [Edge::new(1, 3, 7)]);
        for v in [0u32, 2, 4] {
            assert!(g.out_edges(v).is_empty());
            assert!(g.in_edges(v).is_empty());
            assert_eq!(g.comm_degree(v), 0);
        }
        assert_eq!(g.comm_neighbors(3), &[1]);
    }
}
