//! Weighted graph representation, workload generators and structural analysis
//! for the reproduction of *Distributed Weighted All Pairs Shortest Paths
//! Through Pipelining* (Agarwal & Ramachandran, IPDPS 2019).
//!
//! The paper's algorithms run on an `n`-node graph `G = (V, E)` with
//! non-negative integer edge weights, **zero-weight edges allowed**, directed
//! or undirected. The communication network is always the underlying
//! undirected graph of `G` (Section I-B of the paper).
//!
//! This crate provides:
//!
//! * [`WGraph`] — the graph type shared by every other crate in the workspace,
//!   with out-/in-adjacency and precomputed communication neighborhoods;
//! * [`gen`] — deterministic, seeded workload generators (random `G(n,p)`,
//!   grids, rings, layered hard cases, the Fig. 1 gadget, zero-heavy
//!   mixtures);
//! * [`analysis`] — weight and degree statistics used by the experiment
//!   harness;
//! * [`io`] — serde-based graph (de)serialization for reproducible
//!   experiment manifests.

pub mod analysis;
pub mod builder;
pub mod gen;
pub mod graph;
pub mod io;
pub mod patch;

pub use builder::GraphBuilder;
pub use graph::{Edge, NodeId, WGraph, Weight, INFINITY};
pub use patch::{normalize_updates, row_is_dirty, EdgeUpdate, NetChange, PatchError, PatchSummary};
