//! The Fig. 1 gadget: h-hop shortest-path parent pointers need not form a
//! tree of height `<= h`.
//!
//! Construction (paper Section III-A, Fig. 1): from source `s` there is a
//! zero-weight path of exactly `h` hops to a node `a`, plus a direct heavy
//! edge `s -> a`. A further node `t` hangs off `a`. The h-hop shortest path
//! to `a` uses the zero path (distance 0, h hops, parent = last zero-path
//! node), while the h-hop shortest path to `t` must use the heavy shortcut
//! (the zero route would take `h+1` hops), so `t`'s parent is `a`. Following
//! parent pointers from `t` to the root therefore takes `h+1 > h` hops.

use crate::builder::GraphBuilder;
use crate::graph::{NodeId, WGraph, Weight};

/// Named nodes of one gadget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig1Nodes {
    pub s: NodeId,
    pub a: NodeId,
    pub t: NodeId,
    /// Last node of the zero path (the h-hop parent of `a`).
    pub last_zero: NodeId,
}

/// Build one Fig. 1 gadget for hop bound `h >= 2`.
///
/// Layout: `s = 0`, zero-path nodes `1..h-1`, `a = h`, `t = h + 1`
/// (so `n = h + 2`). Edges:
/// * `s -> 1 -> 2 -> ... -> h-1 -> a`, all weight 0 (h hops total);
/// * `s -> a` with weight `heavy_w >= 1` (1 hop);
/// * `a -> t` with weight `tail_w`.
///
/// Returns the graph and the named nodes.
pub fn fig1_gadget(
    h: usize,
    heavy_w: Weight,
    tail_w: Weight,
    directed: bool,
) -> (WGraph, Fig1Nodes) {
    assert!(h >= 2, "gadget needs h >= 2");
    assert!(heavy_w >= 1, "shortcut must be heavier than the zero path");
    let n = h + 2;
    let s: NodeId = 0;
    let a: NodeId = h as NodeId;
    let t: NodeId = (h + 1) as NodeId;
    let mut b = GraphBuilder::new(n, directed);
    let mut prev = s;
    for z in 1..h {
        b.add_edge(prev, z as NodeId, 0);
        prev = z as NodeId;
    }
    b.add_edge(prev, a, 0);
    b.add_edge(s, a, heavy_w);
    b.add_edge(a, t, tail_w);
    (
        b.build(),
        Fig1Nodes {
            s,
            a,
            t,
            last_zero: prev,
        },
    )
}

/// Chain `copies` gadgets: the `t` node of gadget `i` is the `s` node of
/// gadget `i+1`. Every copy locally reproduces the Fig. 1 pathology
/// (a parent chain of `h+1 > h` hops from its `t`), giving a whole family
/// of simultaneous violations in one graph, while CSSSP trees
/// (Lemma III.4) stay at height `<= h` everywhere.
pub fn fig1_chain(
    h: usize,
    copies: usize,
    heavy_w: Weight,
    directed: bool,
) -> (WGraph, Vec<Fig1Nodes>) {
    assert!(copies >= 1);
    let per = h + 1; // nodes added per copy beyond the shared s/t boundary
    let n = 1 + copies * per;
    let mut b = GraphBuilder::new(n, directed);
    let mut nodes = Vec::with_capacity(copies);
    let mut s: NodeId = 0;
    for c in 0..copies {
        let base = 1 + c * per; // first zero-path node of this copy
        let a = (base + h - 1) as NodeId;
        let t = (base + h) as NodeId;
        let mut prev = s;
        for z in 0..h - 1 {
            let zn = (base + z) as NodeId;
            b.add_edge(prev, zn, 0);
            prev = zn;
        }
        b.add_edge(prev, a, 0);
        b.add_edge(s, a, heavy_w);
        b.add_edge(a, t, 1);
        nodes.push(Fig1Nodes {
            s,
            a,
            t,
            last_zero: prev,
        });
        s = t;
    }
    (b.build(), nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gadget_shape() {
        let (g, nd) = fig1_gadget(4, 7, 1, true);
        assert_eq!(g.n(), 6);
        assert_eq!(nd.s, 0);
        assert_eq!(nd.a, 4);
        assert_eq!(nd.t, 5);
        assert_eq!(nd.last_zero, 3);
        // zero path 0->1->2->3->4 has 4 hops
        assert_eq!(g.edge_weight(0, 1), Some(0));
        assert_eq!(g.edge_weight(3, 4), Some(0));
        assert_eq!(g.edge_weight(0, 4), Some(7));
        assert_eq!(g.edge_weight(4, 5), Some(1));
    }

    #[test]
    fn chain_shape() {
        let (g, nds) = fig1_chain(3, 2, 5, true);
        assert_eq!(nds.len(), 2);
        assert_eq!(g.n(), 1 + 2 * 4);
        assert_eq!(nds[0].s, 0);
        assert_eq!(nds[1].s, nds[0].t);
        // each copy: h zero edges + shortcut + tail
        assert_eq!(g.m(), 2 * (3 + 2));
    }

    #[test]
    #[should_panic(expected = "h >= 2")]
    fn tiny_h_rejected() {
        let _ = fig1_gadget(1, 1, 1, true);
    }
}
