//! Adversarial instances stressing the pipelined algorithm.
//!
//! The difficulty the paper addresses (Section II) is that with zero-weight
//! edges the hop length of a path and its weighted distance are
//! incomparable: a node can see many incomparable `(d, l)` pairs for the
//! same source. These generators realize that tension.

use crate::builder::GraphBuilder;
use crate::gen::weights::WeightDist;
use crate::graph::{NodeId, WGraph, Weight};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A "staircase": anchors `a_0, ..., a_s` where each consecutive pair is
/// joined both by a direct edge of weight `heavy_w` (1 hop) and by a path
/// of `rung_hops` zero-weight edges (`rung_hops` hops, weight 0).
///
/// Between `a_0` and `a_s` there are `s+1` Pareto-optimal `(d, l)`
/// trade-offs: taking `j` heavy shortcuts costs `j * heavy_w` weight and
/// `j + (s-j) * rung_hops` hops. An h-hop shortest path query must pick the
/// right mixture, and intermediate nodes legitimately hold multiple entries
/// per source — exactly the regime Invariant 2 of the paper bounds.
pub fn staircase(segments: usize, rung_hops: usize, heavy_w: Weight, directed: bool) -> WGraph {
    assert!(
        segments >= 1 && rung_hops >= 2,
        "need >=1 segment, >=2 rung hops"
    );
    let per_seg = rung_hops - 1; // interior zero-path nodes per segment
    let n = (segments + 1) + segments * per_seg;
    let mut b = GraphBuilder::new(n, directed);
    let anchor = |i: usize| (i * (per_seg + 1)) as NodeId;
    for i in 0..segments {
        let a = anchor(i);
        let next = anchor(i + 1);
        b.add_edge(a, next, heavy_w);
        // zero path a -> z1 -> ... -> z_{per_seg} -> next
        let base = a + 1;
        let mut prev = a;
        for j in 0..per_seg {
            let z = base + j as NodeId;
            b.add_edge(prev, z, 0);
            prev = z;
        }
        b.add_edge(prev, next, 0);
    }
    b.build()
}

/// Index of anchor `i` in a [`staircase`] with the same parameters.
pub fn staircase_anchor(i: usize, rung_hops: usize) -> NodeId {
    (i * rung_hops) as NodeId
}

/// A layered DAG: `layers` layers of `width` nodes; every node of layer `i`
/// links to every node of layer `i+1` with weights from `dist`.
/// High per-edge message pressure for multi-source runs (many sources, many
/// equal-length routes), used in congestion experiments.
pub fn layered_conflict(
    layers: usize,
    width: usize,
    dist: WeightDist,
    directed: bool,
    seed: u64,
) -> WGraph {
    assert!(layers >= 2 && width >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = layers * width;
    let id = |l: usize, j: usize| (l * width + j) as NodeId;
    let mut b = GraphBuilder::new(n, directed);
    for l in 0..layers - 1 {
        for j in 0..width {
            for j2 in 0..width {
                b.add_edge(id(l, j), id(l + 1, j2), dist.sample(&mut rng));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staircase_shape() {
        let g = staircase(3, 4, 10, true);
        // anchors: 4, interior: 3*3
        assert_eq!(g.n(), 4 + 9);
        // per segment: 1 heavy + 4 zero edges
        assert_eq!(g.m(), 3 * 5);
        assert_eq!(g.zero_weight_edges(), 3 * 4);
        assert_eq!(staircase_anchor(3, 4), 12);
        assert_eq!(g.edge_weight(0, 4), Some(10));
    }

    #[test]
    fn staircase_zero_path_exists() {
        let g = staircase(1, 3, 5, true);
        // 0 ->(5) 3 and 0 -> 1 -> 2 -> 3 all zero
        assert_eq!(g.edge_weight(0, 1), Some(0));
        assert_eq!(g.edge_weight(1, 2), Some(0));
        assert_eq!(g.edge_weight(2, 3), Some(0));
        assert_eq!(g.edge_weight(0, 3), Some(5));
    }

    #[test]
    fn layered_shape() {
        let g = layered_conflict(3, 4, WeightDist::Constant(1), true, 0);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 2 * 16);
        assert_eq!(g.out_edges(0).len(), 4);
        assert_eq!(g.in_edges(11).len(), 4);
    }
}
