//! Large-graph families with streaming construction.
//!
//! The classic generators route every edge through `GraphBuilder`'s
//! `BTreeMap` (or, for `gnp`, an O(n²) pair loop) — fine at n≤4k, hopeless
//! at 100k+. These families emit a flat edge list and hand it to
//! [`WGraph::from_edge_list`], so construction is O(m log m) time and O(m)
//! transient memory with no per-node intermediates.

use crate::gen::weights::WeightDist;
use crate::graph::{Edge, NodeId, WGraph};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Preferential-attachment power-law graph (Barabási–Albert flavor):
/// nodes arrive one at a time and connect to `attach` distinct earlier
/// nodes sampled proportionally to current degree. Undirected, connected
/// by construction, ~`attach·n` edges, heavy-tailed degrees — the
/// "social graph" shape of the millions-of-users regime.
///
/// The degree-proportional sampling uses the repeated-endpoint trick: a
/// flat vector holding every edge endpoint seen so far, from which a
/// uniform index is degree-proportional. O(m) memory, no per-node state.
pub fn power_law(n: usize, attach: usize, dist: WeightDist, seed: u64) -> WGraph {
    assert!(n >= 2, "power_law needs at least 2 nodes");
    let attach = attach.max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = Vec::with_capacity(n.saturating_mul(attach));
    // Every endpoint of every accepted edge; sampling a uniform element
    // samples a node with probability proportional to its degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n.saturating_mul(attach));
    // Seed: an edge between the first two nodes.
    edges.push(Edge::new(0, 1, dist.sample(&mut rng)));
    endpoints.extend([0, 1]);
    let mut picked: Vec<NodeId> = Vec::with_capacity(attach);
    for v in 2..n as NodeId {
        picked.clear();
        let want = attach.min(v as usize);
        // Rejection-sample distinct targets; `want <= v`, so at most `v`
        // distinct candidates exist and the loop terminates quickly (the
        // endpoint list always covers every earlier node's degree ≥ 1
        // once it has been attached, and nodes 0..2 are seeded).
        let mut guard = 0usize;
        while picked.len() < want {
            let t = if guard < 64 * want {
                endpoints[rng.gen_range(0..endpoints.len())]
            } else {
                // Pathological rejection streak: fall back to uniform.
                rng.gen_range(0..v)
            };
            guard += 1;
            if t != v && !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            edges.push(Edge::new(v, t, dist.sample(&mut rng)));
            endpoints.extend([v, t]);
        }
    }
    WGraph::from_edge_list(n, false, edges)
}

/// `rows × cols` 2-D grid (4-neighbor lattice), undirected, weights from
/// `dist`. The canonical bounded-degree planar workload for short-range
/// SSSP at scale: diameter `rows + cols`, every node degree ≤ 4.
pub fn grid2d(rows: usize, cols: usize, dist: WeightDist, seed: u64) -> WGraph {
    assert!(rows >= 1 && cols >= 1);
    let n = rows * cols;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut edges: Vec<Edge> = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(Edge::new(id(r, c), id(r, c + 1), dist.sample(&mut rng)));
            }
            if r + 1 < rows {
                edges.push(Edge::new(id(r, c), id(r + 1, c), dist.sample(&mut rng)));
            }
        }
    }
    WGraph::from_edge_list(n, false, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_deterministic_and_connected_shape() {
        let d = WeightDist::Uniform { max: 9 };
        let g = power_law(500, 3, d, 42);
        assert_eq!(g, power_law(500, 3, d, 42));
        assert_eq!(g.n(), 500);
        // ~3 edges per arriving node (dedup can only shrink, attachment
        // never crosses the same pair twice within one node's batch).
        assert!(g.m() >= 3 * 498 / 2 && g.m() <= 1 + 3 * 498);
        // Every node attached to an earlier one: no isolated nodes.
        for v in g.nodes() {
            assert!(g.comm_degree(v) >= 1, "node {v} isolated");
        }
        // Heavy tail: some hub should far exceed the attach count.
        let max_deg = g.nodes().map(|v| g.comm_degree(v)).max().unwrap();
        assert!(max_deg > 12, "no hub emerged (max degree {max_deg})");
    }

    #[test]
    fn power_law_small_n() {
        let g = power_law(2, 4, WeightDist::Constant(1), 0);
        assert_eq!(g.m(), 1);
        let g3 = power_law(3, 4, WeightDist::Constant(1), 0);
        assert!(g3.m() >= 2); // node 2 attaches to both earlier nodes
    }

    #[test]
    fn grid2d_matches_classic_grid_shape() {
        let g = grid2d(3, 4, WeightDist::Constant(2), 7);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // rows*(cols-1) + (rows-1)*cols
        assert_eq!(g.comm_degree(0), 2); // corner
        assert_eq!(g.comm_degree(5), 4); // interior
        assert_eq!(g.max_weight(), 2);
    }

    #[test]
    fn grid2d_streaming_scale_probe() {
        // Big enough to catch accidental O(n²) behavior by timeout, small
        // enough for a debug test run.
        let g = grid2d(200, 200, WeightDist::Uniform { max: 100 }, 1);
        assert_eq!(g.n(), 40_000);
        assert_eq!(g.m(), 200 * 199 * 2);
        assert!(g.csr_bytes() > 0);
    }
}
