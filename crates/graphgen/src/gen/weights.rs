//! Edge-weight distributions for randomized generators.

use crate::graph::Weight;
use rand::Rng;

/// How to draw edge weights.
///
/// The paper's regimes of interest are parameterized by the maximum edge
/// weight `W` (Theorem I.2) and by the fraction of zero-weight edges (the
/// motivating difficulty). `ZeroOr` draws zero with probability `p_zero`
/// and otherwise uniform in `1..=max`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightDist {
    /// Every edge has the same weight (use `Constant(1)` for unweighted).
    Constant(Weight),
    /// Uniform in `0..=max` (zero included with probability `1/(max+1)`).
    Uniform { max: Weight },
    /// Zero with probability `p_zero`, otherwise uniform in `1..=max`.
    ZeroOr { p_zero: f64, max: Weight },
}

impl WeightDist {
    /// Draw one weight.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Weight {
        match *self {
            WeightDist::Constant(w) => w,
            WeightDist::Uniform { max } => rng.gen_range(0..=max),
            WeightDist::ZeroOr { p_zero, max } => {
                if rng.gen_bool(p_zero.clamp(0.0, 1.0)) {
                    0
                } else {
                    rng.gen_range(1..=max.max(1))
                }
            }
        }
    }

    /// Largest weight this distribution can produce.
    pub fn max_weight(&self) -> Weight {
        match *self {
            WeightDist::Constant(w) => w,
            WeightDist::Uniform { max } => max,
            WeightDist::ZeroOr { max, .. } => max.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn constant_is_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(WeightDist::Constant(7).sample(&mut rng), 7);
        }
    }

    #[test]
    fn uniform_within_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = WeightDist::Uniform { max: 5 };
        for _ in 0..200 {
            assert!(d.sample(&mut rng) <= 5);
        }
    }

    #[test]
    fn zero_or_produces_zeros_and_positives() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let d = WeightDist::ZeroOr {
            p_zero: 0.5,
            max: 9,
        };
        let samples: Vec<_> = (0..400).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.contains(&0));
        assert!(samples.iter().any(|&w| w > 0));
        assert!(samples.iter().all(|&w| w <= 9));
    }

    #[test]
    fn max_weight_reported() {
        assert_eq!(WeightDist::Constant(3).max_weight(), 3);
        assert_eq!(WeightDist::Uniform { max: 8 }.max_weight(), 8);
        assert_eq!(
            WeightDist::ZeroOr {
                p_zero: 0.1,
                max: 4
            }
            .max_weight(),
            4
        );
    }
}
