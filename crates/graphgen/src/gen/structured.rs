//! Additional structured topologies used by the wider experiment sweeps.

use crate::builder::GraphBuilder;
use crate::gen::weights::WeightDist;
use crate::graph::{NodeId, WGraph};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Complete binary tree with `n` nodes (node `v`'s children are `2v+1`,
/// `2v+2`). Deep hierarchies stress the tree primitives (broadcast,
/// convergecast) and give large hop diameters at tiny `m`.
pub fn binary_tree(n: usize, directed: bool, dist: WeightDist, seed: u64) -> WGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n, directed);
    for v in 1..n {
        let parent = ((v - 1) / 2) as NodeId;
        b.add_edge(parent, v as NodeId, dist.sample(&mut rng));
    }
    b.build()
}

/// Barbell: two cliques of size `clique` joined by a path of
/// `bridge_len` edges. The bridge is the congestion bottleneck every
/// multi-source run has to squeeze through — worst case for pipelining
/// claims that hide congestion.
pub fn barbell(clique: usize, bridge_len: usize, dist: WeightDist, seed: u64) -> WGraph {
    assert!(clique >= 2 && bridge_len >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = 2 * clique + bridge_len.saturating_sub(1);
    let mut b = GraphBuilder::new(n, false);
    // left clique: 0..clique, right clique occupies the tail
    for u in 0..clique {
        for v in u + 1..clique {
            b.add_edge(u as NodeId, v as NodeId, dist.sample(&mut rng));
        }
    }
    let right0 = clique + bridge_len - 1;
    for u in 0..clique {
        for v in u + 1..clique {
            b.add_edge(
                (right0 + u) as NodeId,
                (right0 + v) as NodeId,
                dist.sample(&mut rng),
            );
        }
    }
    // bridge: clique-1 -> clique -> ... -> right0
    let mut prev = (clique - 1) as NodeId;
    for i in 0..bridge_len {
        let next = if i + 1 == bridge_len {
            right0 as NodeId
        } else {
            (clique + i) as NodeId
        };
        b.add_edge(prev, next, dist.sample(&mut rng));
        prev = next;
    }
    b.build()
}

/// Random `d`-regular-ish expander: union of `d/2` random Hamiltonian
/// cycles (undirected; every node has degree `d` up to collisions).
/// Logarithmic diameter with high girth-ish structure — the opposite
/// stress profile to [`barbell`].
pub fn expanderish(n: usize, d: usize, dist: WeightDist, seed: u64) -> WGraph {
    assert!(n >= 3 && d >= 2);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n, false);
    for _ in 0..d.div_ceil(2) {
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.shuffle(&mut rng);
        for i in 0..n {
            b.add_edge(order[i], order[(i + 1) % n], dist.sample(&mut rng));
        }
    }
    b.build()
}

/// Weighted torus: `rows x cols` grid with wraparound in both dimensions.
pub fn torus(rows: usize, cols: usize, dist: WeightDist, seed: u64) -> WGraph {
    assert!(rows >= 3 && cols >= 3);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let id = |r: usize, c: usize| ((r % rows) * cols + (c % cols)) as NodeId;
    let mut b = GraphBuilder::new(rows * cols, false);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r, c + 1), dist.sample(&mut rng));
            b.add_edge(id(r, c), id(r + 1, c), dist.sample(&mut rng));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    const UNIT: WeightDist = WeightDist::Constant(1);

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(15, false, UNIT, 0);
        assert_eq!(g.m(), 14);
        assert!(analysis::comm_connected(&g));
        // root has 2 children; a mid node has parent + 2 children
        assert_eq!(g.comm_degree(0), 2);
        assert_eq!(g.comm_degree(1), 3);
        assert_eq!(g.comm_degree(14), 1);
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 3, UNIT, 0);
        // 2 cliques of 4 (6 edges each) + 3 bridge edges
        assert_eq!(g.n(), 2 * 4 + 2);
        assert_eq!(g.m(), 6 + 6 + 3);
        assert!(analysis::comm_connected(&g));
        // the bridge inflates the diameter
        assert!(analysis::comm_diameter(&g).unwrap() >= 4);
    }

    #[test]
    fn expander_small_diameter() {
        let g = expanderish(64, 4, UNIT, 1);
        assert!(analysis::comm_connected(&g));
        let d = analysis::comm_diameter(&g).unwrap();
        assert!(d <= 8, "expander diameter {d} too large");
    }

    #[test]
    fn torus_shape() {
        let g = torus(4, 5, UNIT, 0);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 2 * 20);
        for v in g.nodes() {
            assert_eq!(g.comm_degree(v), 4);
        }
    }
}
