//! Randomized graph families.

use crate::builder::GraphBuilder;
use crate::gen::weights::WeightDist;
use crate::graph::{NodeId, WGraph};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Erdős–Rényi `G(n, p)` with weights drawn from `dist`.
pub fn gnp(n: usize, p: f64, directed: bool, dist: WeightDist, seed: u64) -> WGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n, directed);
    for u in 0..n {
        for v in 0..n {
            if u == v || (!directed && u > v) {
                continue;
            }
            if rng.gen_bool(p) {
                b.add_edge(u as NodeId, v as NodeId, dist.sample(&mut rng));
            }
        }
    }
    b.build()
}

/// `G(n, p)` plus a random Hamiltonian backbone so the communication graph
/// is connected (and, for directed graphs, every node is reachable from
/// every other along the cycle). Useful for experiments where unreachable
/// pairs would dominate.
pub fn gnp_connected(n: usize, p: f64, directed: bool, dist: WeightDist, seed: u64) -> WGraph {
    assert!(n >= 2);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n, directed);
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.shuffle(&mut rng);
    for i in 0..n {
        let u = order[i];
        let v = order[(i + 1) % n];
        if n == 2 && i == 1 {
            // avoid duplicating the single undirected edge with a different weight
            if !directed {
                break;
            }
        }
        b.add_edge(u, v, dist.sample(&mut rng));
    }
    for u in 0..n {
        for v in 0..n {
            if u == v || (!directed && u > v) {
                continue;
            }
            if rng.gen_bool(p) {
                b.add_edge(u as NodeId, v as NodeId, dist.sample(&mut rng));
            }
        }
    }
    b.build()
}

/// Connected random graph where a fraction `p_zero` of edges have weight
/// zero and the rest are uniform in `1..=max_w`. This is the paper's
/// motivating regime: zero-weight edges break the classical
/// weight-expansion reduction (Section I).
pub fn zero_heavy(n: usize, p: f64, p_zero: f64, max_w: u64, directed: bool, seed: u64) -> WGraph {
    gnp_connected(
        n,
        p,
        directed,
        WeightDist::ZeroOr { p_zero, max: max_w },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_deterministic() {
        let d = WeightDist::Uniform { max: 5 };
        assert_eq!(gnp(20, 0.2, true, d, 7), gnp(20, 0.2, true, d, 7));
    }

    #[test]
    fn gnp_edge_density_plausible() {
        let g = gnp(50, 0.5, false, WeightDist::Constant(1), 1);
        let max_m = 50 * 49 / 2;
        assert!(g.m() > max_m / 4 && g.m() < 3 * max_m / 4);
    }

    #[test]
    fn gnp_connected_has_backbone() {
        let g = gnp_connected(30, 0.0, false, WeightDist::Constant(1), 3);
        // with p=0 only the Hamiltonian cycle remains
        assert_eq!(g.m(), 30);
        for v in g.nodes() {
            assert_eq!(g.comm_degree(v), 2);
        }
    }

    #[test]
    fn gnp_connected_two_nodes() {
        let g = gnp_connected(2, 0.0, false, WeightDist::Constant(4), 9);
        assert_eq!(g.m(), 1);
        let gd = gnp_connected(2, 0.0, true, WeightDist::Constant(4), 9);
        assert_eq!(gd.m(), 2); // both directions of the cycle
    }

    #[test]
    fn zero_heavy_has_zero_edges() {
        let g = zero_heavy(40, 0.2, 0.5, 8, false, 11);
        assert!(g.zero_weight_edges() > 0);
        assert!(g.max_weight() <= 8);
    }
}
