//! Deterministic, seeded workload generators.
//!
//! Every generator takes explicit parameters plus (where randomized) a
//! `u64` seed, and produces bit-identical graphs across runs and platforms
//! (ChaCha-based RNG). These are the workloads used by the experiment
//! harness in `dw-bench` (see DESIGN.md §3).

mod classic;
mod fig1;
mod hard;
mod random;
mod scale;
mod structured;
mod weights;

pub use classic::{complete, grid, path, ring, star};
pub use fig1::{fig1_chain, fig1_gadget};
pub use hard::{layered_conflict, staircase, staircase_anchor};
pub use random::{gnp, gnp_connected, zero_heavy};
pub use scale::{grid2d, power_law};
pub use structured::{barbell, binary_tree, expanderish, torus};
pub use weights::WeightDist;
