//! Deterministic structured topologies.

use crate::builder::GraphBuilder;
use crate::gen::weights::WeightDist;
use crate::graph::{NodeId, WGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Simple path `0 - 1 - ... - n-1`.
pub fn path(n: usize, directed: bool, dist: WeightDist, seed: u64) -> WGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n, directed);
    for v in 1..n {
        b.add_edge((v - 1) as NodeId, v as NodeId, dist.sample(&mut rng));
    }
    b.build()
}

/// Cycle on `n` nodes (requires `n >= 3`).
pub fn ring(n: usize, directed: bool, dist: WeightDist, seed: u64) -> WGraph {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n, directed);
    for v in 0..n {
        b.add_edge(v as NodeId, ((v + 1) % n) as NodeId, dist.sample(&mut rng));
    }
    b.build()
}

/// Star with center 0.
pub fn star(n: usize, directed: bool, dist: WeightDist, seed: u64) -> WGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n, directed);
    for v in 1..n {
        b.add_edge(0, v as NodeId, dist.sample(&mut rng));
    }
    b.build()
}

/// Complete graph (undirected) or complete digraph.
pub fn complete(n: usize, directed: bool, dist: WeightDist, seed: u64) -> WGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n, directed);
    for u in 0..n {
        for v in 0..n {
            if u == v {
                continue;
            }
            if !directed && u > v {
                continue;
            }
            b.add_edge(u as NodeId, v as NodeId, dist.sample(&mut rng));
        }
    }
    b.build()
}

/// `rows x cols` grid, 4-neighborhood.
pub fn grid(rows: usize, cols: usize, directed: bool, dist: WeightDist, seed: u64) -> WGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut b = GraphBuilder::new(n, directed);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), dist.sample(&mut rng));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), dist.sample(&mut rng));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIT: WeightDist = WeightDist::Constant(1);

    #[test]
    fn path_shape() {
        let g = path(5, false, UNIT, 0);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 4);
        assert_eq!(g.comm_degree(0), 1);
        assert_eq!(g.comm_degree(2), 2);
    }

    #[test]
    fn ring_shape() {
        let g = ring(6, true, UNIT, 0);
        assert_eq!(g.m(), 6);
        for v in g.nodes() {
            assert_eq!(g.out_edges(v).len(), 1);
            assert_eq!(g.in_edges(v).len(), 1);
        }
    }

    #[test]
    fn star_shape() {
        let g = star(7, false, UNIT, 0);
        assert_eq!(g.m(), 6);
        assert_eq!(g.comm_degree(0), 6);
        assert_eq!(g.comm_degree(3), 1);
    }

    #[test]
    fn complete_shape() {
        let gu = complete(5, false, UNIT, 0);
        assert_eq!(gu.m(), 10);
        let gd = complete(5, true, UNIT, 0);
        assert_eq!(gd.m(), 20);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4, false, UNIT, 0);
        assert_eq!(g.n(), 12);
        // 3*3 horizontal + 2*4 vertical
        assert_eq!(g.m(), 9 + 8);
    }

    #[test]
    fn generators_deterministic_per_seed() {
        let d = WeightDist::Uniform { max: 10 };
        assert_eq!(grid(4, 4, false, d, 42), grid(4, 4, false, d, 42));
        assert_ne!(
            grid(4, 4, false, d, 42)
                .edges()
                .map(|e| e.w)
                .collect::<Vec<_>>(),
            grid(4, 4, false, d, 43)
                .edges()
                .map(|e| e.w)
                .collect::<Vec<_>>()
        );
    }
}
