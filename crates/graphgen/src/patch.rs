//! In-place CSR patching for dynamic graphs.
//!
//! A batch of [`EdgeUpdate`]s is first *normalized* into per-edge
//! [`NetChange`]s — the net effect of the batch on each logical edge,
//! measured against the graph's current state, with no-ops dropped —
//! and then applied by [`WGraph::apply_updates`], which rebuilds only
//! the adjacency slabs of touched rows (untouched row spans are bulk
//! `memcpy`s between the old and new arenas). The patched graph is
//! byte-identical to a from-scratch [`WGraph::from_edge_list`] rebuild
//! of the final edge set, so every invariant the rest of the workspace
//! relies on (sorted rows, canonical CSR, derived `PartialEq` ==
//! logical equality) survives updates.
//!
//! This module also hosts the *invalidation rule* of the dynamic
//! subsystem ([`row_is_dirty`]): given one source's old distance
//! column, decide whether any change in the batch can alter that
//! source's shortest-path tree. A source `s` is **clean** w.r.t. a
//! changed edge `(u, v)` iff the edge is *strictly slack* under the old
//! distances: `d(s,u) + w > d(s,v)` for the smallest weight the edge
//! carries on either side of the change. Old distances form a feasible
//! potential on the new graph and every old shortest path uses only
//! tight edges — all unchanged for a clean source — so the old column
//! (distances *and* parent pointers) is exact on the new graph and can
//! be carried forward by reference. See DESIGN.md §14 for the proof and
//! its relation to the paper's h-hop/blocker regions.

use crate::graph::{NodeId, WGraph, Weight, INFINITY};
use std::collections::BTreeMap;

/// One edge-level update event. `Insert` and `SetWeight` are both
/// upserts (two names for intent: feeding an `Insert` for an existing
/// edge re-weights it, a `SetWeight` for a missing edge creates it);
/// `Remove` deletes the edge if present. For undirected graphs the
/// `(src, dst)` pair names the logical edge in either orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeUpdate {
    Insert { src: NodeId, dst: NodeId, w: Weight },
    SetWeight { src: NodeId, dst: NodeId, w: Weight },
    Remove { src: NodeId, dst: NodeId },
}

impl EdgeUpdate {
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            EdgeUpdate::Insert { src, dst, .. }
            | EdgeUpdate::SetWeight { src, dst, .. }
            | EdgeUpdate::Remove { src, dst } => (src, dst),
        }
    }
}

/// The net effect of a batch on one logical edge: its weight before the
/// batch (`None` = absent) and after. Normalization guarantees
/// `old != new`, endpoints in range, no self loops, and for undirected
/// graphs `src < dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetChange {
    pub src: NodeId,
    pub dst: NodeId,
    pub old: Option<Weight>,
    pub new: Option<Weight>,
}

/// Why a batch was rejected. Updates are all-or-nothing: a rejected
/// batch leaves the graph untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchError {
    /// An endpoint is outside `0..n`.
    OutOfRange { src: NodeId, dst: NodeId },
    /// Self loops are not representable (the graph invariant drops
    /// them); an update naming one is a caller bug, surfaced typed.
    SelfLoop { node: NodeId },
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchError::OutOfRange { src, dst } => {
                write!(f, "edge ({src}, {dst}) out of node range")
            }
            PatchError::SelfLoop { node } => write!(f, "self loop on node {node}"),
        }
    }
}

impl std::error::Error for PatchError {}

/// What a successfully applied batch did, in logical-edge terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatchSummary {
    /// The normalized per-edge net changes, sorted by `(src, dst)`.
    /// This is the input to the invalidation rule.
    pub changes: Vec<NetChange>,
    /// Edges created by the batch.
    pub inserted: usize,
    /// Edges deleted by the batch.
    pub removed: usize,
    /// Edges whose weight changed.
    pub reweighted: usize,
    /// Updates whose net effect was nothing (e.g. a remove of an absent
    /// edge, or an insert later removed within the same batch).
    pub noops: usize,
}

/// Fold a batch into its net per-edge effect against `g`'s current
/// state. Later updates to the same edge win; updates whose final state
/// equals the current state are counted as no-ops and dropped.
pub fn normalize_updates(
    g: &WGraph,
    updates: &[EdgeUpdate],
) -> Result<(Vec<NetChange>, usize), PatchError> {
    let n = g.n() as NodeId;
    let mut fin: BTreeMap<(NodeId, NodeId), Option<Weight>> = BTreeMap::new();
    for u in updates {
        let (src, dst) = u.endpoints();
        if src >= n || dst >= n {
            return Err(PatchError::OutOfRange { src, dst });
        }
        if src == dst {
            return Err(PatchError::SelfLoop { node: src });
        }
        let key = if !g.is_directed() && src > dst {
            (dst, src)
        } else {
            (src, dst)
        };
        let state = match *u {
            EdgeUpdate::Insert { w, .. } | EdgeUpdate::SetWeight { w, .. } => Some(w),
            EdgeUpdate::Remove { .. } => None,
        };
        fin.insert(key, state);
    }
    let mut changes = Vec::new();
    let mut noops = 0usize;
    for ((src, dst), new) in fin {
        let old = g.edge_weight(src, dst);
        if old == new {
            noops += 1;
        } else {
            changes.push(NetChange { src, dst, old, new });
        }
    }
    Ok((changes, noops))
}

/// The invalidation rule: can any change in `changes` alter the
/// shortest-path column `dist` (one source's old distances to every
/// node)? Exact for full-range tables (no `Δ` truncation): a `false`
/// answer means the old column — distances *and* recorded parents — is
/// still exact on the patched graph.
///
/// Per change `(u, v)` with test weight `w = min(old, new)` (the
/// present side(s) of the change), the source stays clean iff the edge
/// is strictly slack: `d(u) = ∞` or `d(u) + w > d(v)`. Undirected
/// graphs test both orientations. `O(|changes|)` array reads, no graph
/// scan.
pub fn row_is_dirty(dist: &[Weight], changes: &[NetChange], directed: bool) -> bool {
    changes.iter().any(|c| {
        let w = match (c.old, c.new) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return false,
        };
        let reaches = |u: NodeId, v: NodeId| {
            let du = dist[u as usize];
            du != INFINITY && du.saturating_add(w) <= dist[v as usize]
        };
        reaches(c.src, c.dst) || (!directed && reaches(c.dst, c.src))
    })
}

/// Merge one sorted adjacency row with its sorted edit list.
/// `Some(w)` upserts the neighbor at weight `w`, `None` deletes it.
fn merge_row(
    old: &[(NodeId, Weight)],
    edits: &[(NodeId, Option<Weight>)],
    out: &mut Vec<(NodeId, Weight)>,
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() || j < edits.len() {
        if j == edits.len() || (i < old.len() && old[i].0 < edits[j].0) {
            out.push(old[i]);
            i += 1;
        } else {
            if i < old.len() && old[i].0 == edits[j].0 {
                i += 1; // replaced or deleted
            }
            if let Some(w) = edits[j].1 {
                out.push((edits[j].0, w));
            }
            j += 1;
        }
    }
}

/// Rebuild a weighted CSR applying per-row edit lists; rows absent from
/// `edits` are copied wholesale, contiguous untouched spans in one
/// `extend_from_slice`.
fn patch_csr(
    off: &[usize],
    adj: &[(NodeId, Weight)],
    edits: &BTreeMap<NodeId, Vec<(NodeId, Option<Weight>)>>,
) -> (Vec<usize>, Vec<(NodeId, Weight)>) {
    let n = off.len() - 1;
    let mut new_off = Vec::with_capacity(n + 1);
    let mut new_adj: Vec<(NodeId, Weight)> = Vec::with_capacity(adj.len());
    new_off.push(0);
    let mut done = 0usize; // rows [0, done) already emitted
    for (&row, row_edits) in edits {
        let row = row as usize;
        copy_span(off, adj, done, row, &mut new_off, &mut new_adj);
        merge_row(&adj[off[row]..off[row + 1]], row_edits, &mut new_adj);
        new_off.push(new_adj.len());
        done = row + 1;
    }
    copy_span(off, adj, done, n, &mut new_off, &mut new_adj);
    (new_off, new_adj)
}

/// Bulk-copy the untouched row span `[done, upto)` from the old arena.
fn copy_span<T: Copy>(
    off: &[usize],
    adj: &[T],
    done: usize,
    upto: usize,
    new_off: &mut Vec<usize>,
    new_adj: &mut Vec<T>,
) {
    if done < upto {
        let base = new_adj.len();
        new_adj.extend_from_slice(&adj[off[done]..off[upto]]);
        for r in done..upto {
            new_off.push(base + (off[r + 1] - off[done]));
        }
    }
}

/// As [`patch_csr`] for the unweighted communication CSR: touched rows
/// are *replaced* outright (their new contents are recomputed from the
/// patched out/in rows), untouched spans are bulk-copied.
fn replace_comm_rows(
    off: &[usize],
    adj: &[NodeId],
    rows: &BTreeMap<NodeId, Vec<NodeId>>,
) -> (Vec<usize>, Vec<NodeId>) {
    let n = off.len() - 1;
    let mut new_off = Vec::with_capacity(n + 1);
    let mut new_adj: Vec<NodeId> = Vec::with_capacity(adj.len());
    new_off.push(0);
    let mut done = 0usize;
    for (&row, contents) in rows {
        let row = row as usize;
        copy_span(off, adj, done, row, &mut new_off, &mut new_adj);
        new_adj.extend_from_slice(contents);
        new_off.push(new_adj.len());
        done = row + 1;
    }
    copy_span(off, adj, done, n, &mut new_off, &mut new_adj);
    (new_off, new_adj)
}

impl WGraph {
    /// Apply a batch of edge updates in place, rebuilding only the
    /// adjacency slabs of touched rows. All-or-nothing: on error the
    /// graph is unchanged. The returned [`PatchSummary`] carries the
    /// normalized net changes that drive the invalidation rule.
    ///
    /// Postcondition (pinned by tests): `self` equals — byte for byte,
    /// via the canonical CSR layout — `WGraph::from_edge_list` over the
    /// patched logical edge set.
    pub fn apply_updates(&mut self, updates: &[EdgeUpdate]) -> Result<PatchSummary, PatchError> {
        let (changes, noops) = normalize_updates(self, updates)?;
        let mut summary = PatchSummary {
            noops,
            ..PatchSummary::default()
        };
        if changes.is_empty() {
            return Ok(summary);
        }

        // Per-row edit lists for the out- and in-adjacency. Undirected
        // edges mirror into both rows of both arrays.
        let mut out_edits: BTreeMap<NodeId, Vec<(NodeId, Option<Weight>)>> = BTreeMap::new();
        let mut inc_edits: BTreeMap<NodeId, Vec<(NodeId, Option<Weight>)>> = BTreeMap::new();
        for c in &changes {
            match (c.old, c.new) {
                (None, Some(_)) => summary.inserted += 1,
                (Some(_), None) => summary.removed += 1,
                _ => summary.reweighted += 1,
            }
            out_edits.entry(c.src).or_default().push((c.dst, c.new));
            inc_edits.entry(c.dst).or_default().push((c.src, c.new));
            if !self.directed {
                out_edits.entry(c.dst).or_default().push((c.src, c.new));
                inc_edits.entry(c.src).or_default().push((c.dst, c.new));
            }
        }
        for edits in out_edits.values_mut().chain(inc_edits.values_mut()) {
            edits.sort_unstable_by_key(|e| e.0);
        }

        let (out_off, out_adj) = patch_csr(&self.out_off, &self.out_adj, &out_edits);
        let (inc_off, inc_adj) = patch_csr(&self.inc_off, &self.inc_adj, &inc_edits);
        self.out_off = out_off;
        self.out_adj = out_adj;
        self.inc_off = inc_off;
        self.inc_adj = inc_adj;
        self.m = self.m + summary.inserted - summary.removed;

        // Communication rows only change on membership changes; rebuild
        // the touched nodes' rows as the union of their (new) out and
        // in neighbors.
        let mut comm_rows: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for c in &changes {
            if c.old.is_none() != c.new.is_none() {
                comm_rows.insert(c.src, Vec::new());
                comm_rows.insert(c.dst, Vec::new());
            }
        }
        if !comm_rows.is_empty() {
            for (&v, row) in comm_rows.iter_mut() {
                let mut nbrs: Vec<NodeId> = self
                    .out_edges(v)
                    .iter()
                    .map(|&(u, _)| u)
                    .chain(self.in_edges(v).iter().map(|&(u, _)| u))
                    .collect();
                nbrs.sort_unstable();
                nbrs.dedup();
                *row = nbrs;
            }
            let (comm_off, comm_adj) =
                replace_comm_rows(&self.comm_off, &self.comm_adj, &comm_rows);
            self.comm_off = comm_off;
            self.comm_adj = comm_adj;
        }

        summary.changes = changes;
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, WeightDist};
    use crate::graph::Edge;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// The ground truth: rebuild from the patched logical edge set.
    fn rebuilt(g: &WGraph, updates: &[EdgeUpdate]) -> WGraph {
        let directed = g.is_directed();
        let mut fin: BTreeMap<(NodeId, NodeId), Weight> =
            g.edges().map(|e| ((e.src, e.dst), e.w)).collect();
        for u in updates {
            let (src, dst) = u.endpoints();
            let key = if !directed && src > dst {
                (dst, src)
            } else {
                (src, dst)
            };
            match *u {
                EdgeUpdate::Insert { w, .. } | EdgeUpdate::SetWeight { w, .. } => {
                    fin.insert(key, w);
                }
                EdgeUpdate::Remove { .. } => {
                    fin.remove(&key);
                }
            }
        }
        WGraph::from_edge_list(
            g.n(),
            directed,
            fin.into_iter().map(|((s, d), w)| Edge::new(s, d, w)),
        )
    }

    fn random_updates(g: &WGraph, count: usize, seed: u64) -> Vec<EdgeUpdate> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let edges: Vec<Edge> = g.edges().collect();
        let n = g.n() as NodeId;
        (0..count)
            .map(|_| match rng.gen_range(0..4) {
                0 if !edges.is_empty() => {
                    let e = edges[rng.gen_range(0..edges.len())];
                    EdgeUpdate::SetWeight {
                        src: e.src,
                        dst: e.dst,
                        w: rng.gen_range(0..10),
                    }
                }
                1 if !edges.is_empty() => {
                    let e = edges[rng.gen_range(0..edges.len())];
                    EdgeUpdate::Remove {
                        src: e.dst,
                        dst: e.src, // reversed orientation on purpose
                    }
                }
                _ => {
                    let src = rng.gen_range(0..n);
                    let mut dst = rng.gen_range(0..n);
                    if dst == src {
                        dst = (dst + 1) % n;
                    }
                    EdgeUpdate::Insert {
                        src,
                        dst,
                        w: rng.gen_range(0..10),
                    }
                }
            })
            .collect()
    }

    #[test]
    fn patched_graph_equals_rebuild() {
        for (directed, seed) in [(false, 1u64), (true, 2), (false, 3), (true, 4)] {
            let mut g = gen::gnp(24, 0.15, directed, WeightDist::Uniform { max: 9 }, seed);
            for round in 0..6 {
                let updates = random_updates(&g, 1 + (round * 7) % 20, seed * 100 + round as u64);
                let want = rebuilt(&g, &updates);
                g.apply_updates(&updates).unwrap();
                assert_eq!(g, want, "directed={directed} seed={seed} round={round}");
            }
        }
    }

    #[test]
    fn upsert_remove_and_noop_accounting() {
        let mut g = WGraph::from_edge_list(4, false, [Edge::new(0, 1, 2), Edge::new(1, 2, 3)]);
        let summary = g
            .apply_updates(&[
                EdgeUpdate::SetWeight {
                    src: 1,
                    dst: 0,
                    w: 5,
                }, // reweight via mirror
                EdgeUpdate::Insert {
                    src: 2,
                    dst: 3,
                    w: 1,
                }, // new edge
                EdgeUpdate::Remove { src: 1, dst: 2 }, // delete
                EdgeUpdate::Remove { src: 0, dst: 3 }, // absent: noop
            ])
            .unwrap();
        assert_eq!(
            (
                summary.inserted,
                summary.removed,
                summary.reweighted,
                summary.noops
            ),
            (1, 1, 1, 1)
        );
        assert_eq!(g.m(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(1, 0), Some(5));
        assert_eq!(g.edge_weight(1, 2), None);
        assert_eq!(g.comm_neighbors(2), &[3]);
    }

    #[test]
    fn batch_net_effect_wins_over_intermediate_states() {
        let mut g = WGraph::from_edge_list(3, true, [Edge::new(0, 1, 4)]);
        // Insert then remove within one batch: net noop.
        let s = g
            .apply_updates(&[
                EdgeUpdate::Insert {
                    src: 1,
                    dst: 2,
                    w: 9,
                },
                EdgeUpdate::Remove { src: 1, dst: 2 },
                EdgeUpdate::SetWeight {
                    src: 0,
                    dst: 1,
                    w: 4,
                }, // same weight: noop
            ])
            .unwrap();
        assert_eq!(s.changes, vec![]);
        assert_eq!(s.noops, 2);
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn rejected_batches_leave_the_graph_untouched() {
        let mut g = gen::gnp(8, 0.3, false, WeightDist::Uniform { max: 5 }, 11);
        let before = g.clone();
        assert_eq!(
            g.apply_updates(&[EdgeUpdate::Insert {
                src: 0,
                dst: 8,
                w: 1
            }]),
            Err(PatchError::OutOfRange { src: 0, dst: 8 })
        );
        assert_eq!(
            g.apply_updates(&[EdgeUpdate::Remove { src: 3, dst: 3 }]),
            Err(PatchError::SelfLoop { node: 3 })
        );
        assert_eq!(g, before);
    }

    #[test]
    fn dirty_rule_is_sound_on_a_path() {
        // 0 -2- 1 -2- 2 -2- 3, undirected; dist from source 0.
        let dist = [0u64, 2, 4, 6];
        // Slack edge far from the tree: strictly slack change is clean.
        let slack = NetChange {
            src: 0,
            dst: 3,
            old: None,
            new: Some(100),
        };
        assert!(!row_is_dirty(&dist, &[slack], false));
        // A shortcut that beats the old distance must dirty the row.
        let shortcut = NetChange {
            src: 0,
            dst: 3,
            old: None,
            new: Some(5),
        };
        assert!(row_is_dirty(&dist, &[shortcut], false));
        // Removing a tree edge (tight by definition) must dirty.
        let removal = NetChange {
            src: 1,
            dst: 2,
            old: Some(2),
            new: None,
        };
        assert!(row_is_dirty(&dist, &[removal], false));
        // Equality counts as tight (parent identity could change).
        let tie = NetChange {
            src: 0,
            dst: 2,
            old: None,
            new: Some(4),
        };
        assert!(row_is_dirty(&dist, &[tie], false));
    }

    #[test]
    fn dirty_rule_respects_direction() {
        // Directed path 0 -> 1 -> 2; dist from source 0.
        let dist = [0u64, 1, 2];
        // A new edge *into* the unreachable-from-nothing direction:
        // (2, 0) cheap, but d(2) + w > d(0) = 0 so source 0 is clean.
        let back = NetChange {
            src: 2,
            dst: 0,
            old: None,
            new: Some(1),
        };
        assert!(!row_is_dirty(&dist, &[back], true));
        // Same change on an undirected reading tests both orientations
        // and 0 -(1)- 2 beats d(2) = 2: dirty.
        assert!(row_is_dirty(&dist, &[back], false));
    }
}
