//! Graph construction with invariant enforcement.

use crate::graph::{NodeId, WGraph, Weight};
use std::collections::BTreeMap;

/// Incremental builder for [`WGraph`].
///
/// Deduplicates parallel edges by keeping the minimum weight (shortest-path
/// semantics), rejects self loops, and produces sorted adjacency.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    directed: bool,
    // (src, dst) -> min weight; for undirected graphs keys are normalized
    // with src < dst.
    edges: BTreeMap<(NodeId, NodeId), Weight>,
}

impl GraphBuilder {
    /// A builder for an `n`-node graph.
    pub fn new(n: usize, directed: bool) -> Self {
        assert!(n <= NodeId::MAX as usize, "node count exceeds NodeId range");
        GraphBuilder {
            n,
            directed,
            edges: BTreeMap::new(),
        }
    }

    /// Add edge `src -> dst` with weight `w`. Self loops are ignored (they
    /// never participate in shortest paths with non-negative weights).
    /// Parallel edges keep the minimum weight.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, w: Weight) -> &mut Self {
        assert!((src as usize) < self.n, "src {src} out of range");
        assert!((dst as usize) < self.n, "dst {dst} out of range");
        if src == dst {
            return self;
        }
        let key = if self.directed || src < dst {
            (src, dst)
        } else {
            (dst, src)
        };
        self.edges
            .entry(key)
            .and_modify(|old| *old = (*old).min(w))
            .or_insert(w);
        self
    }

    /// Add every edge in `iter`.
    pub fn extend(
        &mut self,
        iter: impl IntoIterator<Item = (NodeId, NodeId, Weight)>,
    ) -> &mut Self {
        for (s, d, w) in iter {
            self.add_edge(s, d, w);
        }
        self
    }

    /// Number of distinct edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the (normalized) edge already exists.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        let key = if self.directed || src < dst {
            (src, dst)
        } else {
            (dst, src)
        };
        self.edges.contains_key(&key)
    }

    /// Finalize into a [`WGraph`].
    pub fn build(&self) -> WGraph {
        let n = self.n;
        let mut out: Vec<Vec<(NodeId, Weight)>> = vec![Vec::new(); n];
        let mut inc: Vec<Vec<(NodeId, Weight)>> = vec![Vec::new(); n];
        for (&(s, d), &w) in &self.edges {
            out[s as usize].push((d, w));
            inc[d as usize].push((s, w));
            if !self.directed {
                out[d as usize].push((s, w));
                inc[s as usize].push((d, w));
            }
        }
        for row in out.iter_mut().chain(inc.iter_mut()) {
            row.sort_unstable_by_key(|&(v, _)| v);
        }
        let mut comm: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (v, c) in comm.iter_mut().enumerate() {
            let mut set: Vec<NodeId> = out[v]
                .iter()
                .map(|&(u, _)| u)
                .chain(inc[v].iter().map(|&(u, _)| u))
                .collect();
            set.sort_unstable();
            set.dedup();
            *c = set;
        }
        WGraph::from_parts(n, self.directed, out, inc, comm, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_loops_ignored() {
        let mut b = GraphBuilder::new(2, true);
        b.add_edge(0, 0, 5).add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.out_edges(0), &[(1, 1)]);
    }

    #[test]
    fn parallel_edges_keep_min_weight() {
        let mut b = GraphBuilder::new(2, true);
        b.add_edge(0, 1, 5).add_edge(0, 1, 3).add_edge(0, 1, 9);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3));
    }

    #[test]
    fn undirected_normalizes_endpoints() {
        let mut b = GraphBuilder::new(3, false);
        b.add_edge(2, 1, 4).add_edge(1, 2, 2);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.edge_weight(1, 2), Some(2));
        assert_eq!(g.edge_weight(2, 1), Some(2));
    }

    #[test]
    fn has_edge_respects_normalization() {
        let mut b = GraphBuilder::new(3, false);
        b.add_edge(2, 0, 4);
        assert!(b.has_edge(0, 2));
        assert!(b.has_edge(2, 0));
        assert!(!b.has_edge(1, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut b = GraphBuilder::new(2, true);
        b.add_edge(0, 2, 1);
    }

    #[test]
    fn extend_adds_all() {
        let mut b = GraphBuilder::new(4, true);
        b.extend([(0, 1, 1), (1, 2, 2), (2, 3, 0)]);
        assert_eq!(b.edge_count(), 3);
    }
}
