//! Property tests for the graph substrate: builder invariants,
//! serialization round-trips, and generator guarantees.

use dw_graph::gen::{self, WeightDist};
use dw_graph::{analysis, io, GraphBuilder, NodeId};
use proptest::prelude::*;

fn arb_edges(n: usize) -> impl Strategy<Value = Vec<(NodeId, NodeId, u64)>> {
    proptest::collection::vec((0..n as NodeId, 0..n as NodeId, 0u64..50), 0..4 * n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn builder_invariants(n in 2usize..20, edges in arb_edges(20), directed: bool) {
        let mut b = GraphBuilder::new(20, directed);
        let _ = n;
        for (s, d, w) in &edges {
            b.add_edge(*s, *d, *w);
        }
        let g = b.build();
        // adjacency sorted and deduplicated
        for v in g.nodes() {
            let out = g.out_edges(v);
            prop_assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
            let inc = g.in_edges(v);
            prop_assert!(inc.windows(2).all(|w| w[0].0 < w[1].0));
            // no self loops survive
            prop_assert!(out.iter().all(|&(u, _)| u != v));
            // comm neighborhood symmetric
            for &u in g.comm_neighbors(v) {
                prop_assert!(g.comm_neighbors(u).contains(&v), "{u} <-> {v}");
            }
        }
        // every out edge mirrored as an in edge
        for e in g.edges() {
            prop_assert_eq!(g.edge_weight(e.src, e.dst), Some(e.w));
            prop_assert!(g.in_edges(e.dst).iter().any(|&(u, w)| u == e.src && w == e.w));
        }
        // parallel edges keep the minimum weight
        for (s, d, w) in &edges {
            if s != d {
                if let Some(kept) = g.edge_weight(*s, *d) {
                    prop_assert!(kept <= *w || !directed);
                }
            }
        }
    }

    #[test]
    fn json_roundtrip(edges in arb_edges(15), directed: bool) {
        let mut b = GraphBuilder::new(15, directed);
        for (s, d, w) in edges {
            b.add_edge(s, d, w);
        }
        let g = b.build();
        let g2 = io::from_json(&io::to_json(&g)).unwrap();
        prop_assert_eq!(g, g2);
    }

    // The TCP runtime distributes instances as `io` JSON files, so the
    // codec must preserve structure exactly on the paper's awkward
    // cases: zero-weight edges (which must not collapse or renumber)
    // and fully disconnected trailing nodes (which a sloppy codec that
    // infers `n` from the edge list would silently drop).
    #[test]
    fn json_roundtrip_zero_weights_and_disconnected_nodes(
        used in 2usize..12,
        isolated in 1usize..6,
        edges in arb_edges(12),
        directed: bool,
    ) {
        let n = used + isolated;
        let mut b = GraphBuilder::new(n, directed);
        for (s, d, w) in edges {
            if (s as usize) < used && (d as usize) < used {
                b.add_edge(s, d, w % 2); // at least half the edges weigh zero
            }
        }
        let g = b.build();
        let text = io::to_json(&g);
        let g2 = io::from_json(&text).unwrap();
        prop_assert_eq!(&g, &g2);
        // Structural equality spelled out (not just PartialEq): size,
        // orientation, adjacency with weights, and the isolated tail.
        prop_assert_eq!(g.n(), g2.n());
        prop_assert_eq!(g.m(), g2.m());
        prop_assert_eq!(g.is_directed(), g2.is_directed());
        for v in g.nodes() {
            prop_assert_eq!(g.out_edges(v), g2.out_edges(v));
            prop_assert_eq!(g.in_edges(v), g2.in_edges(v));
        }
        prop_assert_eq!(g.zero_weight_edges(), g2.zero_weight_edges());
        for v in used..n {
            prop_assert!(g2.out_edges(v as NodeId).is_empty());
            prop_assert!(g2.in_edges(v as NodeId).is_empty());
        }
        // The serialized form is a fixed point: parse(print(g)) prints
        // the same bytes, so files survive rewrite cycles untouched.
        prop_assert_eq!(text, io::to_json(&g2));
    }

    #[test]
    fn gnp_connected_is_connected(n in 2usize..40, seed: u64) {
        let g = gen::gnp_connected(n, 0.05, false, WeightDist::Constant(1), seed);
        prop_assert!(analysis::comm_connected(&g));
    }

    #[test]
    fn zero_heavy_weight_range(n in 4usize..30, seed: u64, w in 1u64..20) {
        let g = gen::zero_heavy(n, 0.2, 0.5, w, true, seed);
        prop_assert!(g.max_weight() <= w);
        prop_assert!(analysis::comm_connected(&g));
    }

    #[test]
    fn map_weights_preserves_topology(edges in arb_edges(12), directed: bool) {
        let mut b = GraphBuilder::new(12, directed);
        for (s, d, w) in edges {
            b.add_edge(s, d, w);
        }
        let g = b.build();
        let t = g.map_weights(|e| e.w * 2 + 1);
        prop_assert_eq!(g.n(), t.n());
        prop_assert_eq!(g.m(), t.m());
        for e in g.edges() {
            prop_assert_eq!(t.edge_weight(e.src, e.dst), Some(e.w * 2 + 1));
        }
        for v in g.nodes() {
            prop_assert_eq!(g.comm_neighbors(v), t.comm_neighbors(v));
        }
    }

    // CSR round-trip: the packed representation must be observationally
    // identical to the Vec-of-Vec form it replaced — per-node neighbor
    // slices, weights, comm lists, and degree sums — including graphs
    // with zero-weight edges and isolated trailing nodes.
    #[test]
    fn csr_roundtrip_matches_vec_form(
        used in 2usize..12,
        isolated in 0usize..5,
        edges in arb_edges(12),
        directed: bool,
    ) {
        let n = used + isolated;
        let mut b = GraphBuilder::new(n, directed);
        for (s, d, w) in edges {
            if (s as usize) < used && (d as usize) < used {
                b.add_edge(s, d, w % 4); // keep zero weights in play
            }
        }
        let g = b.build();
        let (out, inc, comm) = g.to_vecs();
        // Accessor-level equality against the unpacked rows.
        let mut degree_sum = 0usize;
        for v in g.nodes() {
            prop_assert_eq!(g.out_edges(v), &out[v as usize][..]);
            prop_assert_eq!(g.in_edges(v), &inc[v as usize][..]);
            prop_assert_eq!(g.comm_neighbors(v), &comm[v as usize][..]);
            prop_assert_eq!(g.comm_degree(v), comm[v as usize].len());
            degree_sum += g.comm_degree(v);
        }
        prop_assert_eq!(degree_sum, comm.iter().map(|r| r.len()).sum::<usize>());
        prop_assert_eq!(g.out_entry_count(), out.iter().map(|r| r.len()).sum::<usize>());
        // Rebuilding from the unpacked rows is the identity.
        let back = dw_graph::WGraph::from_vecs(n, directed, &out, &inc, &comm, g.m());
        prop_assert_eq!(&g, &back);
        // The streaming edge-list constructor agrees with the builder
        // path on the same logical edge set.
        let from_list = dw_graph::WGraph::from_edge_list(n, directed, g.edges());
        prop_assert_eq!(&g, &from_list);
    }

    #[test]
    fn zero_subgraph_subset(edges in arb_edges(12)) {
        let mut b = GraphBuilder::new(12, true);
        for (s, d, w) in edges {
            b.add_edge(s, d, w % 3); // plenty of zeros
        }
        let g = b.build();
        let z = g.zero_subgraph();
        prop_assert_eq!(z.n(), g.n());
        for e in z.edges() {
            prop_assert_eq!(e.w, 0);
            prop_assert_eq!(g.edge_weight(e.src, e.dst), Some(0));
        }
        prop_assert_eq!(z.m(), g.zero_weight_edges());
    }
}
