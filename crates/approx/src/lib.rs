//! Section IV: deterministic `(1+ε)`-approximate APSP for non-negative
//! poly(n) integer weights **with zero-weight edges** (Theorem I.5),
//! in `O((n/ε²)·log n)` rounds.
//!
//! The reduction (paper Section IV):
//!
//! 1. compute all-pairs **zero-path reachability** by running the
//!    unweighted pipelined APSP on the zero-weight subgraph (`O(n)`
//!    rounds) — such pairs have distance exactly 0;
//! 2. transform `G` into `G'`: zero weights become 1, every other weight
//!    `w` becomes `n²·w`;
//! 3. run a positive-weight `(1+ε/3)`-approximate APSP on `G'` (the
//!    \[16\]/\[18\] substrate, built in [`positive`] from scale decomposition
//!    + weight rounding + the delayed-BFS pipeline);
//! 4. divide by `n²`: `δ̂(u,v) = ⌊δ'(u,v)/n²⌋` for pairs without a zero
//!    path. The floor keeps answers integral without breaking either side
//!    of the `(1+ε)` sandwich.

pub mod apsp;
pub mod positive;
pub mod zero_closure;

pub use apsp::{approx_apsp, ApproxOutcome};
pub use positive::{approx_positive_apsp, scale_count};
pub use zero_closure::zero_reachability;
