//! `(1+ε)`-approximate APSP for **positive** integer weights — the
//! substrate Theorem IV.1 cites from \[16\], \[18\], rebuilt from first
//! principles.
//!
//! Standard scale decomposition: for each distance scale `D_i = 2^i`
//! round weights to `w_i(e) = ⌈w(e)/ρ_i⌉` with `ρ_i = ε·D_i/(2n)`; the
//! rounded weights are positive integers, so the delayed-BFS pipeline
//! (`dw-baselines`) computes exact rounded distances in `O(n + cap_i)`
//! rounds, where `cap_i = ⌈2n/ε⌉ + n` caps the distances a scale needs to
//! resolve. A pair with true distance `d ∈ (D_{i-1}, D_i]` satisfies
//!
//! ```text
//! d  <=  d̂_i = ρ_i · d_i(u,v)  <=  d + n·ρ_i  =  d + ε·D_i/2  <=  (1+ε)·d,
//! ```
//!
//! and taking the minimum over scales never drops below `d` (rounding only
//! overestimates). `O(log(n·W))` scales at `O(n/ε)` rounds each gives the
//! `O((n/ε)·log(nW))` total the paper's Table II row reports (with
//! `ε' = ε/3` inside Theorem I.5 this is the `O((n/ε²)·log n)` bound for
//! poly(n) weights).

use dw_baselines::delayed_bfs::run_best_list;
use dw_congest::{EngineConfig, RunStats};
use dw_graph::{NodeId, WGraph, Weight, INFINITY};
use dw_seqref::DistMatrix;

/// Number of scales needed to cover distances up to `n·W`.
pub fn scale_count(n: usize, max_weight: Weight) -> u32 {
    let max_dist = (n as u128).saturating_mul(max_weight.max(1) as u128);
    128 - max_dist.leading_zeros()
}

/// Per-scale rounding denominator `ρ_i = ε·2^i/(2n)` represented as an
/// exact rational `num/den` to keep everything integral: with
/// `ε = eps_num/eps_den`, `ρ_i = eps_num·2^i / (eps_den·2n)`.
#[derive(Debug, Clone, Copy)]
struct Rho {
    num: u128,
    den: u128,
}

impl Rho {
    fn new(eps_num: u64, eps_den: u64, i: u32, n: usize) -> Self {
        Rho {
            num: (eps_num as u128) << i,
            den: (eps_den as u128) * 2 * n as u128,
        }
    }

    /// `⌈w/ρ⌉ = ⌈w·den/num⌉`.
    fn round_up(&self, w: Weight) -> u128 {
        let x = w as u128 * self.den;
        x.div_ceil(self.num)
    }

    /// `x·ρ` rounded **down**. Rounding down keeps the `(1+ε)` upper bound
    /// intact (a ceil here can add a whole unit, which breaks the bound at
    /// `d = 1`), while the lower bound survives because
    /// `x ≥ d/ρ  ⇒  ⌊x·ρ⌋ ≥ d` for integer `d`.
    fn scale_back(&self, x: u128) -> u128 {
        (x * self.num) / self.den
    }
}

/// `(1+ε)`-approximate APSP for a graph with positive integer weights.
/// `ε = eps_num/eps_den > 0`. Returns the estimate matrix (entries
/// `d ≤ d̂ ≤ (1+ε)·d`, `INFINITY` for unreachable pairs) and composed run
/// statistics.
pub fn approx_positive_apsp(
    g: &WGraph,
    eps_num: u64,
    eps_den: u64,
    engine: EngineConfig,
) -> (DistMatrix, RunStats) {
    assert!(eps_num > 0 && eps_den > 0, "ε must be positive");
    let n = g.n();
    let sources: Vec<NodeId> = g.nodes().collect();
    let w_max = g.max_weight().max(1);
    debug_assert!(
        g.edges().all(|e| e.w >= 1),
        "positive-weight substrate requires w >= 1"
    );

    let mut best: Vec<Vec<u128>> = vec![vec![u128::MAX; n]; n];
    let mut stats = RunStats::default();
    // distances a scale must resolve in rounded units
    for i in 0..=scale_count(n, w_max) {
        let rho = Rho::new(eps_num, eps_den, i, n);
        let cap: u128 = (2 * n as u128 * eps_den as u128).div_ceil(eps_num as u128) + n as u128;
        // cap weights: anything above `cap` can never be on a relevant path
        let cap_w = (cap + 1).min(u64::MAX as u128) as u64;
        let rounded = g.map_weights(|e| {
            let r = rho.round_up(e.w);
            r.min(cap_w as u128) as Weight
        });
        let (out, st) = run_best_list(
            &rounded,
            &sources,
            false,
            cap.min(u64::MAX as u128) as u64 + n as u64 + 2,
            engine.clone(),
        );
        stats = stats.then(&st);
        debug_assert_eq!(out.stranded, 0, "positive rounded weights never strand");
        #[allow(clippy::needless_range_loop)]
        for s in 0..n {
            for v in 0..n {
                let d_i = out.matrix.at(s, v as NodeId);
                if d_i != INFINITY && (d_i as u128) <= cap {
                    let est = rho.scale_back(d_i as u128);
                    if est < best[s][v] {
                        best[s][v] = est;
                    }
                }
            }
        }
    }

    let dist: Vec<Vec<Weight>> = best
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|x| {
                    if x == u128::MAX {
                        INFINITY
                    } else {
                        x.min(u64::MAX as u128 - 1) as Weight
                    }
                })
                .collect()
        })
        .collect();
    (DistMatrix::new(sources, dist), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_graph::gen::{self, WeightDist};

    fn check_ratio(g: &WGraph, eps_num: u64, eps_den: u64) -> RunStats {
        let (m, stats) = approx_positive_apsp(g, eps_num, eps_den, EngineConfig::default());
        let exact = dw_seqref::apsp_dijkstra(g);
        for s in g.nodes() {
            for v in g.nodes() {
                let d = exact.from_source(s, v).unwrap();
                let e = m.from_source(s, v).unwrap();
                if d == INFINITY {
                    assert_eq!(e, INFINITY, "{s}->{v}");
                } else {
                    assert!(e >= d, "{s}->{v}: underestimate {e} < {d}");
                    // e ≤ (1+ε)d  ⇔  e·den ≤ d·(den+num)
                    assert!(
                        (e as u128) * (eps_den as u128)
                            <= (d as u128) * (eps_den as u128 + eps_num as u128),
                        "{s}->{v}: {e} > (1+{eps_num}/{eps_den})·{d}"
                    );
                }
            }
        }
        stats
    }

    #[test]
    fn ratio_holds_on_random_graphs() {
        for seed in 0..3 {
            let g = gen::gnp_connected(
                14,
                0.15,
                true,
                WeightDist::ZeroOr {
                    p_zero: 0.0,
                    max: 50,
                },
                seed,
            );
            check_ratio(&g, 1, 2); // ε = 0.5
        }
    }

    #[test]
    fn tighter_epsilon_still_correct() {
        let g = gen::gnp_connected(
            12,
            0.2,
            false,
            WeightDist::ZeroOr {
                p_zero: 0.0,
                max: 30,
            },
            7,
        );
        check_ratio(&g, 1, 8); // ε = 0.125
    }

    #[test]
    fn exact_when_distances_small() {
        // path of weight-1 edges: estimates must stay within (1+ε) of i
        let g = gen::path(10, false, WeightDist::Constant(1), 0);
        let (m, _) = approx_positive_apsp(&g, 1, 4, EngineConfig::default());
        for v in 0..10u32 {
            let d = m.from_source(0, v).unwrap();
            assert!(d >= v as u64 && 4 * d <= 5 * v as u64 + 4, "0->{v}: {d}");
        }
    }

    #[test]
    fn rounds_scale_with_log_and_inverse_eps() {
        let g = gen::gnp_connected(
            12,
            0.2,
            true,
            WeightDist::ZeroOr {
                p_zero: 0.0,
                max: 9,
            },
            3,
        );
        let coarse = check_ratio(&g, 1, 2);
        let fine = check_ratio(&g, 1, 8);
        assert!(fine.rounds > coarse.rounds, "smaller ε costs more rounds");
        let scales = scale_count(g.n(), g.max_weight()) as u64 + 1;
        let per_scale = 2 * 12 * 8 + 12 + 2; // cap + n + 2 at ε=1/8
        assert!(fine.rounds <= scales * per_scale);
    }

    #[test]
    fn scale_count_logarithmic() {
        assert!(scale_count(16, 1) <= 5);
        assert!(scale_count(1024, 1 << 20) <= 31);
    }
}
