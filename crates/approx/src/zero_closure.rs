//! Zero-path reachability (step 1 of the Section IV reduction).

use dw_baselines::unweighted_apsp;
use dw_congest::{EngineConfig, RunStats};
use dw_graph::{WGraph, INFINITY};

/// `reach[s][v]` = there is a directed path from `s` to `v` using only
/// zero-weight edges (so `δ(s,v) = 0`). Computed by running the
/// unweighted pipelined APSP of \[12\] on the zero-weight subgraph —
/// `O(n)` rounds.
pub fn zero_reachability(g: &WGraph, engine: EngineConfig) -> (Vec<Vec<bool>>, RunStats) {
    let z = g.zero_subgraph();
    let (out, stats) = unweighted_apsp(&z, engine);
    let n = g.n();
    let reach = (0..n)
        .map(|s| {
            (0..n as u32)
                .map(|v| out.matrix.at(s, v) != INFINITY)
                .collect()
        })
        .collect();
    (reach, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_graph::gen;
    use dw_graph::GraphBuilder;

    #[test]
    fn zero_reach_matches_zero_distance() {
        let g = gen::zero_heavy(18, 0.2, 0.5, 5, true, 31);
        let (reach, stats) = zero_reachability(&g, EngineConfig::default());
        let reference = dw_seqref::apsp_dijkstra(&g);
        for s in g.nodes() {
            for v in g.nodes() {
                if reach[s as usize][v as usize] {
                    assert_eq!(reference.from_source(s, v), Some(0));
                }
                // the converse: distance 0 implies a zero-edge path
                if reference.from_source(s, v) == Some(0) {
                    assert!(reach[s as usize][v as usize], "{s}->{v}");
                }
            }
        }
        assert!(stats.rounds <= 2 * g.n() as u64);
    }

    #[test]
    fn directed_zero_reach_is_asymmetric() {
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 1, 0).add_edge(1, 2, 3);
        let g = b.build();
        let (reach, _) = zero_reachability(&g, EngineConfig::default());
        assert!(reach[0][1]);
        assert!(!reach[1][0]);
        assert!(!reach[0][2]);
    }
}
