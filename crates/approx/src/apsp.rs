//! Theorem I.5 end-to-end: `(1+ε)`-approximate APSP with zero-weight
//! edges allowed.

use crate::positive::approx_positive_apsp;
use crate::zero_closure::zero_reachability;
use dw_congest::{EngineConfig, RunStats};
use dw_graph::{NodeId, WGraph, INFINITY};
use dw_seqref::DistMatrix;

/// Result of the approximate APSP.
#[derive(Debug, Clone)]
pub struct ApproxOutcome {
    /// Estimates `δ ≤ δ̂ ≤ (1+ε)·δ` (`INFINITY` for unreachable pairs).
    pub matrix: DistMatrix,
    /// Rounds of the zero-closure phase.
    pub zero_rounds: u64,
    /// Rounds of the positive-weight substrate.
    pub positive_rounds: u64,
    /// Composed stats.
    pub stats: RunStats,
}

/// `(1+ε)`-approximate APSP for non-negative integer weights (zero
/// allowed), `ε = eps_num/eps_den`. The paper's analysis needs
/// `ε > 3/n`; the inner substrate runs at `ε/3`.
pub fn approx_apsp(g: &WGraph, eps_num: u64, eps_den: u64, engine: EngineConfig) -> ApproxOutcome {
    assert!(eps_num > 0 && eps_den > 0);
    let n = g.n() as u64;
    // Step 1: zero-path reachability.
    let (reach0, zero_stats) = zero_reachability(g, engine.clone());

    // Step 2: the weight transform w' = n²·w (zero → 1).
    let n2 = n * n;
    let gp = g.map_weights(|e| if e.w == 0 { 1 } else { n2 * e.w });

    // Step 3: positive-weight (1+ε/3)-approx APSP on G'.
    let (mp, pos_stats) = approx_positive_apsp(&gp, eps_num, 3 * eps_den, engine);

    // Step 4: local division by n².
    let sources: Vec<NodeId> = g.nodes().collect();
    let dist: Vec<Vec<u64>> = (0..g.n())
        .map(|s| {
            (0..g.n())
                .map(|v| {
                    if reach0[s][v] {
                        0
                    } else {
                        let d = mp.at(s, v as NodeId);
                        if d == INFINITY {
                            INFINITY
                        } else {
                            d / n2
                        }
                    }
                })
                .collect()
        })
        .collect();

    ApproxOutcome {
        matrix: DistMatrix::new(sources, dist),
        zero_rounds: zero_stats.rounds,
        positive_rounds: pos_stats.rounds,
        stats: zero_stats.then(&pos_stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_graph::gen;

    fn check(g: &WGraph, eps_num: u64, eps_den: u64) -> ApproxOutcome {
        let out = approx_apsp(g, eps_num, eps_den, EngineConfig::default());
        let exact = dw_seqref::apsp_dijkstra(g);
        for s in g.nodes() {
            for v in g.nodes() {
                let d = exact.from_source(s, v).unwrap();
                let e = out.matrix.from_source(s, v).unwrap();
                if d == INFINITY {
                    assert_eq!(e, INFINITY, "{s}->{v}");
                } else {
                    assert!(e >= d, "{s}->{v}: underestimate {e} < {d}");
                    assert!(
                        (e as u128) * (eps_den as u128)
                            <= (d as u128) * (eps_den as u128 + eps_num as u128),
                        "{s}->{v}: {e} vs (1+{eps_num}/{eps_den})·{d}"
                    );
                }
            }
        }
        out
    }

    #[test]
    fn zero_heavy_graphs_within_ratio() {
        for seed in 0..3 {
            let g = gen::zero_heavy(12, 0.2, 0.5, 6, true, seed);
            check(&g, 1, 2);
        }
    }

    #[test]
    fn undirected_and_tighter_eps() {
        let g = gen::zero_heavy(10, 0.25, 0.4, 4, false, 17);
        check(&g, 1, 4);
    }

    #[test]
    fn all_zero_graph_is_exact() {
        let g = gen::ring(8, false, dw_graph::gen::WeightDist::Constant(0), 0);
        let out = check(&g, 1, 2);
        for s in g.nodes() {
            for v in g.nodes() {
                assert_eq!(out.matrix.from_source(s, v), Some(0));
            }
        }
    }

    #[test]
    fn zero_paths_beat_weighted_detours() {
        // 0 -(0)-> 1 -(0)-> 2 and 0 -(9)-> 2: answer must be 0, which the
        // transform alone would miss without the zero closure
        let mut b = dw_graph::GraphBuilder::new(3, true);
        b.add_edge(0, 1, 0).add_edge(1, 2, 0).add_edge(0, 2, 9);
        let g = b.build();
        let out = check(&g, 1, 2);
        assert_eq!(out.matrix.from_source(0, 2), Some(0));
    }

    #[test]
    fn round_split_reported() {
        let g = gen::zero_heavy(10, 0.2, 0.5, 4, true, 9);
        let out = check(&g, 1, 2);
        assert!(out.zero_rounds > 0);
        assert!(out.positive_rounds > out.zero_rounds);
        assert_eq!(out.stats.rounds, out.zero_rounds + out.positive_rounds);
    }
}
