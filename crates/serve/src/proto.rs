//! The `dwapsp-serve-v2` wire protocol.
//!
//! Two hops, one framing. Clients speak [`ClientRequest`] /
//! [`ClientReply`] to the gateway; the gateway speaks [`ShardFrame`] /
//! [`ShardReply`] to the shard workers. Each hop's frame is a tagged
//! enum: the query-path payloads ([`QueryRequest`] / [`QueryReply`] /
//! [`QueryBatch`] / [`ReplyBatch`]) are unchanged from v1, and the new
//! variants carry the dynamic-update subsystem's *install* traffic —
//! a versioned [`TableSnapshot`] pushed through the gateway to every
//! shard, acknowledged per shard, swapped atomically (DESIGN.md §14).
//! Both hops move values as length-prefixed frames via
//! [`dw_transport::wire::write_frame`] / [`read_frame`] — the same
//! framing, length cap and malformed-input discipline as the transport
//! runtime's round traffic, so the codec fuzz suite applies unchanged.
//!
//! Request ids are correlation tokens: clients choose them freely (the
//! gateway echoes each back on the matching reply), and the gateway
//! re-tags queries with its own ids on the shard hop so replies from a
//! batched frame route back to the right client connection. Both hops
//! preserve FIFO order per connection, but ids make the matching
//! explicit rather than positional — a reply batch that lost or
//! reordered entries is detected, not silently misattributed.

use crate::table::TableSnapshot;
use dw_congest::WireCodec;
use dw_graph::{NodeId, Weight};

/// One point-to-point lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    /// Correlation id, echoed on the reply.
    pub id: u64,
    /// Source node — selects the table row, and thereby the owning
    /// shard (sources shard by contiguous node-id blocks).
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Ask for the full path, reconstructed from parent pointers, not
    /// just the distance.
    pub want_path: bool,
}

/// The outcome of one query. Transport-level failure is data here, not
/// a connection error: a gateway whose shard died answers
/// [`QueryOutcome::ShardUnavailable`] for that source range and keeps
/// serving everything else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The shortest-path distance.
    Dist { dist: Weight },
    /// Distance plus the node sequence `src, …, dst` achieving it.
    Path { dist: Weight, path: Vec<NodeId> },
    /// No path (or none within the computed hop/distance regime).
    Unreachable,
    /// `src` is not a source row of the computed tables (a k-SSP table
    /// set only covers its k sources).
    UnknownSource,
    /// `src` or `dst` is outside `0..n`.
    OutOfRange,
    /// The shard owning `src`'s block (`lo..hi`) is down. The typed
    /// degraded-mode answer: other shards keep serving.
    ShardUnavailable {
        shard: NodeId,
        lo: NodeId,
        hi: NodeId,
    },
}

/// One answered query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// The request's correlation id.
    pub id: u64,
    pub outcome: QueryOutcome,
}

/// Gateway → shard: every query routed to one shard in one flush tick,
/// coalesced into a single frame (the serving-plane twin of the
/// transport's `RoundBatch`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryBatch {
    /// Batch sequence number on this connection, for diagnostics.
    pub seq: u64,
    pub queries: Vec<QueryRequest>,
}

/// Shard → gateway: the answers to one [`QueryBatch`], in query order,
/// plus the shard-side phase timings the gateway folds into its
/// aggregate serve metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyBatch {
    /// Echo of the request batch's `seq`.
    pub seq: u64,
    pub replies: Vec<QueryReply>,
    /// Nanoseconds this batch spent in table lookups.
    pub lookup_ns: u64,
    /// Nanoseconds this batch spent walking parent pointers.
    pub walk_ns: u64,
}

/// Client → gateway: one frame per request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientRequest {
    /// The common case: a point-to-point lookup.
    Query(QueryRequest),
    /// Install a new table generation across the fleet (the `dwapsp
    /// apply-updates` path). The gateway fans the snapshot out to every
    /// live shard, waits for their acks, flips its own generation and
    /// invalidates the cache, then answers with one [`ApplyReport`].
    ApplyTables {
        generation: u64,
        snap: TableSnapshot,
    },
}

/// Gateway → client: one frame per reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientReply {
    Query(QueryReply),
    ApplyDone(ApplyReport),
}

/// The gateway's answer to an [`ClientRequest::ApplyTables`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyReport {
    /// Whether the install was accepted and fully applied: the
    /// generation was newer than the gateway's, the snapshot's domain
    /// matched, and every *live* shard acknowledged it.
    pub accepted: bool,
    /// The gateway's generation after the call.
    pub generation: u64,
    /// Shards that acknowledged the install.
    pub shards_installed: u32,
    /// Shards that were down (or died during the install); they pick up
    /// the current tables when restarted from the persisted file.
    pub shards_down: u32,
}

/// Gateway → shard: query batches interleaved with installs, FIFO on
/// the shard connection (so a shard's answers are always against the
/// latest installed generation at batch-arrival time — old-or-new per
/// batch, never mixed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardFrame {
    Queries(QueryBatch),
    /// Install this shard's slice of a new table generation.
    Install {
        generation: u64,
        snap: TableSnapshot,
    },
}

/// Shard → gateway: the answer to one [`ShardFrame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardReply {
    Replies(ReplyBatch),
    /// Ack of an install: the shard's generation after applying it
    /// (unchanged if the install was stale and ignored).
    Installed {
        generation: u64,
    },
}

impl WireCodec for QueryRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.src.encode(out);
        self.dst.encode(out);
        self.want_path.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(QueryRequest {
            id: u64::decode(buf)?,
            src: NodeId::decode(buf)?,
            dst: NodeId::decode(buf)?,
            want_path: bool::decode(buf)?,
        })
    }
}

impl WireCodec for QueryOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            QueryOutcome::Dist { dist } => {
                out.push(0);
                dist.encode(out);
            }
            QueryOutcome::Path { dist, path } => {
                out.push(1);
                dist.encode(out);
                path.encode(out);
            }
            QueryOutcome::Unreachable => out.push(2),
            QueryOutcome::UnknownSource => out.push(3),
            QueryOutcome::OutOfRange => out.push(4),
            QueryOutcome::ShardUnavailable { shard, lo, hi } => {
                out.push(5);
                shard.encode(out);
                lo.encode(out);
                hi.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(QueryOutcome::Dist {
                dist: Weight::decode(buf)?,
            }),
            1 => Some(QueryOutcome::Path {
                dist: Weight::decode(buf)?,
                path: Vec::<NodeId>::decode(buf)?,
            }),
            2 => Some(QueryOutcome::Unreachable),
            3 => Some(QueryOutcome::UnknownSource),
            4 => Some(QueryOutcome::OutOfRange),
            5 => Some(QueryOutcome::ShardUnavailable {
                shard: NodeId::decode(buf)?,
                lo: NodeId::decode(buf)?,
                hi: NodeId::decode(buf)?,
            }),
            _ => None,
        }
    }
}

impl WireCodec for QueryReply {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.outcome.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(QueryReply {
            id: u64::decode(buf)?,
            outcome: QueryOutcome::decode(buf)?,
        })
    }
}

impl WireCodec for QueryBatch {
    fn encode(&self, out: &mut Vec<u8>) {
        self.seq.encode(out);
        self.queries.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(QueryBatch {
            seq: u64::decode(buf)?,
            queries: Vec::<QueryRequest>::decode(buf)?,
        })
    }
}

impl WireCodec for ReplyBatch {
    fn encode(&self, out: &mut Vec<u8>) {
        self.seq.encode(out);
        self.replies.encode(out);
        self.lookup_ns.encode(out);
        self.walk_ns.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(ReplyBatch {
            seq: u64::decode(buf)?,
            replies: Vec::<QueryReply>::decode(buf)?,
            lookup_ns: u64::decode(buf)?,
            walk_ns: u64::decode(buf)?,
        })
    }
}

impl WireCodec for ClientRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ClientRequest::Query(q) => {
                out.push(0);
                q.encode(out);
            }
            ClientRequest::ApplyTables { generation, snap } => {
                out.push(1);
                generation.encode(out);
                snap.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(ClientRequest::Query(QueryRequest::decode(buf)?)),
            1 => Some(ClientRequest::ApplyTables {
                generation: u64::decode(buf)?,
                snap: TableSnapshot::decode(buf)?,
            }),
            _ => None,
        }
    }
}

impl WireCodec for ApplyReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.accepted.encode(out);
        self.generation.encode(out);
        self.shards_installed.encode(out);
        self.shards_down.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(ApplyReport {
            accepted: bool::decode(buf)?,
            generation: u64::decode(buf)?,
            shards_installed: u32::decode(buf)?,
            shards_down: u32::decode(buf)?,
        })
    }
}

impl WireCodec for ClientReply {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ClientReply::Query(r) => {
                out.push(0);
                r.encode(out);
            }
            ClientReply::ApplyDone(report) => {
                out.push(1);
                report.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(ClientReply::Query(QueryReply::decode(buf)?)),
            1 => Some(ClientReply::ApplyDone(ApplyReport::decode(buf)?)),
            _ => None,
        }
    }
}

impl WireCodec for ShardFrame {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ShardFrame::Queries(b) => {
                out.push(0);
                b.encode(out);
            }
            ShardFrame::Install { generation, snap } => {
                out.push(1);
                generation.encode(out);
                snap.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(ShardFrame::Queries(QueryBatch::decode(buf)?)),
            1 => Some(ShardFrame::Install {
                generation: u64::decode(buf)?,
                snap: TableSnapshot::decode(buf)?,
            }),
            _ => None,
        }
    }
}

impl WireCodec for ShardReply {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ShardReply::Replies(b) => {
                out.push(0);
                b.encode(out);
            }
            ShardReply::Installed { generation } => {
                out.push(1);
                generation.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(ShardReply::Replies(ReplyBatch::decode(buf)?)),
            1 => Some(ShardReply::Installed {
                generation: u64::decode(buf)?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_congest::codec::roundtrip;

    #[test]
    fn query_types_roundtrip() {
        let q = QueryRequest {
            id: 7,
            src: 3,
            dst: 9,
            want_path: true,
        };
        assert_eq!(roundtrip(&q), Some(q.clone()));
        for outcome in [
            QueryOutcome::Dist { dist: 42 },
            QueryOutcome::Path {
                dist: 11,
                path: vec![3, 5, 9],
            },
            QueryOutcome::Unreachable,
            QueryOutcome::UnknownSource,
            QueryOutcome::OutOfRange,
            QueryOutcome::ShardUnavailable {
                shard: 1,
                lo: 8,
                hi: 16,
            },
        ] {
            let r = QueryReply { id: 9, outcome };
            assert_eq!(roundtrip(&r), Some(r.clone()));
        }
    }

    #[test]
    fn batches_roundtrip() {
        let b = QueryBatch {
            seq: 4,
            queries: vec![
                QueryRequest {
                    id: 1,
                    src: 0,
                    dst: 5,
                    want_path: false,
                },
                QueryRequest {
                    id: 2,
                    src: 1,
                    dst: 0,
                    want_path: true,
                },
            ],
        };
        assert_eq!(roundtrip(&b), Some(b.clone()));
        let r = ReplyBatch {
            seq: 4,
            replies: vec![QueryReply {
                id: 1,
                outcome: QueryOutcome::Dist { dist: 3 },
            }],
            lookup_ns: 120,
            walk_ns: 0,
        };
        assert_eq!(roundtrip(&r), Some(r.clone()));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut bytes = dw_congest::to_bytes(&QueryOutcome::Unreachable);
        bytes[0] = 99;
        assert_eq!(dw_congest::from_bytes::<QueryOutcome>(&bytes), None);
        let mut bytes = dw_congest::to_bytes(&ShardReply::Installed { generation: 1 });
        bytes[0] = 7;
        assert_eq!(dw_congest::from_bytes::<ShardReply>(&bytes), None);
    }

    #[test]
    fn tagged_frames_roundtrip() {
        use crate::table::SourceTable;
        use std::sync::Arc;
        let snap = TableSnapshot {
            n: 3,
            tables: vec![Arc::new(SourceTable {
                source: 1,
                dist: vec![2, 0, 5],
                parent: vec![Some(1), None, Some(1)],
            })],
        };
        for req in [
            ClientRequest::Query(QueryRequest {
                id: 3,
                src: 0,
                dst: 2,
                want_path: true,
            }),
            ClientRequest::ApplyTables {
                generation: 9,
                snap: snap.clone(),
            },
        ] {
            assert_eq!(roundtrip(&req), Some(req.clone()));
        }
        for reply in [
            ClientReply::Query(QueryReply {
                id: 3,
                outcome: QueryOutcome::Dist { dist: 5 },
            }),
            ClientReply::ApplyDone(ApplyReport {
                accepted: true,
                generation: 9,
                shards_installed: 2,
                shards_down: 0,
            }),
        ] {
            assert_eq!(roundtrip(&reply), Some(reply.clone()));
        }
        for frame in [
            ShardFrame::Queries(QueryBatch {
                seq: 1,
                queries: vec![],
            }),
            ShardFrame::Install {
                generation: 9,
                snap,
            },
        ] {
            assert_eq!(roundtrip(&frame), Some(frame.clone()));
        }
        for reply in [
            ShardReply::Replies(ReplyBatch {
                seq: 1,
                replies: vec![],
                lookup_ns: 0,
                walk_ns: 0,
            }),
            ShardReply::Installed { generation: 9 },
        ] {
            assert_eq!(roundtrip(&reply), Some(reply.clone()));
        }
    }
}
