//! A bounded LRU cache of hot `(src, dst)` answers.
//!
//! The gateway consults the cache at intake, before a query is ever
//! routed to a shard, so a hot pair costs one map probe instead of a
//! network round trip — under Zipf-skewed load most traffic collapses
//! onto a few pairs and the hit rate is what buys the QPS headroom
//! (EXPERIMENTS.md E19 measures exactly this curve).
//!
//! Implementation: a hand-rolled intrusive LRU — a slot arena with an
//! embedded doubly-linked recency list and a `HashMap` from key to
//! slot. All operations are O(1); no external crates (the build is
//! offline). One entry can hold the distance alone or the distance plus
//! the reconstructed path: a path-bearing entry answers both query
//! flavors, a distance-only entry answers distance queries and upgrades
//! in place when a path reply comes back.

use dw_graph::{NodeId, Weight, INFINITY};
use std::collections::HashMap;

/// A cached answer for one `(src, dst)` pair. `dist == INFINITY` means
/// "known unreachable" (which answers path queries too — there is no
/// path to reconstruct).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedAnswer {
    pub dist: Weight,
    pub path: Option<Vec<NodeId>>,
}

impl CachedAnswer {
    /// Can this entry answer a query of the given flavor?
    fn answers(&self, want_path: bool) -> bool {
        !want_path || self.path.is_some() || self.dist == INFINITY
    }
}

const NIL: u32 = u32::MAX;

struct Slot {
    key: (NodeId, NodeId),
    value: CachedAnswer,
    /// The snapshot generation the answer was computed against. A table
    /// swap bumps the cache's current generation; entries stamped with
    /// an older one are facts about a graph that no longer exists and
    /// are treated as misses (and reclaimed) on their next probe.
    gen: u64,
    prev: u32,
    next: u32,
}

/// Bounded LRU over `(src, dst)` keys. `capacity == 0` disables
/// caching entirely (every lookup misses, nothing is stored).
///
/// Entries are keyed by snapshot generation: [`PathCache::set_generation`]
/// invalidates every older entry lazily, in O(1), without walking the
/// arena — stale slots die on first touch.
pub struct PathCache {
    capacity: usize,
    map: HashMap<(NodeId, NodeId), u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    generation: u64,
    pub hits: u64,
    pub misses: u64,
}

impl PathCache {
    pub fn new(capacity: usize) -> PathCache {
        PathCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            generation: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The generation new entries are stamped with.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Move the cache to a new snapshot generation. Every entry stamped
    /// with an older generation is invalid from this point on; they are
    /// reclaimed lazily as probes touch them.
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Observed hit rate so far, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[i as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = i;
        } else {
            self.tail = i;
        }
        self.head = i;
    }

    /// Look up an answer able to serve a query of the given flavor.
    /// Counts a hit or miss and refreshes recency on hit. An entry from
    /// a stale generation is a miss — its slot is freed on the spot.
    pub fn get(&mut self, src: NodeId, dst: NodeId, want_path: bool) -> Option<CachedAnswer> {
        match self.map.get(&(src, dst)).copied() {
            Some(i) if self.slots[i as usize].gen != self.generation => {
                self.unlink(i);
                self.map.remove(&(src, dst));
                self.free.push(i);
                self.misses += 1;
                None
            }
            Some(i) if self.slots[i as usize].value.answers(want_path) => {
                self.hits += 1;
                self.unlink(i);
                self.push_front(i);
                Some(self.slots[i as usize].value.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert or upgrade the answer for `(src, dst)`, evicting the
    /// least-recently-used entry when at capacity. An existing
    /// path-bearing entry is never downgraded to distance-only.
    pub fn put(&mut self, src: NodeId, dst: NodeId, value: CachedAnswer) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&(src, dst)) {
            let slot = &mut self.slots[i as usize];
            // A stale-generation slot is overwritten outright (its old
            // answer must never resurface); a current-generation
            // path-bearing entry is never downgraded to distance-only.
            if slot.gen != self.generation || value.path.is_some() || slot.value.path.is_none() {
                slot.value = value;
            }
            slot.gen = self.generation;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        let i = if self.map.len() >= self.capacity {
            // Evict the LRU tail and reuse its slot.
            let victim = self.tail;
            self.unlink(victim);
            let key = self.slots[victim as usize].key;
            self.map.remove(&key);
            self.slots[victim as usize].key = (src, dst);
            self.slots[victim as usize].value = value;
            self.slots[victim as usize].gen = self.generation;
            victim
        } else if let Some(i) = self.free.pop() {
            self.slots[i as usize].key = (src, dst);
            self.slots[i as usize].value = value;
            self.slots[i as usize].gen = self.generation;
            i
        } else {
            let i = self.slots.len() as u32;
            self.slots.push(Slot {
                key: (src, dst),
                value,
                gen: self.generation,
                prev: NIL,
                next: NIL,
            });
            i
        };
        self.map.insert((src, dst), i);
        self.push_front(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(d: Weight) -> CachedAnswer {
        CachedAnswer {
            dist: d,
            path: None,
        }
    }

    #[test]
    fn hits_misses_and_recency() {
        let mut c = PathCache::new(2);
        assert_eq!(c.get(0, 1, false), None);
        c.put(0, 1, dist(5));
        c.put(0, 2, dist(7));
        assert_eq!(c.get(0, 1, false), Some(dist(5)));
        // (0,2) is now LRU; inserting a third pair evicts it.
        c.put(0, 3, dist(9));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0, 2, false), None);
        assert_eq!(c.get(0, 1, false), Some(dist(5)));
        assert_eq!(c.get(0, 3, false), Some(dist(9)));
        assert_eq!(c.hits, 3);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn dist_entry_does_not_answer_path_queries() {
        let mut c = PathCache::new(4);
        c.put(1, 2, dist(4));
        assert_eq!(c.get(1, 2, true), None); // path wanted, none cached
        assert_eq!(c.get(1, 2, false), Some(dist(4)));
        let full = CachedAnswer {
            dist: 4,
            path: Some(vec![1, 2]),
        };
        c.put(1, 2, full.clone());
        assert_eq!(c.get(1, 2, true), Some(full.clone()));
        // A later dist-only put must not erase the path.
        c.put(1, 2, dist(4));
        assert_eq!(c.get(1, 2, true), Some(full));
    }

    #[test]
    fn unreachable_answers_both_flavors() {
        let mut c = PathCache::new(4);
        c.put(3, 9, dist(INFINITY));
        assert_eq!(c.get(3, 9, true), Some(dist(INFINITY)));
        assert_eq!(c.get(3, 9, false), Some(dist(INFINITY)));
    }

    #[test]
    fn generation_bump_invalidates_stale_entries() {
        let mut c = PathCache::new(4);
        c.put(0, 1, dist(5));
        c.put(0, 2, dist(7));
        assert_eq!(c.get(0, 1, false), Some(dist(5)));
        c.set_generation(1);
        // Every pre-swap entry is now a miss, and its slot is freed.
        assert_eq!(c.get(0, 1, false), None);
        assert_eq!(c.get(0, 2, false), None);
        assert_eq!(c.len(), 0);
        // Post-swap answers cache normally under the new generation.
        c.put(0, 1, dist(9));
        assert_eq!(c.get(0, 1, false), Some(dist(9)));
    }

    #[test]
    fn stale_path_entry_is_overwritten_not_upgraded() {
        let mut c = PathCache::new(4);
        c.put(
            1,
            2,
            CachedAnswer {
                dist: 4,
                path: Some(vec![1, 2]),
            },
        );
        c.set_generation(3);
        // A distance-only put after the swap must replace the stale
        // path answer entirely — the old path is from a dead graph.
        c.put(1, 2, dist(6));
        assert_eq!(c.get(1, 2, false), Some(dist(6)));
        assert_eq!(c.get(1, 2, true), None);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PathCache::new(0);
        c.put(0, 1, dist(5));
        assert_eq!(c.len(), 0);
        assert_eq!(c.get(0, 1, false), None);
    }

    #[test]
    fn heavy_churn_keeps_len_bounded() {
        let mut c = PathCache::new(8);
        for i in 0..1000u32 {
            c.put(i % 16, i / 16, dist(i as Weight));
            let _ = c.get(i % 16, 0, false);
        }
        assert!(c.len() <= 8);
    }
}
