//! A synchronous gateway client: one connection, one outstanding
//! request at a time.
//!
//! This is the building block `dwapsp query`, `dwapsp apply-updates`
//! and the closed-loop load generator use. Replies are correlated by id
//! (the gateway may complete replies out of submission order for
//! *pipelined* clients; with one outstanding request the loop below is
//! just a safety check).

use crate::proto::{ApplyReport, ClientReply, ClientRequest, QueryOutcome, QueryRequest};
use crate::table::TableSnapshot;
use dw_transport::tcp::retry_connect;
use dw_transport::wire::{read_frame, write_frame};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

pub struct ServeClient {
    stream: TcpStream,
    scratch: Vec<u8>,
    next_id: u64,
}

impl ServeClient {
    /// Connect to a gateway, retrying until `timeout`.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<ServeClient> {
        let stream = retry_connect(addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient {
            stream,
            scratch: Vec::new(),
            next_id: 1,
        })
    }

    /// One blocking query round trip.
    pub fn query(&mut self, src: u32, dst: u32, want_path: bool) -> io::Result<QueryOutcome> {
        let id = self.next_id;
        self.next_id += 1;
        let req = ClientRequest::Query(QueryRequest {
            id,
            src,
            dst,
            want_path,
        });
        write_frame(&mut self.stream, &req, &mut self.scratch)?;
        loop {
            match read_frame::<_, ClientReply>(&mut self.stream)? {
                Some(ClientReply::Query(reply)) if reply.id == id => return Ok(reply.outcome),
                Some(_) => continue, // a stray reply from a past timeout
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "gateway closed the connection mid-query",
                    ))
                }
            }
        }
    }

    /// Push a new table generation into the deployment: the gateway
    /// fans the install out to every live shard, swaps atomically, and
    /// reports what happened. Blocking — a swap of large tables takes
    /// as long as the slowest shard's install.
    pub fn apply_tables(
        &mut self,
        generation: u64,
        snap: &TableSnapshot,
    ) -> io::Result<ApplyReport> {
        let req = ClientRequest::ApplyTables {
            generation,
            snap: snap.clone(),
        };
        write_frame(&mut self.stream, &req, &mut self.scratch)?;
        loop {
            match read_frame::<_, ClientReply>(&mut self.stream)? {
                Some(ClientReply::ApplyDone(report)) => return Ok(report),
                Some(ClientReply::Query(_)) => continue, // a stray reply
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "gateway closed the connection mid-apply",
                    ))
                }
            }
        }
    }

    /// Distance-only convenience wrapper.
    pub fn dist(&mut self, src: u32, dst: u32) -> io::Result<QueryOutcome> {
        self.query(src, dst, false)
    }

    /// Path convenience wrapper.
    pub fn path(&mut self, src: u32, dst: u32) -> io::Result<QueryOutcome> {
        self.query(src, dst, true)
    }
}
