//! Aggregate serving-plane metrics.
//!
//! The gateway attributes every query's wall time to four phases —
//! **route** (shard resolution + cache probe at intake), **batch**
//! (queue time plus the batched shard round trip), **lookup** (shard-side
//! table reads) and **path_walk** (shard-side parent-pointer walks; the
//! shard reports the latter two in each [`crate::proto::ReplyBatch`]) —
//! and counts the cache and degradation events alongside. The totals
//! export as a [`dw_obs::Recording`] through
//! [`Recording::push_wall_span`], so `dwapsp` renders serve phases with
//! the same span machinery as compute phases.

use dw_obs::Recording;

/// Counters and phase-time totals for one gateway's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries accepted from clients.
    pub queries: u64,
    /// Replies sent back to clients.
    pub replies: u64,
    /// Queries answered from the LRU cache at intake.
    pub cache_hits: u64,
    /// Queries that missed the cache (routed, or failed fast).
    pub cache_misses: u64,
    /// Batched frames shipped to shards.
    pub batches: u64,
    /// Queries carried inside those frames.
    pub batched_queries: u64,
    /// Queries answered `ShardUnavailable`.
    pub shard_unavailable: u64,
    /// Intake wall time: shard resolution + cache probe.
    pub route_ns: u64,
    /// Queue wall time + the batched shard round trip.
    pub batch_ns: u64,
    /// Shard-reported table-lookup time.
    pub lookup_ns: u64,
    /// Shard-reported parent-walk time.
    pub walk_ns: u64,
}

impl ServeStats {
    /// Mean queries coalesced per shard frame.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_queries as f64 / self.batches as f64
        }
    }

    /// Cache hit rate over all intake probes, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Export as a [`Recording`]: one wall span per serve phase plus
    /// the counters, consumable by the existing obs text/JSONL
    /// renderers.
    pub fn to_recording(&self) -> Recording {
        let mut r = Recording::default();
        r.push_wall_span("route", self.route_ns);
        r.push_wall_span("batch", self.batch_ns);
        r.push_wall_span("lookup", self.lookup_ns);
        r.push_wall_span("path_walk", self.walk_ns);
        for (name, v) in [
            ("serve.queries", self.queries),
            ("serve.replies", self.replies),
            ("serve.cache_hits", self.cache_hits),
            ("serve.cache_misses", self.cache_misses),
            ("serve.batches", self.batches),
            ("serve.batched_queries", self.batched_queries),
            ("serve.shard_unavailable", self.shard_unavailable),
        ] {
            if v > 0 {
                *r.counters.entry(name.to_string()).or_insert(0) += v;
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_export_has_phase_spans_and_counters() {
        let s = ServeStats {
            queries: 10,
            replies: 10,
            cache_hits: 4,
            cache_misses: 6,
            batches: 2,
            batched_queries: 6,
            shard_unavailable: 0,
            route_ns: 100,
            batch_ns: 200,
            lookup_ns: 50,
            walk_ns: 25,
        };
        let r = s.to_recording();
        let names: Vec<&str> = r.spans.iter().map(|sp| sp.name).collect();
        assert_eq!(names, vec!["route", "batch", "lookup", "path_walk"]);
        assert_eq!(r.counters["serve.queries"], 10);
        assert!(!r.counters.contains_key("serve.shard_unavailable"));
        assert!((s.cache_hit_rate() - 0.4).abs() < 1e-9);
        assert!((s.mean_batch_size() - 3.0).abs() < 1e-9);
    }
}
