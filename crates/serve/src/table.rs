//! Persisted per-source distance + parent-pointer tables.
//!
//! A serving deployment computes shortest paths **once** — on any of
//! the existing runtimes (simulator, threads, TCP shards) or the
//! sequential reference — and persists the answer as a
//! [`TableSnapshot`]: one [`SourceTable`] per source row, each holding
//! the full `dist[v]` / `parent[v]` columns for that source. Queries
//! then never touch the graph again; a point-to-point distance is one
//! array read and a path is a parent-pointer walk.
//!
//! The encoding is the repo's canonical [`WireCodec`] layout behind a
//! magic/version header, written and read through
//! [`dw_congest::to_bytes`] / [`from_bytes`] — the same machinery that
//! persists checkpoint snapshots, with the same contract: a file is one
//! encoding, trailing bytes are malformed, and byte-identical inputs
//! produce byte-identical files (which is what the golden test pins).

use dw_congest::WireCodec;
use dw_graph::{NodeId, Weight, INFINITY};
use dw_pipeline::HkSspResult;
use dw_seqref::dijkstra::SsspResult;
use dw_transport::shard::ShardMap;
use std::sync::Arc;

/// File magic: `DWT1` ("distance-weighted tables, layout 1").
pub const TABLE_MAGIC: u32 = u32::from_le_bytes(*b"DWT1");
/// File magic of the *versioned* layout produced by the dynamic-update
/// subsystem: `DWD1` ("distance-weighted dynamic, layout 1") — a
/// generation counter followed by the same table payload as `DWT1`.
pub const TABLE_V2_MAGIC: u32 = u32::from_le_bytes(*b"DWD1");
/// Layout version inside the magic; bump on any field change.
pub const TABLE_VERSION: u32 = 1;

/// One source's complete answer: `dist[v]` and `parent[v]` for every
/// node `v` in `0..n`. `parent` is `None` for the source itself and for
/// unreachable nodes, exactly as in [`SsspResult`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceTable {
    pub source: NodeId,
    pub dist: Vec<Weight>,
    pub parent: Vec<Option<NodeId>>,
}

impl SourceTable {
    /// Reconstruct the recorded shortest path `source, …, dst` by
    /// walking parent pointers backwards. `None` when `dst` is
    /// unreachable or out of range, or when the parent chain is
    /// corrupt (a cycle or a dangling pointer) — a walk is bounded by
    /// `n` hops, so corrupt tables fail the query instead of hanging
    /// the server.
    pub fn path_to(&self, dst: NodeId) -> Option<Vec<NodeId>> {
        let n = self.dist.len();
        if (dst as usize) >= n || self.dist[dst as usize] == INFINITY {
            return None;
        }
        let mut rev = vec![dst];
        let mut at = dst;
        while at != self.source {
            at = self.parent[at as usize]?;
            if (at as usize) >= n || rev.len() > n {
                return None; // dangling pointer or cycle
            }
            rev.push(at);
        }
        rev.reverse();
        Some(rev)
    }
}

impl WireCodec for SourceTable {
    fn encode(&self, out: &mut Vec<u8>) {
        self.source.encode(out);
        self.dist.encode(out);
        self.parent.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let source = NodeId::decode(buf)?;
        let dist = Vec::<Weight>::decode(buf)?;
        let parent = Vec::<Option<NodeId>>::decode(buf)?;
        if dist.len() != parent.len() {
            return None;
        }
        Some(SourceTable {
            source,
            dist,
            parent,
        })
    }
}

/// The persisted table set: every computed source row over a graph of
/// `n` nodes. For k-SSP runs `tables.len() == k`; for full APSP it is
/// `n`. Rows are kept sorted by source id so lookup is a binary search
/// and the encoding is canonical regardless of compute order.
///
/// Rows are held behind `Arc` so the dynamic-update path can carry
/// clean rows from one snapshot generation to the next *by reference*
/// (and [`TableSnapshot::for_shard`] is a handful of pointer bumps, not
/// a deep copy). The wire encoding is unchanged — an `Arc<SourceTable>`
/// encodes exactly as its payload — so `DWT1` files are byte-stable
/// across this refactor (the golden test pins that).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSnapshot {
    /// Node-id domain `0..n` the tables cover.
    pub n: u32,
    pub tables: Vec<Arc<SourceTable>>,
}

impl TableSnapshot {
    fn normalize(mut tables: Vec<Arc<SourceTable>>, n: u32) -> TableSnapshot {
        tables.sort_by_key(|t| t.source);
        TableSnapshot { n, tables }
    }

    /// Build from a pipeline k-SSP result (the serving path: compute on
    /// any runtime, persist, serve).
    pub fn from_result(r: &HkSspResult) -> TableSnapshot {
        let tables = r
            .sources
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                Arc::new(SourceTable {
                    source: s,
                    dist: r.dist[i].clone(),
                    parent: r.parent[i].clone(),
                })
            })
            .collect();
        TableSnapshot::normalize(tables, r.n() as u32)
    }

    /// Build from sequential-reference runs (the oracle path used by
    /// benches and smoke tests).
    pub fn from_sssp(runs: &[SsspResult], n: u32) -> TableSnapshot {
        let tables = runs
            .iter()
            .map(|r| {
                Arc::new(SourceTable {
                    source: r.source,
                    dist: r.dist.clone(),
                    parent: r.parent.clone(),
                })
            })
            .collect();
        TableSnapshot::normalize(tables, n)
    }

    /// The table row for `source`, if it was computed.
    pub fn table_for(&self, source: NodeId) -> Option<&SourceTable> {
        self.tables
            .binary_search_by_key(&source, |t| t.source)
            .ok()
            .map(|i| self.tables[i].as_ref())
    }

    /// The sub-snapshot shard `shard` of `map` serves: the rows whose
    /// source falls in the shard's contiguous node-id block. Sources
    /// shard by the same [`ShardMap`] the transport runtime uses, so a
    /// serving fleet and a compute fleet can share a layout.
    pub fn for_shard(&self, map: &ShardMap, shard: NodeId) -> TableSnapshot {
        let block = map.nodes(shard);
        TableSnapshot {
            n: self.n,
            tables: self
                .tables
                .iter()
                .filter(|t| block.contains(&t.source))
                .cloned()
                .collect(),
        }
    }

    /// Serialize with the magic/version header.
    pub fn to_file_bytes(&self) -> Vec<u8> {
        dw_congest::to_bytes(&(TABLE_MAGIC, TABLE_VERSION, self.clone()))
    }

    /// Parse a persisted snapshot, rejecting wrong magic or version,
    /// trailing bytes, and rows whose columns don't span `0..n`.
    pub fn from_file_bytes(bytes: &[u8]) -> Option<TableSnapshot> {
        let (magic, version, snap): (u32, u32, TableSnapshot) = dw_congest::from_bytes(bytes)?;
        if magic != TABLE_MAGIC || version != TABLE_VERSION {
            return None;
        }
        Some(snap)
    }

    /// Total heap footprint of the table payload, for capacity logs.
    pub fn payload_bytes(&self) -> usize {
        self.tables
            .iter()
            .map(|t| {
                t.dist.len() * std::mem::size_of::<Weight>()
                    + t.parent.len() * std::mem::size_of::<Option<NodeId>>()
            })
            .sum()
    }
}

impl WireCodec for TableSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.n.encode(out);
        self.tables.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let n = u32::decode(buf)?;
        let tables = Vec::<Arc<SourceTable>>::decode(buf)?;
        // Validate invariants so a decoded snapshot is usable as-is:
        // every row spans 0..n, source in range, rows sorted + unique.
        let mut prev: Option<NodeId> = None;
        for t in &tables {
            if t.dist.len() != n as usize || t.source >= n {
                return None;
            }
            if prev.is_some_and(|p| p >= t.source) {
                return None;
            }
            prev = Some(t.source);
        }
        Some(TableSnapshot { n, tables })
    }
}

/// A table set stamped with its swap *generation* — the unit the
/// dynamic-update subsystem produces and the serving plane installs
/// atomically (DESIGN.md §14). Generation 0 is the initial compute; the
/// gateway only accepts installs with a strictly larger generation, so
/// duplicated or reordered installs are idempotent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedTables {
    pub generation: u64,
    pub snap: TableSnapshot,
}

impl VersionedTables {
    /// Serialize with the `DWD1` magic/version header.
    pub fn to_file_bytes(&self) -> Vec<u8> {
        dw_congest::to_bytes(&(
            TABLE_V2_MAGIC,
            TABLE_VERSION,
            self.generation,
            self.snap.clone(),
        ))
    }

    /// Parse a persisted `DWD1` file, with the same rejection rules as
    /// [`TableSnapshot::from_file_bytes`].
    pub fn from_file_bytes(bytes: &[u8]) -> Option<VersionedTables> {
        let (magic, version, generation, snap): (u32, u32, u64, TableSnapshot) =
            dw_congest::from_bytes(bytes)?;
        if magic != TABLE_V2_MAGIC || version != TABLE_VERSION {
            return None;
        }
        Some(VersionedTables { generation, snap })
    }

    /// Parse either table format: a `DWD1` file keeps its generation, a
    /// legacy `DWT1` file loads as generation 0. This is what `dwapsp`
    /// uses everywhere a tables file is read.
    pub fn from_any_file_bytes(bytes: &[u8]) -> Option<VersionedTables> {
        if let Some(vt) = VersionedTables::from_file_bytes(bytes) {
            return Some(vt);
        }
        TableSnapshot::from_file_bytes(bytes).map(|snap| VersionedTables {
            generation: 0,
            snap,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_graph::gen::{self, WeightDist};
    use dw_seqref::dijkstra;

    fn sample() -> TableSnapshot {
        let g = gen::gnp(12, 0.3, false, WeightDist::Uniform { max: 9 }, 5);
        let runs: Vec<SsspResult> = (0..4).map(|s| dijkstra(&g, s)).collect();
        TableSnapshot::from_sssp(&runs, 12)
    }

    #[test]
    fn file_bytes_roundtrip() {
        let snap = sample();
        let bytes = snap.to_file_bytes();
        assert_eq!(TableSnapshot::from_file_bytes(&bytes), Some(snap));
    }

    #[test]
    fn wrong_magic_version_or_trailing_bytes_rejected() {
        let snap = sample();
        let mut bytes = snap.to_file_bytes();
        bytes[0] ^= 0xff;
        assert_eq!(TableSnapshot::from_file_bytes(&bytes), None);
        let mut bytes = snap.to_file_bytes();
        bytes[4] = 9; // version
        assert_eq!(TableSnapshot::from_file_bytes(&bytes), None);
        let mut bytes = snap.to_file_bytes();
        bytes.push(0);
        assert_eq!(TableSnapshot::from_file_bytes(&bytes), None);
    }

    #[test]
    fn path_walk_matches_distances() {
        let g = gen::gnp(20, 0.25, false, WeightDist::Uniform { max: 7 }, 3);
        let runs: Vec<SsspResult> = (0..20).map(|s| dijkstra(&g, s)).collect();
        let snap = TableSnapshot::from_sssp(&runs, 20);
        for t in &snap.tables {
            for v in 0..20u32 {
                match t.path_to(v) {
                    None => assert_eq!(t.dist[v as usize], INFINITY),
                    Some(p) => {
                        assert_eq!(p.first(), Some(&t.source));
                        assert_eq!(p.last(), Some(&v));
                        let mut w = 0;
                        for pair in p.windows(2) {
                            let ew = g
                                .out_edges(pair[0])
                                .iter()
                                .find(|&&(u, _)| u == pair[1])
                                .map(|&(_, w)| w)
                                .expect("path uses real edges");
                            w += ew;
                        }
                        assert_eq!(w, t.dist[v as usize]);
                    }
                }
            }
        }
    }

    #[test]
    fn versioned_file_roundtrip_and_fallback() {
        let vt = VersionedTables {
            generation: 7,
            snap: sample(),
        };
        let bytes = vt.to_file_bytes();
        assert_eq!(VersionedTables::from_file_bytes(&bytes), Some(vt.clone()));
        assert_eq!(
            VersionedTables::from_any_file_bytes(&bytes),
            Some(vt.clone())
        );
        // Wrong magic, version, or trailing bytes all reject.
        let mut bad = vt.to_file_bytes();
        bad[0] ^= 0xff;
        assert_eq!(VersionedTables::from_file_bytes(&bad), None);
        let mut bad = vt.to_file_bytes();
        bad.push(0);
        assert_eq!(VersionedTables::from_file_bytes(&bad), None);
        // A legacy DWT1 file loads as generation 0.
        let legacy = vt.snap.to_file_bytes();
        assert_eq!(
            VersionedTables::from_any_file_bytes(&legacy),
            Some(VersionedTables {
                generation: 0,
                snap: vt.snap
            })
        );
    }

    #[test]
    fn arc_rows_keep_dwt1_bytes_stable() {
        // Carrying a row by reference into a second snapshot must not
        // change either snapshot's encoding.
        let snap = sample();
        let carried = TableSnapshot {
            n: snap.n,
            tables: snap.tables.clone(), // Arc clones, no deep copy
        };
        assert_eq!(snap.to_file_bytes(), carried.to_file_bytes());
        assert!(Arc::ptr_eq(&snap.tables[0], &carried.tables[0]));
    }

    #[test]
    fn corrupt_parent_chain_fails_closed() {
        let mut t = SourceTable {
            source: 0,
            dist: vec![0, 1, 2],
            parent: vec![None, Some(2), Some(1)], // 1 <-> 2 cycle
        };
        assert_eq!(t.path_to(2), None);
        t.parent = vec![None, None, Some(1)]; // dangling chain at 1
        assert_eq!(t.path_to(2), None);
    }

    #[test]
    fn shard_filter_partitions_rows() {
        let snap = sample();
        let map = ShardMap::new(12, 3);
        let mut total = 0;
        for s in 0..3 {
            let sub = snap.for_shard(&map, s);
            assert_eq!(sub.n, snap.n);
            for t in &sub.tables {
                assert_eq!(map.shard_of(t.source), s);
            }
            total += sub.tables.len();
        }
        assert_eq!(total, snap.tables.len());
    }
}
