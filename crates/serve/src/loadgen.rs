//! Closed-loop multi-client load generator.
//!
//! `clients` threads each run a synchronous request loop against the
//! gateway: draw a query from the configured mix, send it, block for
//! the reply, record the latency, repeat. Closed-loop means offered
//! load adapts to service rate — the report's QPS *is* the sustained
//! throughput at `clients`-way concurrency, and the latency percentiles
//! are end-to-end client-observed times (queueing, batching, cache,
//! shard round trip).
//!
//! Two mixes:
//!
//! * **uniform** — source uniform over the computed source rows,
//!   destination uniform over `0..n`: every pair equally likely, the
//!   cache-hostile baseline;
//! * **Zipf(s)** — pairs drawn by popularity rank from a fixed
//!   pseudo-random pair population, rank probabilities `∝ 1/rank^s`:
//!   the skewed mix real query traffic resembles, where the LRU earns
//!   its keep. The population is derived deterministically from the
//!   seed, so hit rates are reproducible.

use crate::client::ServeClient;
use crate::proto::QueryOutcome;
use crate::zipf::Zipf;
use dw_graph::NodeId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Queries issued per client.
    pub requests_per_client: usize,
    /// Fraction of queries asking for the full path (rest are
    /// distance-only), in `[0, 1]`.
    pub path_fraction: f64,
    /// `Some(s)`: Zipf-skewed pair popularity with exponent `s`;
    /// `None`: uniform.
    pub zipf: Option<f64>,
    /// Distinct pairs in the Zipf population.
    pub zipf_pairs: usize,
    /// Base RNG seed; client `i` uses `seed + i`.
    pub seed: u64,
    /// Gateway connect timeout.
    pub connect_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 4,
            requests_per_client: 1000,
            path_fraction: 0.5,
            zipf: None,
            zipf_pairs: 10_000,
            seed: 1,
            connect_timeout: Duration::from_secs(5),
        }
    }
}

/// What one loadgen run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    pub queries: u64,
    /// Replies that were usable answers (including typed errors).
    pub ok: u64,
    /// `ShardUnavailable` replies (degraded mode, still typed).
    pub shard_unavailable: u64,
    /// Transport errors observed by clients (should be zero).
    pub errors: u64,
    pub wall: Duration,
    pub qps: f64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The query mix: a sampled `(src, dst, want_path)` triple.
struct Mix {
    sources: Vec<NodeId>,
    n: NodeId,
    path_fraction: f64,
    /// Zipf sampler plus the seed that scrambles ranks into pairs.
    zipf: Option<(Zipf, u64)>,
}

impl Mix {
    fn draw(&self, rng: &mut ChaCha8Rng) -> (NodeId, NodeId, bool) {
        let want_path = rng.gen_bool(self.path_fraction);
        match &self.zipf {
            None => {
                let src = self.sources[rng.gen_range(0..self.sources.len())];
                let dst = rng.gen_range(0..self.n);
                (src, dst, want_path)
            }
            Some((z, scramble)) => {
                // Map a popularity rank to a fixed pseudo-random pair:
                // SplitMix over (scramble, rank) picks src row and dst.
                let rank = z.sample(rng) as u64;
                let mut h = scramble ^ rank.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                h ^= h >> 31;
                let src = self.sources[(h % self.sources.len() as u64) as usize];
                let dst = ((h >> 32) % self.n as u64) as NodeId;
                (src, dst, want_path)
            }
        }
    }
}

/// Run the closed loop against `gateway`. `sources` are the computed
/// source rows (query sources are drawn from them so queries hit real
/// tables); `n` is the node-id domain.
pub fn run_loadgen(
    gateway: SocketAddr,
    sources: &[NodeId],
    n: NodeId,
    cfg: &LoadgenConfig,
) -> std::io::Result<LoadgenReport> {
    assert!(!sources.is_empty(), "loadgen needs at least one source row");
    let mix = std::sync::Arc::new(Mix {
        sources: sources.to_vec(),
        n,
        path_fraction: cfg.path_fraction.clamp(0.0, 1.0),
        zipf: cfg
            .zipf
            .map(|s| (Zipf::new(cfg.zipf_pairs.max(1), s), cfg.seed ^ 0x5A1F_F00D)),
    });

    let started = Instant::now();
    let mut workers = Vec::new();
    for c in 0..cfg.clients {
        let mix = std::sync::Arc::clone(&mix);
        let seed = cfg.seed.wrapping_add(c as u64);
        let requests = cfg.requests_per_client;
        let timeout = cfg.connect_timeout;
        workers.push(std::thread::spawn(move || -> std::io::Result<Worker> {
            let mut client = ServeClient::connect(gateway, timeout)?;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut w = Worker::default();
            for _ in 0..requests {
                let (src, dst, want_path) = mix.draw(&mut rng);
                let t0 = Instant::now();
                match client.query(src, dst, want_path) {
                    Ok(QueryOutcome::ShardUnavailable { .. }) => {
                        w.shard_unavailable += 1;
                        w.ok += 1;
                    }
                    Ok(_) => w.ok += 1,
                    Err(_) => {
                        w.errors += 1;
                        continue;
                    }
                }
                w.latencies_us.push((t0.elapsed().as_nanos() / 1000) as u64);
            }
            Ok(w)
        }));
    }

    let mut total = Worker::default();
    for t in workers {
        match t.join().expect("loadgen worker panicked") {
            Ok(w) => total.merge(w),
            Err(e) => return Err(e),
        }
    }
    let wall = started.elapsed();
    total.latencies_us.sort_unstable();
    let queries = total.ok + total.errors;
    Ok(LoadgenReport {
        queries,
        ok: total.ok,
        shard_unavailable: total.shard_unavailable,
        errors: total.errors,
        wall,
        qps: if wall.as_secs_f64() > 0.0 {
            queries as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        p50_us: percentile(&total.latencies_us, 0.50),
        p95_us: percentile(&total.latencies_us, 0.95),
        p99_us: percentile(&total.latencies_us, 0.99),
    })
}

#[derive(Default)]
struct Worker {
    ok: u64,
    shard_unavailable: u64,
    errors: u64,
    latencies_us: Vec<u64>,
}

impl Worker {
    fn merge(&mut self, other: Worker) {
        self.ok += other.ok;
        self.shard_unavailable += other.shard_unavailable;
        self.errors += other.errors;
        self.latencies_us.extend(other.latencies_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_data() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.95), 95);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }
}
