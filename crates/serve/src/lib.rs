//! **dw-serve** — the query serving plane over precomputed shortest
//! paths (ROADMAP item 1).
//!
//! The paper's pipelined k-SSP/APSP algorithms compute per-source
//! distance tables; everything else in this workspace is about
//! computing them faster. This crate is about what a deployment does
//! *afterwards*: persist the tables once and answer point-to-point
//! distance/path queries at high QPS, long after the compute fleet is
//! gone.
//!
//! Architecture (DESIGN.md §13):
//!
//! ```text
//!  clients ──> gateway ──> shard 0  (sources [0, n/P))
//!              │  LRU  ──> shard 1  (sources [n/P, 2n/P))
//!              │ batch  ──> …
//!              └────────> shard P-1
//! ```
//!
//! * [`table`] — per-source distance + parent tables, persisted via the
//!   canonical [`dw_congest::WireCodec`] snapshot machinery;
//! * [`proto`] — the query wire protocol, framed exactly like the
//!   transport runtime's round traffic;
//! * [`server`] — shard workers answering batched lookups for their
//!   contiguous source block ([`dw_transport::shard::ShardMap`] reuse);
//! * [`gateway`] — stateless routing front end: per-shard batching
//!   (mempool-style coalescing), a bounded LRU of hot pairs, typed
//!   `ShardUnavailable` degradation on worker loss;
//! * [`client`] / [`loadgen`] — the synchronous client and the
//!   closed-loop Zipf/uniform load generator behind `dwapsp loadgen`
//!   and BENCH_7;
//! * [`metrics`] — route/batch/lookup/path-walk phase accounting,
//!   exported as [`dw_obs::Recording`] wall spans.

pub mod cache;
pub mod client;
pub mod gateway;
pub mod loadgen;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod table;
pub mod zipf;

pub use cache::{CachedAnswer, PathCache};
pub use client::ServeClient;
pub use gateway::{Gateway, GatewayConfig};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
pub use metrics::ServeStats;
pub use proto::{
    ApplyReport, ClientReply, ClientRequest, QueryBatch, QueryOutcome, QueryReply, QueryRequest,
    ReplyBatch, ShardFrame, ShardReply,
};
pub use server::{answer, answer_batch, serve_shard, shared_tables, ShardHandle, SharedTables};
pub use table::{
    SourceTable, TableSnapshot, VersionedTables, TABLE_MAGIC, TABLE_V2_MAGIC, TABLE_VERSION,
};
pub use zipf::Zipf;

use dw_graph::NodeId;
use dw_transport::shard::ShardMap;
use std::io;

/// Spawn a full loopback deployment — `shards` shard servers plus a
/// gateway — serving `snap` as generation 0. Returns the gateway (whose
/// `addr` clients connect to) and the shard handles (kill one to
/// exercise degraded mode). This is the in-process path used by `dwapsp
/// serve`, the smoke tests and the serve bench.
pub fn spawn_loopback(
    snap: &TableSnapshot,
    shards: usize,
    cfg: GatewayConfig,
) -> io::Result<(Gateway, Vec<ShardHandle>, ShardMap)> {
    spawn_loopback_versioned(
        &VersionedTables {
            generation: 0,
            snap: snap.clone(),
        },
        shards,
        cfg,
    )
}

/// As [`spawn_loopback`], but the tables carry a starting generation (a
/// `DWD1` file's): shards boot at it and the gateway only accepts
/// installs that beat it.
pub fn spawn_loopback_versioned(
    tables: &VersionedTables,
    shards: usize,
    mut cfg: GatewayConfig,
) -> io::Result<(Gateway, Vec<ShardHandle>, ShardMap)> {
    let map = ShardMap::new(tables.snap.n as usize, shards);
    let mut handles = Vec::with_capacity(map.shards());
    let mut addrs = Vec::with_capacity(map.shards());
    for s in 0..map.shards() {
        let h = ShardHandle::spawn_versioned(VersionedTables {
            generation: tables.generation,
            snap: tables.snap.for_shard(&map, s as NodeId),
        })?;
        addrs.push(h.addr);
        handles.push(h);
    }
    cfg.initial_generation = tables.generation;
    let gateway = Gateway::spawn(map.clone(), &addrs, cfg)?;
    Ok((gateway, handles, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_graph::gen::{self, WeightDist};
    use dw_graph::INFINITY;
    use dw_seqref::dijkstra;
    use std::time::Duration;

    fn snapshot(n: u32, k: u32, seed: u64) -> (dw_graph::WGraph, TableSnapshot) {
        let g = gen::gnp(n as usize, 0.2, false, WeightDist::Uniform { max: 9 }, seed);
        let runs: Vec<_> = (0..k).map(|s| dijkstra(&g, s)).collect();
        let snap = TableSnapshot::from_sssp(&runs, n);
        (g, snap)
    }

    #[test]
    fn end_to_end_queries_match_the_oracle() {
        let (g, snap) = snapshot(30, 30, 42);
        let (mut gw, mut shards, _) = spawn_loopback(&snap, 3, GatewayConfig::default()).unwrap();
        let mut client = ServeClient::connect(gw.addr, Duration::from_secs(5)).unwrap();
        for src in 0..30u32 {
            let oracle = dijkstra(&g, src);
            for dst in 0..30u32 {
                let want = oracle.dist[dst as usize];
                match client.query(src, dst, (src + dst) % 2 == 0).unwrap() {
                    QueryOutcome::Dist { dist } => assert_eq!(dist, want, "{src}->{dst}"),
                    QueryOutcome::Path { dist, path } => {
                        assert_eq!(dist, want, "{src}->{dst}");
                        assert_eq!(path.first(), Some(&src));
                        assert_eq!(path.last(), Some(&dst));
                        let walked: u64 = path
                            .windows(2)
                            .map(|p| {
                                g.out_edges(p[0])
                                    .iter()
                                    .find(|&&(u, _)| u == p[1])
                                    .map(|&(_, w)| w)
                                    .expect("path edge exists")
                            })
                            .sum();
                        assert_eq!(walked, want, "{src}->{dst}");
                    }
                    QueryOutcome::Unreachable => assert_eq!(want, INFINITY, "{src}->{dst}"),
                    other => panic!("unexpected outcome {other:?} for {src}->{dst}"),
                }
            }
        }
        let stats = gw.stats();
        assert_eq!(stats.queries, 900);
        assert_eq!(stats.cache_hits + stats.cache_misses, 900);
        gw.shutdown();
        for s in &mut shards {
            s.stop();
        }
    }

    #[test]
    fn killed_shard_degrades_to_typed_unavailable() {
        let (_, snap) = snapshot(20, 20, 7);
        let (mut gw, mut shards, map) = spawn_loopback(&snap, 2, GatewayConfig::default()).unwrap();
        let mut client = ServeClient::connect(gw.addr, Duration::from_secs(5)).unwrap();

        // Warm: both shards answer.
        assert!(matches!(
            client.query(0, 5, false).unwrap(),
            QueryOutcome::Dist { .. } | QueryOutcome::Unreachable
        ));
        let hi_src = map.nodes(1).start;
        assert!(matches!(
            client.query(hi_src, 3, false).unwrap(),
            QueryOutcome::Dist { .. } | QueryOutcome::Unreachable
        ));

        // Kill shard 1; its block must fail typed, shard 0 keeps going.
        shards[1].stop();
        let mut saw_unavailable = false;
        for _ in 0..50 {
            match client.query(hi_src, 4, false).unwrap() {
                QueryOutcome::ShardUnavailable { shard, lo, hi } => {
                    assert_eq!(shard, 1);
                    assert_eq!(lo..hi, map.nodes(1));
                    saw_unavailable = true;
                    break;
                }
                // Cached answers and in-flight batches may still
                // succeed right after the kill; retry on a fresh pair.
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        assert!(saw_unavailable, "shard loss never surfaced as typed error");
        assert!(matches!(
            client.query(1, 6, false).unwrap(),
            QueryOutcome::Dist { .. } | QueryOutcome::Unreachable
        ));
        gw.shutdown();
        for s in &mut shards {
            s.stop();
        }
    }

    #[test]
    fn apply_tables_swaps_generations_end_to_end() {
        // Two graphs over the same nodes; the swap must atomically move
        // every answer (and the cache) from the first to the second.
        let (g0, snap0) = snapshot(24, 24, 11);
        let g1 = {
            let mut g = g0.clone();
            // Make a visible change: every existing edge gets heavier.
            let updates: Vec<dw_graph::EdgeUpdate> = g0
                .edges()
                .map(|e| dw_graph::EdgeUpdate::SetWeight {
                    src: e.src,
                    dst: e.dst,
                    w: e.w + 3,
                })
                .collect();
            g.apply_updates(&updates).unwrap();
            g
        };
        let runs: Vec<_> = (0..24).map(|s| dijkstra(&g1, s)).collect();
        let snap1 = TableSnapshot::from_sssp(&runs, 24);

        let (mut gw, mut shards, _) = spawn_loopback(&snap0, 2, GatewayConfig::default()).unwrap();
        let mut client = ServeClient::connect(gw.addr, Duration::from_secs(5)).unwrap();

        // Warm the cache on the old generation.
        let pre = client.query(0, 7, false).unwrap();
        assert_eq!(client.query(0, 7, false).unwrap(), pre);
        assert_eq!(gw.generation(), 0);

        // A non-advancing generation is rejected without touching shards.
        let report = client.apply_tables(0, &snap1).unwrap();
        assert!(!report.accepted);
        assert_eq!(report.generation, 0);

        let report = client.apply_tables(1, &snap1).unwrap();
        assert!(report.accepted, "swap failed: {report:?}");
        assert_eq!(report.generation, 1);
        assert_eq!(report.shards_installed, 2);
        assert_eq!(report.shards_down, 0);
        assert_eq!(gw.generation(), 1);

        // Every post-swap answer — including the previously cached pair
        // — must match the new oracle.
        for src in 0..24u32 {
            let oracle = dijkstra(&g1, src);
            for dst in 0..24u32 {
                let want = oracle.dist[dst as usize];
                match client.query(src, dst, false).unwrap() {
                    QueryOutcome::Dist { dist } => assert_eq!(dist, want, "{src}->{dst}"),
                    QueryOutcome::Unreachable => assert_eq!(want, INFINITY, "{src}->{dst}"),
                    other => panic!("unexpected outcome {other:?} for {src}->{dst}"),
                }
            }
        }
        gw.shutdown();
        for s in &mut shards {
            s.stop();
        }
    }

    #[test]
    fn versioned_boot_rejects_stale_installs() {
        let (_, snap) = snapshot(16, 16, 5);
        let tables = VersionedTables {
            generation: 4,
            snap: snap.clone(),
        };
        let (mut gw, mut shards, _) =
            spawn_loopback_versioned(&tables, 2, GatewayConfig::default()).unwrap();
        let mut client = ServeClient::connect(gw.addr, Duration::from_secs(5)).unwrap();
        assert_eq!(gw.generation(), 4);
        // Installing at or below the boot generation is refused.
        let report = client.apply_tables(4, &snap).unwrap();
        assert!(!report.accepted);
        assert_eq!(report.generation, 4);
        // Advancing works.
        let report = client.apply_tables(5, &snap).unwrap();
        assert!(report.accepted);
        assert_eq!(report.generation, 5);
        gw.shutdown();
        for s in &mut shards {
            s.stop();
        }
    }

    #[test]
    fn apply_with_a_dead_shard_installs_the_rest() {
        let (_, snap) = snapshot(20, 20, 13);
        let (mut gw, mut shards, map) = spawn_loopback(&snap, 2, GatewayConfig::default()).unwrap();
        let mut client = ServeClient::connect(gw.addr, Duration::from_secs(5)).unwrap();

        // Kill shard 1 and let the gateway notice (queries to its block
        // must surface the typed error first).
        shards[1].stop();
        let hi_src = map.nodes(1).start;
        let mut noticed = false;
        for _ in 0..100 {
            if matches!(
                client.query(hi_src, 1, false).unwrap(),
                QueryOutcome::ShardUnavailable { .. }
            ) {
                noticed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(noticed, "gateway never noticed the dead shard");

        // The swap lands on the surviving shard; the report says the
        // deployment is degraded, and the generation still advances so
        // live shards serve consistent (new) answers.
        let report = client.apply_tables(1, &snap).unwrap();
        assert!(!report.accepted, "a degraded swap must not claim success");
        assert_eq!(report.shards_installed, 1);
        assert_eq!(report.shards_down, 1);
        assert_eq!(report.generation, 1);
        assert_eq!(gw.generation(), 1);
        assert!(matches!(
            client.query(0, 3, false).unwrap(),
            QueryOutcome::Dist { .. } | QueryOutcome::Unreachable
        ));
        gw.shutdown();
        for s in &mut shards {
            s.stop();
        }
    }

    #[test]
    fn cache_serves_repeat_pairs() {
        let (_, snap) = snapshot(16, 16, 3);
        let (mut gw, mut shards, _) = spawn_loopback(&snap, 2, GatewayConfig::default()).unwrap();
        let mut client = ServeClient::connect(gw.addr, Duration::from_secs(5)).unwrap();
        for _ in 0..20 {
            let _ = client.query(2, 9, true).unwrap();
        }
        let stats = gw.stats();
        assert!(
            stats.cache_hits >= 19,
            "expected repeats to hit the cache, got {stats:?}"
        );
        gw.shutdown();
        for s in &mut shards {
            s.stop();
        }
    }
}
