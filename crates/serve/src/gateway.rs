//! The stateless query gateway: route, coalesce, cache, degrade, swap.
//!
//! Clients connect to one address and never learn the shard layout.
//! For every incoming [`QueryRequest`] the gateway:
//!
//! 1. **routes** — resolves the owning shard from the source node via
//!    the same [`ShardMap`] the transport runtime shards by, and probes
//!    the LRU cache; a hit (or an out-of-range source/destination)
//!    answers immediately without touching any shard;
//! 2. **batches** — parks the query on the owning shard's dispatcher,
//!    which coalesces everything that arrives within one flush tick
//!    (or up to `max_batch`) into a single [`QueryBatch`] frame,
//!    mempool-style, and ships it as one write;
//! 3. **caches** — folds every distance/path/unreachable answer back
//!    into the shared LRU so hot pairs short-circuit at intake;
//! 4. **degrades** — a dead shard connection marks that shard down and
//!    turns its queued and future queries into typed
//!    [`QueryOutcome::ShardUnavailable`] replies carrying the orphaned
//!    source range, while every other shard keeps serving;
//! 5. **swaps** — a [`ClientRequest::ApplyTables`] fans the new
//!    generation out to every live shard *through the dispatcher
//!    mailboxes* (so installs serialize with query batches on each
//!    shard connection — FIFO, no second socket), waits for the acks,
//!    then bumps the gateway generation and invalidates the cache. See
//!    DESIGN.md §14 for the protocol's old-or-new guarantee.
//!
//! Threading: one dispatcher thread per shard (owns that shard's
//! connection; write-then-read per frame, so batches to *different*
//! shards overlap freely), one reader and one writer thread per client
//! connection (replies can complete out of submission order — cache
//! hits overtake shard round trips — so writers drain a channel and
//! clients correlate by id).
//!
//! # Why queries carry their intake generation
//!
//! A query parked before a swap can be answered by the shard *after*
//! the shard installed the new tables. Delivering that (new-generation)
//! answer to the client is fine — during a swap a client may see old or
//! new, never a mix within one answer. But folding it into the cache
//! stamped with the *old* gateway generation, or folding an
//! old-generation answer in after the bump, would poison the cache. So
//! every parked query records the generation it was admitted under and
//! [`cache_put`] drops answers whose intake generation is no longer
//! current — the cheap, conservative rule.

use crate::cache::{CachedAnswer, PathCache};
use crate::metrics::ServeStats;
use crate::proto::{
    ApplyReport, ClientReply, ClientRequest, QueryBatch, QueryOutcome, QueryReply, QueryRequest,
    ReplyBatch, ShardFrame, ShardReply,
};
use crate::table::TableSnapshot;
use dw_graph::{NodeId, INFINITY};
use dw_transport::shard::ShardMap;
use dw_transport::tcp::retry_connect;
use dw_transport::wire::{read_frame, write_frame};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Coalescing window: after the first query lands on an idle
    /// dispatcher, wait this long for more before flushing. Zero
    /// disables coalescing (every query ships as soon as the
    /// dispatcher is free).
    pub flush_interval: Duration,
    /// Flush early once a batch holds this many queries.
    pub max_batch: usize,
    /// LRU capacity in `(src, dst)` entries; zero disables caching.
    pub cache_capacity: usize,
    /// How long to keep retrying the initial shard connections.
    pub connect_timeout: Duration,
    /// Per-batch shard read timeout: a shard silent this long is
    /// declared down (a *closed* socket is detected immediately; the
    /// timeout catches a wedged one).
    pub shard_timeout: Duration,
    /// How long one `ApplyTables` waits for all shard install acks
    /// before counting the stragglers as failed.
    pub apply_timeout: Duration,
    /// The generation the deployment starts at — the generation of the
    /// tables file the shards were booted from (0 for legacy `DWT1`
    /// files). Installs must beat this to be accepted.
    pub initial_generation: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            flush_interval: Duration::from_micros(200),
            max_batch: 128,
            cache_capacity: 4096,
            connect_timeout: Duration::from_secs(5),
            shard_timeout: Duration::from_secs(5),
            apply_timeout: Duration::from_secs(30),
            initial_generation: 0,
        }
    }
}

/// A query parked on a dispatcher: the shard-hop request (re-tagged
/// with an internal id) plus the way home.
struct Parked {
    query: QueryRequest,
    /// Reply channel of the owning client connection.
    home: Sender<ClientReply>,
    /// The client's original correlation id.
    client_id: u64,
    /// The gateway generation this query was admitted under; answers
    /// whose intake generation is no longer current are not cached.
    gen: u64,
}

/// A table install parked on a dispatcher, serialized with query
/// batches on the shard connection. `done` reports whether the shard
/// acked at (or beyond) the requested generation.
struct InstallJob {
    generation: u64,
    snap: TableSnapshot,
    done: Sender<bool>,
}

/// One shard dispatcher's mailbox.
#[derive(Default)]
struct Mailbox {
    parked: Vec<Parked>,
    /// Pending table installs; shipped before the next query batch.
    installs: Vec<InstallJob>,
    /// Set once the shard is declared dead; guarded by the same lock
    /// so intake and dispatcher agree on who answers a parked query.
    down: bool,
}

struct Dispatcher {
    mailbox: Mutex<Mailbox>,
    wake: Condvar,
    /// The source-node block this shard owns (for `ShardUnavailable`).
    lo: NodeId,
    hi: NodeId,
}

struct Shared {
    map: ShardMap,
    dispatchers: Vec<Arc<Dispatcher>>,
    cache: Mutex<PathCache>,
    stats: Mutex<ServeStats>,
    stop: AtomicBool,
    /// The currently installed table generation (monotone).
    generation: AtomicU64,
    apply_timeout: Duration,
}

impl Shared {
    fn unavailable(&self, shard: NodeId) -> QueryOutcome {
        let d = &self.dispatchers[shard as usize];
        QueryOutcome::ShardUnavailable {
            shard,
            lo: d.lo,
            hi: d.hi,
        }
    }
}

/// Fold a shard answer into the cache (only answers that are facts
/// about the graph — not errors — are cacheable, and only when the
/// query's intake generation is still the live one).
fn cache_put(shared: &Shared, gen: u64, src: NodeId, dst: NodeId, outcome: &QueryOutcome) {
    if gen != shared.generation.load(Ordering::SeqCst) {
        return;
    }
    let answer = match outcome {
        QueryOutcome::Dist { dist } => CachedAnswer {
            dist: *dist,
            path: None,
        },
        QueryOutcome::Path { dist, path } => CachedAnswer {
            dist: *dist,
            path: Some(path.clone()),
        },
        QueryOutcome::Unreachable => CachedAnswer {
            dist: INFINITY,
            path: None,
        },
        _ => return,
    };
    shared.cache.lock().unwrap().put(src, dst, answer);
}

/// What a dispatcher pulled out of its mailbox for one round.
enum Work {
    /// Installs ship first, in arrival order, one frame each.
    Installs(Vec<InstallJob>),
    Batch(Vec<Parked>),
}

/// The per-shard dispatcher loop: wait for parked work, coalesce one
/// flush tick's worth of queries (installs preempt coalescing), ship,
/// route replies home.
fn dispatcher_main(
    shared: &Shared,
    shard: usize,
    mut conn: Option<TcpStream>,
    cfg_flush: Duration,
    cfg_batch: usize,
) {
    let d = &shared.dispatchers[shard];
    let mut scratch = Vec::new();
    let mut seq = 0u64;
    loop {
        // --- collect one round of work ---
        let work: Work = {
            let mut mb = d.mailbox.lock().unwrap();
            while mb.parked.is_empty()
                && mb.installs.is_empty()
                && !shared.stop.load(Ordering::Relaxed)
            {
                let (guard, _) = d.wake.wait_timeout(mb, Duration::from_millis(50)).unwrap();
                mb = guard;
            }
            if !mb.installs.is_empty() {
                Work::Installs(mb.installs.drain(..).collect())
            } else if mb.parked.is_empty() {
                return; // stopped while idle
            } else {
                // Coalescing window: give concurrent clients one tick to
                // pile on, flushing early at max_batch (or the moment an
                // install arrives — swaps should not wait on the window).
                if !cfg_flush.is_zero() {
                    let deadline = Instant::now() + cfg_flush;
                    while mb.parked.len() < cfg_batch && mb.installs.is_empty() {
                        let now = Instant::now();
                        if now >= deadline || shared.stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let (guard, _) = d.wake.wait_timeout(mb, deadline - now).unwrap();
                        mb = guard;
                    }
                }
                let take = mb.parked.len().min(cfg_batch);
                Work::Batch(mb.parked.drain(..take).collect())
            }
        };

        match work {
            Work::Installs(jobs) => {
                let mut jobs = jobs.into_iter();
                for job in jobs.by_ref() {
                    let acked = match &mut conn {
                        None => Err(io::Error::new(io::ErrorKind::NotConnected, "shard down")),
                        Some(stream) => {
                            ship_install(stream, &mut scratch, job.generation, &job.snap)
                        }
                    };
                    match acked {
                        Ok(live_gen) => {
                            let _ = job.done.send(live_gen >= job.generation);
                        }
                        Err(_) => {
                            let _ = job.done.send(false);
                            mark_down(shared, d, shard, &mut conn, &[]);
                            break;
                        }
                    }
                }
                // A connection death mid-install fails the rest too.
                for job in jobs {
                    let _ = job.done.send(false);
                }
            }
            Work::Batch(batch) => {
                let t0 = Instant::now();
                let outcome = match &mut conn {
                    None => Err(io::Error::new(io::ErrorKind::NotConnected, "shard down")),
                    Some(stream) => ship_batch(stream, &mut scratch, &mut seq, &batch),
                };
                match outcome {
                    Ok(reply) => {
                        let batch_ns = t0.elapsed().as_nanos() as u64;
                        {
                            let mut st = shared.stats.lock().unwrap();
                            st.batches += 1;
                            st.batched_queries += batch.len() as u64;
                            st.batch_ns += batch_ns;
                            st.lookup_ns += reply.lookup_ns;
                            st.walk_ns += reply.walk_ns;
                        }
                        let mut by_id: HashMap<u64, QueryReply> =
                            reply.replies.into_iter().map(|r| (r.id, r)).collect();
                        for p in batch {
                            let outcome = match by_id.remove(&p.query.id) {
                                Some(r) => {
                                    cache_put(shared, p.gen, p.query.src, p.query.dst, &r.outcome);
                                    r.outcome
                                }
                                // A reply batch that lost an entry is a
                                // shard bug; fail that query closed.
                                None => shared.unavailable(shard as NodeId),
                            };
                            deliver(shared, &p, outcome);
                        }
                    }
                    Err(_) => mark_down(shared, d, shard, &mut conn, &batch),
                }
            }
        }
    }
}

/// The shard is gone: mark it down under the mailbox lock (so no new
/// query can park in between), then fail `batch` and anything parked or
/// queued for install meanwhile.
fn mark_down(
    shared: &Shared,
    d: &Dispatcher,
    shard: usize,
    conn: &mut Option<TcpStream>,
    batch: &[Parked],
) {
    let (leftovers, installs): (Vec<Parked>, Vec<InstallJob>) = {
        let mut mb = d.mailbox.lock().unwrap();
        mb.down = true;
        (
            mb.parked.drain(..).collect(),
            mb.installs.drain(..).collect(),
        )
    };
    *conn = None;
    for p in batch.iter().chain(leftovers.iter()) {
        deliver(shared, p, shared.unavailable(shard as NodeId));
    }
    for job in installs {
        let _ = job.done.send(false);
    }
}

/// One batched round trip on the shard connection.
fn ship_batch(
    stream: &mut TcpStream,
    scratch: &mut Vec<u8>,
    seq: &mut u64,
    batch: &[Parked],
) -> io::Result<ReplyBatch> {
    *seq += 1;
    let frame = ShardFrame::Queries(QueryBatch {
        seq: *seq,
        queries: batch.iter().map(|p| p.query.clone()).collect(),
    });
    write_frame(stream, &frame, scratch)?;
    loop {
        match read_frame::<_, ShardReply>(stream) {
            Ok(Some(ShardReply::Replies(reply))) if reply.seq == *seq => return Ok(reply),
            // A stale reply (from a batch or install we already gave up
            // on) is skipped; anything else is a dead or misbehaving
            // shard.
            Ok(Some(_)) => continue,
            Ok(None) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Err(e) => return Err(e),
        }
    }
}

/// One install round trip on the shard connection. Returns the
/// generation the shard reports live after the install.
fn ship_install(
    stream: &mut TcpStream,
    scratch: &mut Vec<u8>,
    generation: u64,
    snap: &TableSnapshot,
) -> io::Result<u64> {
    let frame = ShardFrame::Install {
        generation,
        snap: snap.clone(),
    };
    write_frame(stream, &frame, scratch)?;
    loop {
        match read_frame::<_, ShardReply>(stream) {
            Ok(Some(ShardReply::Installed { generation })) => return Ok(generation),
            // Stale query replies from an abandoned batch are skipped.
            Ok(Some(ShardReply::Replies(_))) => continue,
            Ok(None) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Err(e) => return Err(e),
        }
    }
}

fn deliver(shared: &Shared, p: &Parked, outcome: QueryOutcome) {
    {
        let mut st = shared.stats.lock().unwrap();
        st.replies += 1;
        if matches!(outcome, QueryOutcome::ShardUnavailable { .. }) {
            st.shard_unavailable += 1;
        }
    }
    // A dead client connection just drops the reply; the reader side
    // notices the hangup independently.
    let _ = p.home.send(ClientReply::Query(QueryReply {
        id: p.client_id,
        outcome,
    }));
}

/// Handle one `ApplyTables` from a client: validate, fan the install
/// out to every live shard through its dispatcher, await the acks, bump
/// the gateway generation and invalidate the cache if anything
/// installed, and report back.
fn handle_apply(shared: &Shared, generation: u64, snap: TableSnapshot, tx: &Sender<ClientReply>) {
    let current = shared.generation.load(Ordering::SeqCst);
    if generation <= current || snap.n as usize != shared.map.n() {
        let _ = tx.send(ClientReply::ApplyDone(ApplyReport {
            accepted: false,
            generation: current,
            shards_installed: 0,
            shards_down: 0,
        }));
        return;
    }

    let mut waits = Vec::new();
    let mut shards_down = 0u32;
    for (s, d) in shared.dispatchers.iter().enumerate() {
        let sub = snap.for_shard(&shared.map, s as NodeId);
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let mut mb = d.mailbox.lock().unwrap();
        if mb.down {
            shards_down += 1;
            continue;
        }
        mb.installs.push(InstallJob {
            generation,
            snap: sub,
            done: done_tx,
        });
        d.wake.notify_one();
        drop(mb);
        waits.push(done_rx);
    }

    let deadline = Instant::now() + shared.apply_timeout;
    let (mut installed, mut failed) = (0u32, 0u32);
    for rx in waits {
        let left = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(left) {
            Ok(true) => installed += 1,
            _ => failed += 1,
        }
    }

    // Any successful install means live shards are now answering from
    // the new generation: the gateway must follow (and drop every
    // cached fact about the old graph), even if some other shard died
    // mid-swap — its queries degrade to ShardUnavailable anyway.
    let live_gen = if installed > 0 {
        shared.generation.fetch_max(generation, Ordering::SeqCst);
        let g = shared.generation.load(Ordering::SeqCst);
        shared.cache.lock().unwrap().set_generation(g);
        g
    } else {
        current
    };
    // `accepted` means the *whole* fleet now serves the new generation;
    // a degraded swap (some shard down or failing mid-install) still
    // advances the live shards but reports itself honestly.
    let _ = tx.send(ClientReply::ApplyDone(ApplyReport {
        accepted: failed == 0 && shards_down == 0 && installed > 0,
        generation: live_gen,
        shards_installed: installed,
        shards_down: shards_down + failed,
    }));
}

/// One client connection's intake loop: read requests, answer what can
/// be answered at the gate, park the rest on the owning dispatcher.
/// Table swaps are handled inline (one at a time per connection).
fn client_main(shared: &Shared, stream: TcpStream, next_internal: &AtomicU64) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = std::sync::mpsc::channel::<ClientReply>();

    // Writer: serialize replies back to the client as they complete.
    let writer = std::thread::spawn(move || {
        let mut stream = stream;
        let mut scratch = Vec::new();
        while let Ok(reply) = rx.recv() {
            if write_frame(&mut stream, &reply, &mut scratch).is_err() {
                break;
            }
        }
    });

    let mut read_half = read_half;
    let _ = read_half.set_nodelay(true);
    let _ = read_half.set_read_timeout(Some(Duration::from_millis(50)));
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let req = match read_frame::<_, ClientRequest>(&mut read_half) {
            Ok(Some(r)) => r,
            Ok(None) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let req = match req {
            ClientRequest::Query(q) => q,
            ClientRequest::ApplyTables { generation, snap } => {
                handle_apply(shared, generation, snap, &tx);
                continue;
            }
        };

        let t0 = Instant::now();
        shared.stats.lock().unwrap().queries += 1;
        let n = shared.map.n() as NodeId;

        // Fail fast on out-of-range coordinates: no shard owns them.
        if req.src >= n || req.dst >= n {
            {
                let mut st = shared.stats.lock().unwrap();
                st.route_ns += t0.elapsed().as_nanos() as u64;
                st.replies += 1;
            }
            let _ = tx.send(ClientReply::Query(QueryReply {
                id: req.id,
                outcome: QueryOutcome::OutOfRange,
            }));
            continue;
        }

        // Cache probe.
        let cached = shared
            .cache
            .lock()
            .unwrap()
            .get(req.src, req.dst, req.want_path);
        if let Some(hit) = cached {
            let outcome = match (req.want_path, hit.path) {
                _ if hit.dist == INFINITY => QueryOutcome::Unreachable,
                (true, Some(path)) => QueryOutcome::Path {
                    dist: hit.dist,
                    path,
                },
                _ => QueryOutcome::Dist { dist: hit.dist },
            };
            let mut st = shared.stats.lock().unwrap();
            st.cache_hits += 1;
            st.replies += 1;
            st.route_ns += t0.elapsed().as_nanos() as u64;
            drop(st);
            let _ = tx.send(ClientReply::Query(QueryReply {
                id: req.id,
                outcome,
            }));
            continue;
        }
        shared.stats.lock().unwrap().cache_misses += 1;

        // Route to the owning shard's dispatcher.
        let shard = shared.map.shard_of(req.src);
        let d = &shared.dispatchers[shard as usize];
        let internal = next_internal.fetch_add(1, Ordering::Relaxed);
        let parked = Parked {
            query: QueryRequest {
                id: internal,
                ..req.clone()
            },
            home: tx.clone(),
            client_id: req.id,
            gen: shared.generation.load(Ordering::SeqCst),
        };
        {
            let mut mb = d.mailbox.lock().unwrap();
            if mb.down {
                drop(mb);
                shared.stats.lock().unwrap().route_ns += t0.elapsed().as_nanos() as u64;
                deliver(shared, &parked, shared.unavailable(shard));
                continue;
            }
            mb.parked.push(parked);
            d.wake.notify_one();
        }
        shared.stats.lock().unwrap().route_ns += t0.elapsed().as_nanos() as u64;
    }
    // Closing `tx` ends the writer once in-flight replies drain.
    drop(tx);
    let _ = writer.join();
}

/// A running gateway: accept loop + shard dispatchers on background
/// threads. Stop with [`Gateway::shutdown`]; dropping shuts down too.
pub struct Gateway {
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Gateway {
    /// Connect to `shard_addrs` (shard `s` serves the `s`-th block of
    /// `map`) and start accepting clients on a fresh loopback listener.
    pub fn spawn(
        map: ShardMap,
        shard_addrs: &[SocketAddr],
        cfg: GatewayConfig,
    ) -> io::Result<Gateway> {
        Gateway::spawn_on(TcpListener::bind(("127.0.0.1", 0))?, map, shard_addrs, cfg)
    }

    /// As [`Gateway::spawn`], on a caller-provided listener.
    pub fn spawn_on(
        listener: TcpListener,
        map: ShardMap,
        shard_addrs: &[SocketAddr],
        cfg: GatewayConfig,
    ) -> io::Result<Gateway> {
        assert_eq!(
            map.shards(),
            shard_addrs.len(),
            "one shard address per shard of the layout"
        );
        let addr = listener.local_addr()?;
        let dispatchers: Vec<Arc<Dispatcher>> = (0..map.shards())
            .map(|s| {
                let block = map.nodes(s as NodeId);
                Arc::new(Dispatcher {
                    mailbox: Mutex::new(Mailbox::default()),
                    wake: Condvar::new(),
                    lo: block.start,
                    hi: block.end,
                })
            })
            .collect();
        let mut cache = PathCache::new(cfg.cache_capacity);
        cache.set_generation(cfg.initial_generation);
        let shared = Arc::new(Shared {
            map,
            dispatchers,
            cache: Mutex::new(cache),
            stats: Mutex::new(ServeStats::default()),
            stop: AtomicBool::new(false),
            generation: AtomicU64::new(cfg.initial_generation),
            apply_timeout: cfg.apply_timeout,
        });

        let mut threads = Vec::new();
        for (s, &peer) in shard_addrs.iter().enumerate() {
            // A shard that is already down at startup degrades exactly
            // like one that dies later: its dispatcher starts with no
            // connection and answers `ShardUnavailable`.
            let conn = retry_connect(peer, cfg.connect_timeout)
                .and_then(|c| {
                    c.set_nodelay(true)?;
                    c.set_read_timeout(Some(cfg.shard_timeout))?;
                    Ok(c)
                })
                .ok();
            if conn.is_none() {
                shared.dispatchers[s].mailbox.lock().unwrap().down = true;
            }
            let shared2 = Arc::clone(&shared);
            let flush = cfg.flush_interval;
            let max_batch = cfg.max_batch.max(1);
            threads.push(std::thread::spawn(move || {
                dispatcher_main(&shared2, s, conn, flush, max_batch);
            }));
        }

        // Accept loop.
        listener.set_nonblocking(true)?;
        let shared2 = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            let next_internal = Arc::new(AtomicU64::new(1));
            let mut clients = Vec::new();
            while !shared2.stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let shared3 = Arc::clone(&shared2);
                        let ids = Arc::clone(&next_internal);
                        clients.push(std::thread::spawn(move || {
                            client_main(&shared3, stream, &ids);
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for c in clients {
                let _ = c.join();
            }
        }));

        Ok(Gateway {
            addr,
            shared,
            threads,
        })
    }

    /// Snapshot of the aggregate serve metrics.
    pub fn stats(&self) -> ServeStats {
        *self.shared.stats.lock().unwrap()
    }

    /// The table generation the gateway currently believes live.
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::SeqCst)
    }

    /// Observed cache hit rate (from the cache's own counters, which
    /// include probes answered before routing).
    pub fn cache_hit_rate(&self) -> f64 {
        self.shared.cache.lock().unwrap().hit_rate()
    }

    /// Stop accepting, drain the dispatchers, join every thread.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        for d in &self.shared.dispatchers {
            d.wake.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}
