//! The stateless query gateway: route, coalesce, cache, degrade.
//!
//! Clients connect to one address and never learn the shard layout.
//! For every incoming [`QueryRequest`] the gateway:
//!
//! 1. **routes** — resolves the owning shard from the source node via
//!    the same [`ShardMap`] the transport runtime shards by, and probes
//!    the LRU cache; a hit (or an out-of-range source/destination)
//!    answers immediately without touching any shard;
//! 2. **batches** — parks the query on the owning shard's dispatcher,
//!    which coalesces everything that arrives within one flush tick
//!    (or up to `max_batch`) into a single [`QueryBatch`] frame,
//!    mempool-style, and ships it as one write;
//! 3. **caches** — folds every distance/path/unreachable answer back
//!    into the shared LRU so hot pairs short-circuit at intake;
//! 4. **degrades** — a dead shard connection marks that shard down and
//!    turns its queued and future queries into typed
//!    [`QueryOutcome::ShardUnavailable`] replies carrying the orphaned
//!    source range, while every other shard keeps serving.
//!
//! Threading: one dispatcher thread per shard (owns that shard's
//! connection; write-then-read per batch, so batches to *different*
//! shards overlap freely), one reader and one writer thread per client
//! connection (replies can complete out of submission order — cache
//! hits overtake shard round trips — so writers drain a channel and
//! clients correlate by id).

use crate::cache::{CachedAnswer, PathCache};
use crate::metrics::ServeStats;
use crate::proto::{QueryBatch, QueryOutcome, QueryReply, QueryRequest, ReplyBatch};
use dw_graph::{NodeId, INFINITY};
use dw_transport::shard::ShardMap;
use dw_transport::tcp::retry_connect;
use dw_transport::wire::{read_frame, write_frame};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Coalescing window: after the first query lands on an idle
    /// dispatcher, wait this long for more before flushing. Zero
    /// disables coalescing (every query ships as soon as the
    /// dispatcher is free).
    pub flush_interval: Duration,
    /// Flush early once a batch holds this many queries.
    pub max_batch: usize,
    /// LRU capacity in `(src, dst)` entries; zero disables caching.
    pub cache_capacity: usize,
    /// How long to keep retrying the initial shard connections.
    pub connect_timeout: Duration,
    /// Per-batch shard read timeout: a shard silent this long is
    /// declared down (a *closed* socket is detected immediately; the
    /// timeout catches a wedged one).
    pub shard_timeout: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            flush_interval: Duration::from_micros(200),
            max_batch: 128,
            cache_capacity: 4096,
            connect_timeout: Duration::from_secs(5),
            shard_timeout: Duration::from_secs(5),
        }
    }
}

/// A query parked on a dispatcher: the shard-hop request (re-tagged
/// with an internal id) plus the way home.
struct Parked {
    query: QueryRequest,
    /// Reply channel of the owning client connection.
    home: Sender<QueryReply>,
    /// The client's original correlation id.
    client_id: u64,
}

/// One shard dispatcher's mailbox.
#[derive(Default)]
struct Mailbox {
    parked: Vec<Parked>,
    /// Set once the shard is declared dead; guarded by the same lock
    /// so intake and dispatcher agree on who answers a parked query.
    down: bool,
}

struct Dispatcher {
    mailbox: Mutex<Mailbox>,
    wake: Condvar,
    /// The source-node block this shard owns (for `ShardUnavailable`).
    lo: NodeId,
    hi: NodeId,
}

struct Shared {
    map: ShardMap,
    dispatchers: Vec<Arc<Dispatcher>>,
    cache: Mutex<PathCache>,
    stats: Mutex<ServeStats>,
    stop: AtomicBool,
}

impl Shared {
    fn unavailable(&self, shard: NodeId) -> QueryOutcome {
        let d = &self.dispatchers[shard as usize];
        QueryOutcome::ShardUnavailable {
            shard,
            lo: d.lo,
            hi: d.hi,
        }
    }
}

/// Fold a shard answer into the cache (only answers that are facts
/// about the graph — not errors — are cacheable).
fn cache_put(cache: &Mutex<PathCache>, src: NodeId, dst: NodeId, outcome: &QueryOutcome) {
    let answer = match outcome {
        QueryOutcome::Dist { dist } => CachedAnswer {
            dist: *dist,
            path: None,
        },
        QueryOutcome::Path { dist, path } => CachedAnswer {
            dist: *dist,
            path: Some(path.clone()),
        },
        QueryOutcome::Unreachable => CachedAnswer {
            dist: INFINITY,
            path: None,
        },
        _ => return,
    };
    cache.lock().unwrap().put(src, dst, answer);
}

/// The per-shard dispatcher loop: wait for parked queries, coalesce one
/// flush tick's worth, ship the batch, route replies home.
fn dispatcher_main(
    shared: &Shared,
    shard: usize,
    mut conn: Option<TcpStream>,
    cfg_flush: Duration,
    cfg_batch: usize,
) {
    let d = &shared.dispatchers[shard];
    let mut scratch = Vec::new();
    let mut seq = 0u64;
    loop {
        // --- collect one batch ---
        let batch: Vec<Parked> = {
            let mut mb = d.mailbox.lock().unwrap();
            while mb.parked.is_empty() && !shared.stop.load(Ordering::Relaxed) {
                let (guard, _) = d.wake.wait_timeout(mb, Duration::from_millis(50)).unwrap();
                mb = guard;
            }
            if mb.parked.is_empty() {
                return; // stopped while idle
            }
            // Coalescing window: give concurrent clients one tick to
            // pile on, flushing early at max_batch.
            if !cfg_flush.is_zero() {
                let deadline = Instant::now() + cfg_flush;
                while mb.parked.len() < cfg_batch {
                    let now = Instant::now();
                    if now >= deadline || shared.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let (guard, _) = d.wake.wait_timeout(mb, deadline - now).unwrap();
                    mb = guard;
                }
            }
            let take = mb.parked.len().min(cfg_batch);
            mb.parked.drain(..take).collect()
        };

        let t0 = Instant::now();
        let outcome = match &mut conn {
            None => Err(io::Error::new(io::ErrorKind::NotConnected, "shard down")),
            Some(stream) => ship_batch(stream, &mut scratch, &mut seq, &batch),
        };
        match outcome {
            Ok(reply) => {
                let batch_ns = t0.elapsed().as_nanos() as u64;
                {
                    let mut st = shared.stats.lock().unwrap();
                    st.batches += 1;
                    st.batched_queries += batch.len() as u64;
                    st.batch_ns += batch_ns;
                    st.lookup_ns += reply.lookup_ns;
                    st.walk_ns += reply.walk_ns;
                }
                let mut by_id: HashMap<u64, QueryReply> =
                    reply.replies.into_iter().map(|r| (r.id, r)).collect();
                for p in batch {
                    let outcome = match by_id.remove(&p.query.id) {
                        Some(r) => {
                            cache_put(&shared.cache, p.query.src, p.query.dst, &r.outcome);
                            r.outcome
                        }
                        // A reply batch that lost an entry is a shard
                        // bug; fail that query closed.
                        None => shared.unavailable(shard as NodeId),
                    };
                    deliver(shared, &p, outcome);
                }
            }
            Err(_) => {
                // The shard is gone: mark it down under the mailbox
                // lock (so no new query can park in between), then fail
                // this batch and anything parked meanwhile.
                let leftovers: Vec<Parked> = {
                    let mut mb = d.mailbox.lock().unwrap();
                    mb.down = true;
                    mb.parked.drain(..).collect()
                };
                conn = None;
                for p in batch.iter().chain(leftovers.iter()) {
                    deliver(shared, p, shared.unavailable(shard as NodeId));
                }
            }
        }
    }
}

/// One batched round trip on the shard connection.
fn ship_batch(
    stream: &mut TcpStream,
    scratch: &mut Vec<u8>,
    seq: &mut u64,
    batch: &[Parked],
) -> io::Result<ReplyBatch> {
    *seq += 1;
    let frame = QueryBatch {
        seq: *seq,
        queries: batch.iter().map(|p| p.query.clone()).collect(),
    };
    write_frame(stream, &frame, scratch)?;
    loop {
        match read_frame::<_, ReplyBatch>(stream) {
            Ok(Some(reply)) if reply.seq == *seq => return Ok(reply),
            // A stale reply (from a batch we already gave up on) is
            // skipped; anything else is a dead or misbehaving shard.
            Ok(Some(_)) => continue,
            Ok(None) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Err(e) => return Err(e),
        }
    }
}

fn deliver(shared: &Shared, p: &Parked, outcome: QueryOutcome) {
    {
        let mut st = shared.stats.lock().unwrap();
        st.replies += 1;
        if matches!(outcome, QueryOutcome::ShardUnavailable { .. }) {
            st.shard_unavailable += 1;
        }
    }
    // A dead client connection just drops the reply; the reader side
    // notices the hangup independently.
    let _ = p.home.send(QueryReply {
        id: p.client_id,
        outcome,
    });
}

/// One client connection's intake loop: read requests, answer what can
/// be answered at the gate, park the rest on the owning dispatcher.
fn client_main(shared: &Shared, stream: TcpStream, next_internal: &std::sync::atomic::AtomicU64) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = std::sync::mpsc::channel::<QueryReply>();

    // Writer: serialize replies back to the client as they complete.
    let writer = std::thread::spawn(move || {
        let mut stream = stream;
        let mut scratch = Vec::new();
        while let Ok(reply) = rx.recv() {
            if write_frame(&mut stream, &reply, &mut scratch).is_err() {
                break;
            }
        }
    });

    let mut read_half = read_half;
    let _ = read_half.set_nodelay(true);
    let _ = read_half.set_read_timeout(Some(Duration::from_millis(50)));
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let req = match read_frame::<_, QueryRequest>(&mut read_half) {
            Ok(Some(r)) => r,
            Ok(None) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };

        let t0 = Instant::now();
        shared.stats.lock().unwrap().queries += 1;
        let n = shared.map.n() as NodeId;

        // Fail fast on out-of-range coordinates: no shard owns them.
        if req.src >= n || req.dst >= n {
            {
                let mut st = shared.stats.lock().unwrap();
                st.route_ns += t0.elapsed().as_nanos() as u64;
                st.replies += 1;
            }
            let _ = tx.send(QueryReply {
                id: req.id,
                outcome: QueryOutcome::OutOfRange,
            });
            continue;
        }

        // Cache probe.
        let cached = shared
            .cache
            .lock()
            .unwrap()
            .get(req.src, req.dst, req.want_path);
        if let Some(hit) = cached {
            let outcome = match (req.want_path, hit.path) {
                _ if hit.dist == INFINITY => QueryOutcome::Unreachable,
                (true, Some(path)) => QueryOutcome::Path {
                    dist: hit.dist,
                    path,
                },
                _ => QueryOutcome::Dist { dist: hit.dist },
            };
            let mut st = shared.stats.lock().unwrap();
            st.cache_hits += 1;
            st.replies += 1;
            st.route_ns += t0.elapsed().as_nanos() as u64;
            drop(st);
            let _ = tx.send(QueryReply {
                id: req.id,
                outcome,
            });
            continue;
        }
        shared.stats.lock().unwrap().cache_misses += 1;

        // Route to the owning shard's dispatcher.
        let shard = shared.map.shard_of(req.src);
        let d = &shared.dispatchers[shard as usize];
        let internal = next_internal.fetch_add(1, Ordering::Relaxed);
        let parked = Parked {
            query: QueryRequest {
                id: internal,
                ..req.clone()
            },
            home: tx.clone(),
            client_id: req.id,
        };
        {
            let mut mb = d.mailbox.lock().unwrap();
            if mb.down {
                drop(mb);
                shared.stats.lock().unwrap().route_ns += t0.elapsed().as_nanos() as u64;
                deliver(shared, &parked, shared.unavailable(shard));
                continue;
            }
            mb.parked.push(parked);
            d.wake.notify_one();
        }
        shared.stats.lock().unwrap().route_ns += t0.elapsed().as_nanos() as u64;
    }
    // Closing `tx` ends the writer once in-flight replies drain.
    drop(tx);
    let _ = writer.join();
}

/// A running gateway: accept loop + shard dispatchers on background
/// threads. Stop with [`Gateway::shutdown`]; dropping shuts down too.
pub struct Gateway {
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Gateway {
    /// Connect to `shard_addrs` (shard `s` serves the `s`-th block of
    /// `map`) and start accepting clients on a fresh loopback listener.
    pub fn spawn(
        map: ShardMap,
        shard_addrs: &[SocketAddr],
        cfg: GatewayConfig,
    ) -> io::Result<Gateway> {
        Gateway::spawn_on(TcpListener::bind(("127.0.0.1", 0))?, map, shard_addrs, cfg)
    }

    /// As [`Gateway::spawn`], on a caller-provided listener.
    pub fn spawn_on(
        listener: TcpListener,
        map: ShardMap,
        shard_addrs: &[SocketAddr],
        cfg: GatewayConfig,
    ) -> io::Result<Gateway> {
        assert_eq!(
            map.shards(),
            shard_addrs.len(),
            "one shard address per shard of the layout"
        );
        let addr = listener.local_addr()?;
        let dispatchers: Vec<Arc<Dispatcher>> = (0..map.shards())
            .map(|s| {
                let block = map.nodes(s as NodeId);
                Arc::new(Dispatcher {
                    mailbox: Mutex::new(Mailbox::default()),
                    wake: Condvar::new(),
                    lo: block.start,
                    hi: block.end,
                })
            })
            .collect();
        let shared = Arc::new(Shared {
            map,
            dispatchers,
            cache: Mutex::new(PathCache::new(cfg.cache_capacity)),
            stats: Mutex::new(ServeStats::default()),
            stop: AtomicBool::new(false),
        });

        let mut threads = Vec::new();
        for (s, &peer) in shard_addrs.iter().enumerate() {
            // A shard that is already down at startup degrades exactly
            // like one that dies later: its dispatcher starts with no
            // connection and answers `ShardUnavailable`.
            let conn = retry_connect(peer, cfg.connect_timeout)
                .and_then(|c| {
                    c.set_nodelay(true)?;
                    c.set_read_timeout(Some(cfg.shard_timeout))?;
                    Ok(c)
                })
                .ok();
            if conn.is_none() {
                shared.dispatchers[s].mailbox.lock().unwrap().down = true;
            }
            let shared2 = Arc::clone(&shared);
            let flush = cfg.flush_interval;
            let max_batch = cfg.max_batch.max(1);
            threads.push(std::thread::spawn(move || {
                dispatcher_main(&shared2, s, conn, flush, max_batch);
            }));
        }

        // Accept loop.
        listener.set_nonblocking(true)?;
        let shared2 = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            let next_internal = Arc::new(std::sync::atomic::AtomicU64::new(1));
            let mut clients = Vec::new();
            while !shared2.stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let shared3 = Arc::clone(&shared2);
                        let ids = Arc::clone(&next_internal);
                        clients.push(std::thread::spawn(move || {
                            client_main(&shared3, stream, &ids);
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for c in clients {
                let _ = c.join();
            }
        }));

        Ok(Gateway {
            addr,
            shared,
            threads,
        })
    }

    /// Snapshot of the aggregate serve metrics.
    pub fn stats(&self) -> ServeStats {
        *self.shared.stats.lock().unwrap()
    }

    /// Observed cache hit rate (from the cache's own counters, which
    /// include probes answered before routing).
    pub fn cache_hit_rate(&self) -> f64 {
        self.shared.cache.lock().unwrap().hit_rate()
    }

    /// Stop accepting, drain the dispatchers, join every thread.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        for d in &self.shared.dispatchers {
            d.wake.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}
