//! A Zipf(s) sampler over ranks `0..n`, for skewed query mixes.
//!
//! The load generator's skewed mix draws query pairs from a Zipf
//! distribution: rank `r` (0-based) has probability proportional to
//! `1 / (r + 1)^s`. Implementation is the standard inverse-CDF table —
//! precompute the normalized cumulative weights once, then each sample
//! is one uniform draw and a binary search. Deterministic given the
//! caller's RNG, which keeps loadgen runs reproducible seed-for-seed.

use rand::Rng;

/// Inverse-CDF Zipf sampler with exponent `s` over `n` ranks.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// `n` must be nonzero; `s == 0` degenerates to uniform.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over an empty rank space");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a rank in `0..n`; rank 0 is the most popular.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn skew_concentrates_mass_on_low_ranks() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut head = 0usize;
        let draws = 20_000;
        for _ in 0..draws {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s = 1.1 the top-10 ranks carry a large constant fraction
        // of the mass; uniform would give 1%.
        assert!(head as f64 / draws as f64 > 0.3, "head mass {head}");
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((1600..2400).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 2.5);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
