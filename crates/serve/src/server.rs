//! The shard worker of the serving plane: answers batched queries for
//! the source rows it owns and installs versioned table swaps.
//!
//! A shard server is deliberately dumb — it holds its slice of the
//! [`TableSnapshot`] (the rows whose source falls in its contiguous
//! node-id block) stamped with a generation, accepts connections, and
//! answers each incoming [`ShardFrame`] with one [`ShardReply`] in
//! frame order. All policy — routing, batching, caching, failure
//! handling — lives in the gateway; the shard's only contract is "one
//! reply per frame, same connection, FIFO". That keeps a worker
//! restartable by just pointing a new process at the same table file.
//!
//! # Atomic swaps
//!
//! The live tables are `Arc<RwLock<Arc<VersionedTables>>>`, shared by
//! every connection thread. A query batch pins the current `Arc` once
//! (one read-lock acquisition per *batch*, not per query) and answers
//! the whole batch against that pin — so a swap landing mid-batch never
//! mixes generations within a batch, and in-flight batches keep the old
//! tables alive until they finish. An [`ShardFrame::Install`] replaces
//! the inner `Arc` under the write lock only if the incoming generation
//! is strictly newer, which makes duplicated or reordered installs
//! idempotent; the ack always reports the post-install generation so
//! the installer can tell "applied" from "already there".

use crate::proto::{
    QueryBatch, QueryOutcome, QueryReply, QueryRequest, ReplyBatch, ShardFrame, ShardReply,
};
use crate::table::{TableSnapshot, VersionedTables};
use dw_graph::INFINITY;
use dw_transport::wire::{read_frame, write_frame};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// The shard's live table state: swap by replacing the inner `Arc`.
pub type SharedTables = Arc<RwLock<Arc<VersionedTables>>>;

/// Wrap an initial snapshot (generation 0 unless it came from a `DWD1`
/// file) into the shared, swappable state a shard serves from.
pub fn shared_tables(tables: VersionedTables) -> SharedTables {
    Arc::new(RwLock::new(Arc::new(tables)))
}

/// Answer one query against a (shard-local) snapshot. Returns the reply
/// plus the nanoseconds attributed to the lookup and path-walk phases.
pub fn answer(snap: &TableSnapshot, q: &QueryRequest) -> (QueryReply, u64, u64) {
    let t0 = Instant::now();
    let outcome = 'o: {
        if q.src >= snap.n || q.dst >= snap.n {
            break 'o QueryOutcome::OutOfRange;
        }
        let Some(table) = snap.table_for(q.src) else {
            break 'o QueryOutcome::UnknownSource;
        };
        let dist = table.dist[q.dst as usize];
        if dist == INFINITY {
            break 'o QueryOutcome::Unreachable;
        }
        if !q.want_path {
            break 'o QueryOutcome::Dist { dist };
        }
        let lookup_ns = t0.elapsed().as_nanos() as u64;
        let t1 = Instant::now();
        // A finite distance whose parent chain will not walk is a
        // corrupt table; fail the query closed rather than hang or lie.
        let outcome = match table.path_to(q.dst) {
            Some(path) => QueryOutcome::Path { dist, path },
            None => QueryOutcome::Unreachable,
        };
        let walk_ns = t1.elapsed().as_nanos() as u64;
        return (QueryReply { id: q.id, outcome }, lookup_ns, walk_ns);
    };
    (
        QueryReply { id: q.id, outcome },
        t0.elapsed().as_nanos() as u64,
        0,
    )
}

/// Answer a whole batch, preserving query order.
pub fn answer_batch(snap: &TableSnapshot, batch: &QueryBatch) -> ReplyBatch {
    let mut replies = Vec::with_capacity(batch.queries.len());
    let (mut lookup_ns, mut walk_ns) = (0u64, 0u64);
    for q in &batch.queries {
        let (r, l, w) = answer(snap, q);
        replies.push(r);
        lookup_ns += l;
        walk_ns += w;
    }
    ReplyBatch {
        seq: batch.seq,
        replies,
        lookup_ns,
        walk_ns,
    }
}

/// Serve one established connection until EOF, error, or stop.
fn serve_conn(tables: &SharedTables, mut stream: TcpStream, stop: &AtomicBool) -> io::Result<()> {
    stream.set_nodelay(true)?;
    // Wake periodically so a stop request is honored even on an idle
    // connection.
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut scratch = Vec::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        match read_frame::<_, ShardFrame>(&mut stream) {
            Ok(None) => return Ok(()),
            Ok(Some(ShardFrame::Queries(batch))) => {
                // Pin the current generation once for the whole batch:
                // a concurrent install can't mix old and new rows
                // inside one batch, and the pin keeps the old tables
                // alive until the batch is answered.
                let pinned = tables.read().unwrap().clone();
                let reply = answer_batch(&pinned.snap, &batch);
                write_frame(&mut stream, &ShardReply::Replies(reply), &mut scratch)?;
            }
            Ok(Some(ShardFrame::Install { generation, snap })) => {
                let generation = {
                    let mut live = tables.write().unwrap();
                    if generation > live.generation {
                        *live = Arc::new(VersionedTables { generation, snap });
                    }
                    live.generation
                };
                write_frame(
                    &mut stream,
                    &ShardReply::Installed { generation },
                    &mut scratch,
                )?;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Run a shard server on `listener` until `stop` is raised: accept
/// connections (the gateway usually holds exactly one) and serve each
/// on its own thread. All connections share `tables`, so an install on
/// one connection is visible to every other on their next batch.
/// Returns when the accept loop has wound down; connection threads
/// drain on the same stop flag.
pub fn serve_shard(
    listener: TcpListener,
    tables: SharedTables,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                let tables = Arc::clone(&tables);
                let stop = Arc::clone(&stop);
                conns.push(std::thread::spawn(move || {
                    // A connection error (gateway went away) only ends
                    // this connection; the shard keeps accepting.
                    let _ = serve_conn(&tables, stream, &stop);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    for c in conns {
        let _ = c.join();
    }
    Ok(())
}

/// A shard server running on a background thread, for in-process
/// deployments (benches, smoke tests, the loopback path of `dwapsp
/// serve`). Kill it with [`ShardHandle::stop`] — dropping the handle
/// also stops it.
pub struct ShardHandle {
    pub addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl ShardHandle {
    /// Bind a loopback listener and serve `snap` (as generation 0) on a
    /// new thread.
    pub fn spawn(snap: TableSnapshot) -> io::Result<ShardHandle> {
        ShardHandle::spawn_versioned(VersionedTables {
            generation: 0,
            snap,
        })
    }

    /// Bind a loopback listener and serve an already-stamped table set.
    pub fn spawn_versioned(tables: VersionedTables) -> io::Result<ShardHandle> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let shared = shared_tables(tables);
        let thread = std::thread::spawn(move || serve_shard(listener, shared, stop2));
        Ok(ShardHandle {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// Stop serving: raise the flag and join the accept loop. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::SourceTable;
    use dw_congest::WireCodec;

    fn snap() -> TableSnapshot {
        // 0 -> 1 -> 2 (weights 2, 3); node 3 unreachable.
        TableSnapshot {
            n: 4,
            tables: vec![Arc::new(SourceTable {
                source: 0,
                dist: vec![0, 2, 5, INFINITY],
                parent: vec![None, Some(0), Some(1), None],
            })],
        }
    }

    fn send(
        stream: &mut TcpStream,
        scratch: &mut Vec<u8>,
        frame: &ShardFrame,
    ) -> Option<ShardReply> {
        write_frame(stream, frame, scratch).unwrap();
        read_frame(stream).unwrap()
    }

    #[test]
    fn answer_covers_all_outcomes() {
        let s = snap();
        let q = |src, dst, want_path| QueryRequest {
            id: 1,
            src,
            dst,
            want_path,
        };
        assert_eq!(
            answer(&s, &q(0, 2, false)).0.outcome,
            QueryOutcome::Dist { dist: 5 }
        );
        assert_eq!(
            answer(&s, &q(0, 2, true)).0.outcome,
            QueryOutcome::Path {
                dist: 5,
                path: vec![0, 1, 2]
            }
        );
        assert_eq!(
            answer(&s, &q(0, 3, true)).0.outcome,
            QueryOutcome::Unreachable
        );
        assert_eq!(
            answer(&s, &q(1, 0, false)).0.outcome,
            QueryOutcome::UnknownSource
        );
        assert_eq!(
            answer(&s, &q(0, 9, false)).0.outcome,
            QueryOutcome::OutOfRange
        );
    }

    #[test]
    fn shard_serves_batches_over_tcp() {
        let mut h = ShardHandle::spawn(snap()).unwrap();
        let mut stream = TcpStream::connect(h.addr).unwrap();
        let mut scratch = Vec::new();
        let batch = QueryBatch {
            seq: 1,
            queries: vec![
                QueryRequest {
                    id: 10,
                    src: 0,
                    dst: 1,
                    want_path: false,
                },
                QueryRequest {
                    id: 11,
                    src: 0,
                    dst: 2,
                    want_path: true,
                },
            ],
        };
        let Some(ShardReply::Replies(reply)) =
            send(&mut stream, &mut scratch, &ShardFrame::Queries(batch))
        else {
            panic!("expected a reply batch");
        };
        assert_eq!(reply.seq, 1);
        assert_eq!(reply.replies.len(), 2);
        assert_eq!(reply.replies[0].id, 10);
        assert_eq!(reply.replies[0].outcome, QueryOutcome::Dist { dist: 2 });
        assert_eq!(
            reply.replies[1].outcome,
            QueryOutcome::Path {
                dist: 5,
                path: vec![0, 1, 2]
            }
        );
        h.stop();
    }

    #[test]
    fn install_swaps_tables_and_stale_generations_are_ignored() {
        let mut h = ShardHandle::spawn(snap()).unwrap();
        let mut stream = TcpStream::connect(h.addr).unwrap();
        let mut scratch = Vec::new();
        let probe = ShardFrame::Queries(QueryBatch {
            seq: 1,
            queries: vec![QueryRequest {
                id: 1,
                src: 0,
                dst: 1,
                want_path: false,
            }],
        });

        // New tables where 0 -> 1 now costs 9.
        let new_snap = TableSnapshot {
            n: 4,
            tables: vec![Arc::new(SourceTable {
                source: 0,
                dist: vec![0, 9, 12, INFINITY],
                parent: vec![None, Some(0), Some(1), None],
            })],
        };
        let reply = send(
            &mut stream,
            &mut scratch,
            &ShardFrame::Install {
                generation: 3,
                snap: new_snap.clone(),
            },
        );
        assert_eq!(reply, Some(ShardReply::Installed { generation: 3 }));
        let Some(ShardReply::Replies(r)) = send(&mut stream, &mut scratch, &probe) else {
            panic!("expected replies");
        };
        assert_eq!(r.replies[0].outcome, QueryOutcome::Dist { dist: 9 });

        // A stale (or duplicated) install is a no-op; the ack reports
        // the generation actually live so the installer can tell.
        let reply = send(
            &mut stream,
            &mut scratch,
            &ShardFrame::Install {
                generation: 2,
                snap: snap(),
            },
        );
        assert_eq!(reply, Some(ShardReply::Installed { generation: 3 }));
        let Some(ShardReply::Replies(r)) = send(&mut stream, &mut scratch, &probe) else {
            panic!("expected replies");
        };
        assert_eq!(r.replies[0].outcome, QueryOutcome::Dist { dist: 9 });
        h.stop();
    }

    #[test]
    fn install_on_one_connection_is_visible_on_another() {
        let mut h = ShardHandle::spawn(snap()).unwrap();
        let mut a = TcpStream::connect(h.addr).unwrap();
        let mut b = TcpStream::connect(h.addr).unwrap();
        let mut scratch = Vec::new();
        let new_snap = TableSnapshot {
            n: 4,
            tables: vec![Arc::new(SourceTable {
                source: 0,
                dist: vec![0, 7, 10, INFINITY],
                parent: vec![None, Some(0), Some(1), None],
            })],
        };
        let reply = send(
            &mut a,
            &mut scratch,
            &ShardFrame::Install {
                generation: 1,
                snap: new_snap,
            },
        );
        assert_eq!(reply, Some(ShardReply::Installed { generation: 1 }));
        let Some(ShardReply::Replies(r)) = send(
            &mut b,
            &mut scratch,
            &ShardFrame::Queries(QueryBatch {
                seq: 9,
                queries: vec![QueryRequest {
                    id: 2,
                    src: 0,
                    dst: 1,
                    want_path: false,
                }],
            }),
        ) else {
            panic!("expected replies");
        };
        assert_eq!(r.replies[0].outcome, QueryOutcome::Dist { dist: 7 });
        h.stop();
    }

    #[test]
    fn malformed_frame_drops_the_connection_not_the_shard() {
        let mut h = ShardHandle::spawn(snap()).unwrap();
        let mut bad = TcpStream::connect(h.addr).unwrap();
        // A frame whose body the codec rejects.
        let mut junk = Vec::new();
        9u32.encode(&mut junk); // length prefix: 9 bytes
        junk.extend_from_slice(&[0xff; 9]);
        use std::io::Write;
        bad.write_all(&junk).unwrap();
        // The shard must still accept and serve a fresh connection.
        let mut good = TcpStream::connect(h.addr).unwrap();
        let mut scratch = Vec::new();
        let batch = QueryBatch {
            seq: 7,
            queries: vec![QueryRequest {
                id: 1,
                src: 0,
                dst: 1,
                want_path: false,
            }],
        };
        let Some(ShardReply::Replies(reply)) =
            send(&mut good, &mut scratch, &ShardFrame::Queries(batch))
        else {
            panic!("expected replies");
        };
        assert_eq!(reply.replies[0].outcome, QueryOutcome::Dist { dist: 2 });
        h.stop();
    }
}
