//! Golden-file pin of the persisted table encoding: a deterministic
//! workload's `TableSnapshot` must serialize to byte-identical output
//! forever — table files written by one build must stay readable (and
//! re-writable, bit for bit) by every later build, or `TABLE_VERSION`
//! must be bumped. Any codec or layout change shows up here as a
//! readable hex diff. To accept an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p dw-serve --test snapshot_golden
//! ```
//!
//! and commit the rewritten file under `tests/golden/` **together with
//! a `TABLE_VERSION` bump** if previously written files became
//! unreadable.

use dw_graph::gen::{self, WeightDist};
use dw_seqref::dijkstra;
use dw_serve::TableSnapshot;
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {path:?} ({e}); create it with UPDATE_GOLDEN=1")
    });
    assert_eq!(
        expected, actual,
        "golden mismatch for {name}; if intentional, rerun with UPDATE_GOLDEN=1, \
         commit, and bump TABLE_VERSION if old files became unreadable"
    );
}

fn hex_dump(bytes: &[u8]) -> String {
    let mut out = String::new();
    for (i, chunk) in bytes.chunks(16).enumerate() {
        let cells: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        writeln!(out, "{:06x}  {}", i * 16, cells.join(" ")).unwrap();
    }
    out
}

/// The deterministic serving workload: 10-node seeded G(n,p), Dijkstra
/// from 4 sources. Same instance the round-trip below re-reads.
fn sample() -> TableSnapshot {
    let g = gen::gnp(10, 0.35, false, WeightDist::Uniform { max: 9 }, 2024);
    let runs: Vec<_> = [0u32, 3, 4, 8].iter().map(|&s| dijkstra(&g, s)).collect();
    TableSnapshot::from_sssp(&runs, 10)
}

#[test]
fn golden_table_snapshot_bytes() {
    let snap = sample();
    let bytes = snap.to_file_bytes();
    let mut out = String::new();
    writeln!(
        out,
        "table snapshot n={} rows={} payload_bytes={}",
        snap.n,
        snap.tables.len(),
        snap.payload_bytes()
    )
    .unwrap();
    out.push_str(&hex_dump(&bytes));
    check_golden("table_snapshot.hex", &out);

    // The pinned bytes must also round-trip back to the exact snapshot:
    // the golden file certifies the encoding, this certifies the decoder
    // agrees with it.
    assert_eq!(TableSnapshot::from_file_bytes(&bytes), Some(snap));
}
