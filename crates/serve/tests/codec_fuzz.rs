//! Property tests for the serving-plane wire types: whatever bytes a
//! client or gateway peer sends — random garbage, truncated frames,
//! bit-flipped encodings, lying length prefixes — decoding returns a
//! clean verdict, never panics, never allocates from a fabricated
//! length, and never reads past its own frame. The gateway faces
//! untrusted clients, so this boundary is the serving plane's blast
//! door.

use dw_congest::WireCodec;
use dw_serve::table::{SourceTable, TableSnapshot, VersionedTables};
use dw_serve::{
    ApplyReport, ClientReply, ClientRequest, QueryBatch, QueryOutcome, QueryReply, QueryRequest,
    ReplyBatch, ShardFrame, ShardReply,
};
use dw_transport::wire::{read_frame, write_frame, MAX_FRAME_BYTES};
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::Arc;

// The vendored proptest has no `prop_oneof!`, so variant selection is a
// discriminant drawn alongside a bag of field material (same idiom as
// the transport codec fuzz suite).

/// `(discriminant, a, b, path)` → one of the 6 `QueryOutcome` variants.
fn arb_outcome() -> impl Strategy<Value = QueryOutcome> {
    (
        0usize..6,
        any::<u64>(),
        any::<u32>(),
        collection::vec(any::<u32>(), 0..12),
    )
        .prop_map(|(which, a, b, path)| match which {
            0 => QueryOutcome::Dist { dist: a },
            1 => QueryOutcome::Path { dist: a, path },
            2 => QueryOutcome::Unreachable,
            3 => QueryOutcome::UnknownSource,
            4 => QueryOutcome::OutOfRange,
            _ => QueryOutcome::ShardUnavailable {
                shard: b,
                lo: a as u32,
                hi: (a >> 32) as u32,
            },
        })
}

fn arb_request() -> impl Strategy<Value = QueryRequest> {
    (any::<u64>(), any::<u32>(), any::<u32>(), any::<bool>()).prop_map(
        |(id, src, dst, want_path)| QueryRequest {
            id,
            src,
            dst,
            want_path,
        },
    )
}

fn arb_reply() -> impl Strategy<Value = QueryReply> {
    (any::<u64>(), arb_outcome()).prop_map(|(id, outcome)| QueryReply { id, outcome })
}

fn arb_query_batch() -> impl Strategy<Value = QueryBatch> {
    (any::<u64>(), collection::vec(arb_request(), 0..12))
        .prop_map(|(seq, queries)| QueryBatch { seq, queries })
}

fn arb_reply_batch() -> impl Strategy<Value = ReplyBatch> {
    (
        any::<u64>(),
        collection::vec(arb_reply(), 0..12),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(seq, replies, lookup_ns, walk_ns)| ReplyBatch {
            seq,
            replies,
            lookup_ns,
            walk_ns,
        })
}

/// A structurally valid snapshot: every row spans `0..n`, sources
/// strictly increasing.
fn arb_snapshot() -> impl Strategy<Value = TableSnapshot> {
    (1u32..12, collection::vec(any::<u64>(), 0..12), any::<u64>()).prop_map(
        |(n, row_material, seed)| {
            let tables: Vec<Arc<SourceTable>> = (0..n)
                .filter(|s| (seed >> (s % 60)) & 1 == 1)
                .map(|source| {
                    Arc::new(SourceTable {
                        source,
                        dist: (0..n as usize)
                            .map(|v| {
                                row_material
                                    .get(v % row_material.len().max(1))
                                    .copied()
                                    .unwrap_or(u64::MAX)
                            })
                            .collect(),
                        parent: (0..n)
                            .map(|v| (v % 3 == 1).then_some(v.saturating_sub(1)))
                            .collect(),
                    })
                })
                .collect();
            TableSnapshot { n, tables }
        },
    )
}

/// `(discriminant, request, generation, snapshot)` → a `ClientRequest`.
fn arb_client_request() -> impl Strategy<Value = ClientRequest> {
    (0usize..2, arb_request(), any::<u64>(), arb_snapshot()).prop_map(
        |(which, req, generation, snap)| match which {
            0 => ClientRequest::Query(req),
            _ => ClientRequest::ApplyTables { generation, snap },
        },
    )
}

fn arb_client_reply() -> impl Strategy<Value = ClientReply> {
    (
        0usize..2,
        arb_reply(),
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        any::<bool>(),
    )
        .prop_map(
            |(which, reply, generation, installed, down, accepted)| match which {
                0 => ClientReply::Query(reply),
                _ => ClientReply::ApplyDone(ApplyReport {
                    accepted,
                    generation,
                    shards_installed: installed,
                    shards_down: down,
                }),
            },
        )
}

fn arb_shard_frame() -> impl Strategy<Value = ShardFrame> {
    (0usize..2, arb_query_batch(), any::<u64>(), arb_snapshot()).prop_map(
        |(which, qb, generation, snap)| match which {
            0 => ShardFrame::Queries(qb),
            _ => ShardFrame::Install { generation, snap },
        },
    )
}

fn arb_shard_reply() -> impl Strategy<Value = ShardReply> {
    (0usize..2, arb_reply_batch(), any::<u64>()).prop_map(|(which, rb, generation)| match which {
        0 => ShardReply::Replies(rb),
        _ => ShardReply::Installed { generation },
    })
}

proptest! {
    // Arbitrary bytes through the framed reader for every serve frame
    // kind: clean EOF, a valid frame, or an error — never a panic.
    #[test]
    fn framed_decode_never_panics_on_garbage(bytes in collection::vec(any::<u8>(), 0..256)) {
        let mut r = Cursor::new(bytes.clone());
        let _ = read_frame::<_, QueryRequest>(&mut r);
        let mut r = Cursor::new(bytes.clone());
        let _ = read_frame::<_, QueryReply>(&mut r);
        let mut r = Cursor::new(bytes.clone());
        let _ = read_frame::<_, QueryBatch>(&mut r);
        let mut r = Cursor::new(bytes.clone());
        let _ = read_frame::<_, ReplyBatch>(&mut r);
        let mut r = Cursor::new(bytes.clone());
        let _ = read_frame::<_, ClientRequest>(&mut r);
        let mut r = Cursor::new(bytes.clone());
        let _ = read_frame::<_, ClientReply>(&mut r);
        let mut r = Cursor::new(bytes.clone());
        let _ = read_frame::<_, ShardFrame>(&mut r);
        let mut r = Cursor::new(bytes);
        let _ = read_frame::<_, ShardReply>(&mut r);
    }

    // Raw decode on arbitrary bytes never panics and only consumes a
    // prefix of its input (the no-over-read contract).
    #[test]
    fn raw_decode_never_panics_or_over_reads(bytes in collection::vec(any::<u8>(), 0..256)) {
        let mut view = bytes.as_slice();
        let _ = QueryOutcome::decode(&mut view);
        prop_assert!(view.len() <= bytes.len());

        let mut view = bytes.as_slice();
        let _ = ReplyBatch::decode(&mut view);
        prop_assert!(view.len() <= bytes.len());

        let mut view = bytes.as_slice();
        let _ = TableSnapshot::decode(&mut view);
        prop_assert!(view.len() <= bytes.len());

        let mut view = bytes.as_slice();
        let _ = ClientRequest::decode(&mut view);
        prop_assert!(view.len() <= bytes.len());

        let mut view = bytes.as_slice();
        let _ = ShardFrame::decode(&mut view);
        prop_assert!(view.len() <= bytes.len());
    }

    // A persisted table file made of garbage is rejected, not a panic;
    // so is any truncation of a valid file. Same for the versioned
    // (`DWD1`) format and the accept-either entry point.
    #[test]
    fn snapshot_file_parse_is_total(snap in arb_snapshot(), gen in any::<u64>(), cut_seed in any::<u64>(), garbage in collection::vec(any::<u8>(), 0..128)) {
        let _ = TableSnapshot::from_file_bytes(&garbage);
        let _ = VersionedTables::from_file_bytes(&garbage);
        let _ = VersionedTables::from_any_file_bytes(&garbage);
        let bytes = snap.to_file_bytes();
        prop_assert_eq!(TableSnapshot::from_file_bytes(&bytes), Some(snap.clone()));
        let cut = (cut_seed as usize) % bytes.len();
        prop_assert_eq!(TableSnapshot::from_file_bytes(&bytes[..cut]), None);

        let vt = VersionedTables { generation: gen, snap };
        let vbytes = vt.to_file_bytes();
        prop_assert_eq!(VersionedTables::from_file_bytes(&vbytes), Some(vt.clone()));
        prop_assert_eq!(VersionedTables::from_any_file_bytes(&vbytes), Some(vt.clone()));
        let cut = (cut_seed as usize) % vbytes.len();
        prop_assert_eq!(VersionedTables::from_any_file_bytes(&vbytes[..cut]), None);
        // A legacy file through the accept-either gate keeps its payload
        // and loads as generation 0.
        prop_assert_eq!(
            VersionedTables::from_any_file_bytes(&bytes),
            Some(VersionedTables { generation: 0, snap: vt.snap })
        );
    }

    // Every tagged swap-protocol frame survives a framed roundtrip.
    #[test]
    fn swap_frames_roundtrip(req in arb_client_request(), reply in arb_client_reply(), sf in arb_shard_frame(), sr in arb_shard_reply()) {
        let mut scratch = Vec::new();
        let mut buf = Vec::new();
        write_frame(&mut buf, &req, &mut scratch).unwrap();
        let mut r = Cursor::new(buf);
        prop_assert_eq!(read_frame::<_, ClientRequest>(&mut r).unwrap(), Some(req));

        let mut buf = Vec::new();
        write_frame(&mut buf, &reply, &mut scratch).unwrap();
        let mut r = Cursor::new(buf);
        prop_assert_eq!(read_frame::<_, ClientReply>(&mut r).unwrap(), Some(reply));

        let mut buf = Vec::new();
        write_frame(&mut buf, &sf, &mut scratch).unwrap();
        let mut r = Cursor::new(buf);
        prop_assert_eq!(read_frame::<_, ShardFrame>(&mut r).unwrap(), Some(sf));

        let mut buf = Vec::new();
        write_frame(&mut buf, &sr, &mut scratch).unwrap();
        let mut r = Cursor::new(buf);
        prop_assert_eq!(read_frame::<_, ShardReply>(&mut r).unwrap(), Some(sr));
    }

    // Truncating a valid swap frame anywhere strictly inside it is an
    // error or clean EOF, never a phantom success; bit flips never
    // panic.
    #[test]
    fn swap_frames_reject_truncation_and_survive_flips(sf in arb_shard_frame(), cut_seed in any::<u64>(), flip in 1u8..=255) {
        let mut scratch = Vec::new();
        let mut buf = Vec::new();
        write_frame(&mut buf, &sf, &mut scratch).unwrap();
        let full = buf.clone();
        buf.truncate((cut_seed as usize) % buf.len());
        let mut r = Cursor::new(buf);
        if let Ok(Some(_)) = read_frame::<_, ShardFrame>(&mut r) {
            prop_assert!(false, "truncated ShardFrame decoded successfully");
        }
        let mut flipped = full;
        let pos = (cut_seed as usize) % flipped.len();
        flipped[pos] ^= flip;
        let mut r = Cursor::new(flipped);
        let _ = read_frame::<_, ShardFrame>(&mut r);
    }

    // Every query/reply/batch shape survives a framed roundtrip.
    #[test]
    fn query_frames_roundtrip(req in arb_request(), reply in arb_reply(), qb in arb_query_batch(), rb in arb_reply_batch()) {
        let mut scratch = Vec::new();
        let mut buf = Vec::new();
        write_frame(&mut buf, &req, &mut scratch).unwrap();
        let mut r = Cursor::new(buf);
        prop_assert_eq!(read_frame::<_, QueryRequest>(&mut r).unwrap(), Some(req));

        let mut buf = Vec::new();
        write_frame(&mut buf, &reply, &mut scratch).unwrap();
        let mut r = Cursor::new(buf);
        prop_assert_eq!(read_frame::<_, QueryReply>(&mut r).unwrap(), Some(reply));

        let mut buf = Vec::new();
        write_frame(&mut buf, &qb, &mut scratch).unwrap();
        let mut r = Cursor::new(buf);
        prop_assert_eq!(read_frame::<_, QueryBatch>(&mut r).unwrap(), Some(qb));

        let mut buf = Vec::new();
        write_frame(&mut buf, &rb, &mut scratch).unwrap();
        let mut r = Cursor::new(buf);
        prop_assert_eq!(read_frame::<_, ReplyBatch>(&mut r).unwrap(), Some(rb));
        prop_assert_eq!(read_frame::<_, ReplyBatch>(&mut r).unwrap(), None);
    }

    // Truncating a valid batch encoding anywhere strictly inside it is
    // an error or clean EOF, never a phantom success.
    #[test]
    fn truncated_batches_are_rejected(qb in arb_query_batch(), rb in arb_reply_batch(), cut_seed in any::<u64>()) {
        let mut scratch = Vec::new();
        let mut buf = Vec::new();
        write_frame(&mut buf, &qb, &mut scratch).unwrap();
        buf.truncate((cut_seed as usize) % buf.len());
        let mut r = Cursor::new(buf);
        if let Ok(Some(_)) = read_frame::<_, QueryBatch>(&mut r) {
            prop_assert!(false, "truncated QueryBatch decoded successfully");
        }

        let mut buf = Vec::new();
        write_frame(&mut buf, &rb, &mut scratch).unwrap();
        buf.truncate((cut_seed as usize) % buf.len());
        let mut r = Cursor::new(buf);
        if let Ok(Some(_)) = read_frame::<_, ReplyBatch>(&mut r) {
            prop_assert!(false, "truncated ReplyBatch decoded successfully");
        }
    }

    // Flipping any single byte of a valid encoding never panics; the
    // reader returns some clean verdict (possibly a different valid
    // message — there is no checksum — but never a crash).
    #[test]
    fn bit_flipped_frames_never_panic(rb in arb_reply_batch(), pos_seed in any::<u64>(), flip in 1u8..=255) {
        let mut scratch = Vec::new();
        let mut buf = Vec::new();
        write_frame(&mut buf, &rb, &mut scratch).unwrap();
        let pos = (pos_seed as usize) % buf.len();
        buf[pos] ^= flip;
        let mut r = Cursor::new(buf);
        let _ = read_frame::<_, ReplyBatch>(&mut r);
    }

    // A reply batch followed by trailing bytes decodes to exactly
    // itself and leaves the cursor at the frame boundary — the
    // no-over-read property the gateway's seq-matched reads rely on.
    #[test]
    fn decode_stops_at_frame_boundary(rb in arb_reply_batch(), trailer in collection::vec(any::<u8>(), 1..32)) {
        let mut scratch = Vec::new();
        let mut buf = Vec::new();
        write_frame(&mut buf, &rb, &mut scratch).unwrap();
        let frame_len = buf.len();
        buf.extend_from_slice(&trailer);
        let mut r = Cursor::new(buf);
        prop_assert_eq!(read_frame::<_, ReplyBatch>(&mut r).unwrap(), Some(rb));
        prop_assert_eq!(r.position() as usize, frame_len);
    }
}

/// A length prefix claiming more than `MAX_FRAME_BYTES` must be
/// rejected before any allocation, whatever query frame it pretends to
/// carry — an untrusted client cannot demand a multi-gigabyte buffer.
#[test]
fn oversized_length_prefix_is_rejected() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
    buf.extend_from_slice(&[0u8; 64]);
    let mut r = Cursor::new(buf.clone());
    assert!(read_frame::<_, QueryRequest>(&mut r).is_err());
    let mut r = Cursor::new(buf);
    assert!(read_frame::<_, QueryBatch>(&mut r).is_err());
}
