//! Per-node local view of a CSSSP collection.
//!
//! After Step 1 of Algorithm 3 every node locally knows, for each tree
//! `i` (rooted at `sources[i]`): whether it belongs to the tree, its
//! depth, its parent, and its children (parents are learned during the
//! `(2h,k)`-SSP run; children by a one-round notification). This module
//! packages that knowledge for the score/update protocols.

use dw_graph::NodeId;
use dw_pipeline::Csssp;
use std::sync::Arc;

/// Local tree knowledge of one node across all `k` trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeTrees {
    /// `parent[i]`: parent in tree `i` (`None` at the root or outside).
    pub parent: Vec<Option<NodeId>>,
    /// `children[i]`: children in tree `i`.
    pub children: Vec<Vec<NodeId>>,
    /// `depth[i]`: hop depth in tree `i` (`u64::MAX` outside).
    pub depth: Vec<u64>,
}

impl NodeTrees {
    /// Is this node in tree `i`?
    pub fn in_tree(&self, i: usize) -> bool {
        self.depth[i] != u64::MAX
    }
}

/// Shared immutable knowledge: one [`NodeTrees`] per node, plus the tree
/// parameters.
#[derive(Debug, Clone)]
pub struct TreeKnowledge {
    pub sources: Vec<NodeId>,
    pub h: u64,
    pub per_node: Arc<Vec<NodeTrees>>,
}

impl TreeKnowledge {
    /// Extract from a built CSSSP collection.
    pub fn from_csssp(c: &Csssp) -> Self {
        let n = c.n();
        let k = c.k();
        let per_node: Vec<NodeTrees> = (0..n)
            .map(|v| NodeTrees {
                parent: (0..k).map(|i| c.parent[i][v]).collect(),
                children: (0..k).map(|i| c.children[i][v].clone()).collect(),
                depth: (0..k)
                    .map(|i| {
                        if c.in_tree(i, v as NodeId) {
                            c.hops[i][v]
                        } else {
                            u64::MAX
                        }
                    })
                    .collect(),
            })
            .collect();
        TreeKnowledge {
            sources: c.sources.clone(),
            h: c.h,
            per_node: Arc::new(per_node),
        }
    }

    pub fn k(&self) -> usize {
        self.sources.len()
    }

    pub fn n(&self) -> usize {
        self.per_node.len()
    }

    /// The node's view.
    pub fn node(&self, v: NodeId) -> &NodeTrees {
        &self.per_node[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_congest::EngineConfig;
    use dw_graph::gen;
    use dw_pipeline::build_csssp;

    #[test]
    fn knowledge_mirrors_csssp() {
        let g = gen::zero_heavy(12, 0.2, 0.4, 4, true, 2);
        let delta = dw_seqref::max_finite_h_hop_distance(&g, 8).max(1);
        let sources: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let (c, _) = build_csssp(&g, &sources, 4, delta, EngineConfig::default());
        let k = TreeKnowledge::from_csssp(&c);
        assert_eq!(k.k(), g.n());
        assert_eq!(k.n(), g.n());
        for v in g.nodes() {
            for i in 0..k.k() {
                assert_eq!(k.node(v).in_tree(i), c.in_tree(i, v));
                if c.in_tree(i, v) {
                    assert_eq!(k.node(v).depth[i], c.hops[i][v as usize]);
                    assert_eq!(k.node(v).parent[i], c.parent[i][v as usize]);
                }
            }
        }
    }
}
