//! Pipelined initial score computation.
//!
//! The *score* of node `v` in tree `T_x` is the number of depth-`h` leaves
//! in `v`'s subtree of `T_x` (including `v` itself if it sits at depth
//! `h`); the sum over trees counts exactly the h-length root-to-leaf paths
//! through `v`. Scores are aggregated leaves-up per tree; messages for
//! different trees pipeline over the (per-tree) parent links with per-link
//! FIFO queues, the timestamp-pipelining idea the paper borrows from \[12\]
//! (each node emits at most one message per tree, so each link carries at
//! most `k` messages and the whole aggregation completes in `O(k + h)`
//! rounds — measured by experiment E6).

use crate::knowledge::TreeKnowledge;
use dw_congest::{
    EngineConfig, Envelope, MsgSize, Network, NodeCtx, Outbox, Protocol, Round, RunStats,
};
use dw_graph::{NodeId, WGraph};
use std::collections::{HashMap, VecDeque};

/// `(tree index, subtree leaf count)` — 2 words.
#[derive(Debug, Clone, Copy)]
struct ScoreMsg {
    tree: u32,
    count: u64,
}

impl MsgSize for ScoreMsg {
    fn size_words(&self) -> usize {
        2
    }
}

struct ScoreNode {
    knowledge: TreeKnowledge,
    /// Children yet to report, per tree.
    pending: Vec<usize>,
    /// Accumulated subtree leaf count per tree (starts with the node's own
    /// depth-h contribution).
    score: Vec<u64>,
    /// Per-parent-link FIFO of ready reports.
    queues: HashMap<NodeId, VecDeque<ScoreMsg>>,
    /// Whether the report for tree i has been enqueued.
    reported: Vec<bool>,
}

impl ScoreNode {
    fn try_report(&mut self, v: NodeId, i: usize) {
        if self.reported[i] || self.pending[i] > 0 {
            return;
        }
        let nt = self.knowledge.node(v);
        if !nt.in_tree(i) {
            return;
        }
        self.reported[i] = true;
        if let Some(p) = nt.parent[i] {
            self.queues.entry(p).or_default().push_back(ScoreMsg {
                tree: i as u32,
                count: self.score[i],
            });
        }
    }
}

impl Protocol for ScoreNode {
    type Msg = ScoreMsg;

    fn init(&mut self, ctx: &NodeCtx) {
        let k = self.knowledge.k();
        let h = self.knowledge.h;
        let nt = self.knowledge.node(ctx.id);
        for i in 0..k {
            self.pending[i] = nt.children[i].len();
            self.score[i] = u64::from(nt.depth[i] == h);
        }
        for i in 0..k {
            self.try_report(ctx.id, i);
        }
    }

    fn send(&mut self, _round: Round, _ctx: &NodeCtx, out: &mut Outbox<ScoreMsg>) {
        // one queued report per parent link per round
        let mut parents: Vec<NodeId> = self
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&p, _)| p)
            .collect();
        parents.sort_unstable(); // determinism
        for p in parents {
            if let Some(m) = self.queues.get_mut(&p).and_then(|q| q.pop_front()) {
                out.unicast(p, m);
            }
        }
    }

    fn receive(&mut self, _round: Round, inbox: &[Envelope<ScoreMsg>], ctx: &NodeCtx) {
        for env in inbox {
            let i = env.msg().tree as usize;
            self.score[i] += env.msg().count;
            self.pending[i] -= 1;
            self.try_report(ctx.id, i);
        }
    }

    fn earliest_send(&self, after: Round, _ctx: &NodeCtx) -> Option<Round> {
        if self.queues.values().any(|q| !q.is_empty()) {
            Some(after)
        } else {
            None
        }
    }
}

/// Compute initial scores for every node and tree. Returns
/// `scores[v][i]` = number of depth-`h` leaves of tree `i` in `v`'s
/// subtree, plus run stats.
pub fn compute_initial_scores(
    g: &WGraph,
    knowledge: &TreeKnowledge,
    engine: EngineConfig,
) -> (Vec<Vec<u64>>, RunStats) {
    let k = knowledge.k();
    let mut net = Network::new(g, engine, |_| ScoreNode {
        knowledge: knowledge.clone(),
        pending: vec![0; k],
        score: vec![0; k],
        queues: HashMap::new(),
        reported: vec![false; k],
    });
    // every node emits ≤ k reports; dilation ≤ h; generous budget
    net.run((k as u64 + knowledge.h + 2) * 4 + g.n() as u64);
    let stats = net.stats();
    let scores = net.into_nodes().into_iter().map(|nd| nd.score).collect();
    (scores, stats)
}

/// Centralized reference for tests: count depth-h leaves per subtree.
pub fn reference_scores(knowledge: &TreeKnowledge) -> Vec<Vec<u64>> {
    let n = knowledge.n();
    let k = knowledge.k();
    let h = knowledge.h;
    let mut scores = vec![vec![0u64; k]; n];
    #[allow(clippy::needless_range_loop)]
    for i in 0..k {
        // process nodes in decreasing depth
        let mut order: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| knowledge.node(v).in_tree(i))
            .collect();
        order.sort_by_key(|&v| std::cmp::Reverse(knowledge.node(v).depth[i]));
        for v in order {
            let mut s = u64::from(knowledge.node(v).depth[i] == h);
            for &c in &knowledge.node(v).children[i] {
                s += scores[c as usize][i];
            }
            scores[v as usize][i] = s;
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_graph::gen;
    use dw_pipeline::build_csssp;

    fn setup(n: usize, h: u64, seed: u64) -> (dw_graph::WGraph, TreeKnowledge) {
        let g = gen::zero_heavy(n, 0.18, 0.4, 4, true, seed);
        let delta = dw_seqref::max_finite_h_hop_distance(&g, 2 * h as usize).max(1);
        let sources: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let (c, _) = build_csssp(&g, &sources, h, delta, EngineConfig::default());
        (g.clone(), TreeKnowledge::from_csssp(&c))
    }

    #[test]
    fn distributed_scores_match_reference() {
        let (g, know) = setup(14, 3, 4);
        let (scores, stats) = compute_initial_scores(&g, &know, EngineConfig::default());
        assert_eq!(scores, reference_scores(&know));
        assert!(stats.messages > 0);
    }

    #[test]
    fn root_score_counts_h_paths() {
        let (g, know) = setup(12, 2, 9);
        let (scores, _) = compute_initial_scores(&g, &know, EngineConfig::default());
        for (i, &s) in know.sources.iter().enumerate() {
            let leaves = (0..g.n() as NodeId)
                .filter(|&v| know.node(v).depth[i] == know.h)
                .count() as u64;
            assert_eq!(scores[s as usize][i], leaves, "tree {i}");
        }
    }

    #[test]
    fn pipelining_rounds_linear_in_k_plus_h() {
        let (g, know) = setup(16, 3, 11);
        let (_, stats) = compute_initial_scores(&g, &know, EngineConfig::default());
        let bound = 3 * (know.k() as u64 + know.h + 2);
        assert!(
            stats.rounds <= bound,
            "rounds {} exceed pipelining bound {bound}",
            stats.rounds
        );
    }
}
