//! Score updates after a blocker node `c` is chosen.
//!
//! * **Ancestor updates** (\[3\], reused here): in every tree where `c` has
//!   a positive score, each ancestor of `c` subtracts `c`'s score for that
//!   tree. Messages climb the per-tree parent links with per-link FIFOs
//!   (the in-tree property of Lemma III.7 keeps paths consistent).
//! * **Descendant updates — Algorithm 4 of the paper**: `c` pipelines one
//!   tree-id per round down its subtrees; every descendant zeroes its
//!   score for that tree and forwards one round later. CSSSP consistency
//!   (Lemma III.6) guarantees each node receives at most one message per
//!   round, so the whole update needs `k + h - 1` rounds (Lemma III.8) —
//!   and the engine's link-capacity checks would catch any violation.

use crate::knowledge::TreeKnowledge;
use dw_congest::{
    EngineConfig, Envelope, MsgSize, Network, NodeCtx, Outbox, Protocol, Round, RunStats,
};
use dw_graph::{NodeId, WGraph};
use std::collections::{HashMap, VecDeque};

/// `(tree index, score delta)` — 2 words.
#[derive(Debug, Clone, Copy)]
struct AncMsg {
    tree: u32,
    delta: u64,
}

impl MsgSize for AncMsg {
    fn size_words(&self) -> usize {
        2
    }
}

struct AncestorNode {
    knowledge: TreeKnowledge,
    c: NodeId,
    scores: Vec<u64>,
    queues: HashMap<NodeId, VecDeque<AncMsg>>,
}

impl AncestorNode {
    fn forward(&mut self, v: NodeId, tree: u32, delta: u64) {
        if let Some(p) = self.knowledge.node(v).parent[tree as usize] {
            self.queues
                .entry(p)
                .or_default()
                .push_back(AncMsg { tree, delta });
        }
    }
}

impl Protocol for AncestorNode {
    type Msg = AncMsg;

    fn init(&mut self, ctx: &NodeCtx) {
        if ctx.id == self.c {
            for i in 0..self.knowledge.k() {
                if self.scores[i] > 0 && self.knowledge.node(ctx.id).in_tree(i) {
                    let delta = self.scores[i];
                    self.forward(ctx.id, i as u32, delta);
                }
            }
        }
    }

    fn send(&mut self, _round: Round, _ctx: &NodeCtx, out: &mut Outbox<AncMsg>) {
        let mut parents: Vec<NodeId> = self
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&p, _)| p)
            .collect();
        parents.sort_unstable();
        for p in parents {
            if let Some(m) = self.queues.get_mut(&p).and_then(|q| q.pop_front()) {
                out.unicast(p, m);
            }
        }
    }

    fn receive(&mut self, _round: Round, inbox: &[Envelope<AncMsg>], ctx: &NodeCtx) {
        for env in inbox {
            let i = env.msg().tree as usize;
            self.scores[i] = self.scores[i]
                .checked_sub(env.msg().delta)
                .expect("ancestor update underflow: score bookkeeping bug");
            self.forward(ctx.id, env.msg().tree, env.msg().delta);
        }
    }

    fn earliest_send(&self, after: Round, _ctx: &NodeCtx) -> Option<Round> {
        if self.queues.values().any(|q| !q.is_empty()) {
            Some(after)
        } else {
            None
        }
    }
}

/// Subtract `c`'s scores from all its ancestors, in all trees. `scores`
/// is the full score table (`scores[v][i]`), updated in place.
pub fn ancestor_updates(
    g: &WGraph,
    knowledge: &TreeKnowledge,
    c: NodeId,
    scores: &mut [Vec<u64>],
    engine: EngineConfig,
) -> RunStats {
    let mut net = Network::new(g, engine, |v| AncestorNode {
        knowledge: knowledge.clone(),
        c,
        scores: scores[v as usize].clone(),
        queues: HashMap::new(),
    });
    net.run(2 * (knowledge.k() as u64 + knowledge.h + 2) + g.n() as u64);
    let stats = net.stats();
    for (v, node) in net.into_nodes().into_iter().enumerate() {
        scores[v] = node.scores;
    }
    stats
}

/// Tree-id payload of Algorithm 4 — 1 word.
#[derive(Debug, Clone, Copy)]
struct DescMsg {
    tree: u32,
}

impl MsgSize for DescMsg {
    fn size_words(&self) -> usize {
        1
    }
}

struct DescendantNode {
    knowledge: TreeKnowledge,
    c: NodeId,
    scores: Vec<u64>,
    /// At `c`: the pipelined list of tree ids (Algorithm 4's `list_c`).
    list: VecDeque<u32>,
    /// Per-child-link FIFO of tree ids to forward. With a perfectly
    /// consistent CSSSP collection (Lemma III.6) every queue holds at most
    /// one element and this degenerates to Algorithm 4's literal
    /// "forward next round"; the queues make the protocol robust to the
    /// rare hop-boundary inconsistencies measured by experiment E4b.
    queues: HashMap<NodeId, VecDeque<DescMsg>>,
    /// Diagnostic: max messages received in one round (Lemma III.6 says 1).
    pub max_inbox: usize,
}

impl DescendantNode {
    fn enqueue_children(&mut self, v: NodeId, tree: u32) {
        let children = self.knowledge.node(v).children[tree as usize].clone();
        for ch in children {
            self.queues
                .entry(ch)
                .or_default()
                .push_back(DescMsg { tree });
        }
    }
}

impl Protocol for DescendantNode {
    type Msg = DescMsg;

    /// Local step at `c` (Algorithm 4 line 1): build `list_c` from trees
    /// with nonzero score, then zero out all own scores.
    fn init(&mut self, ctx: &NodeCtx) {
        if ctx.id == self.c {
            for i in 0..self.knowledge.k() {
                if self.scores[i] != 0 && self.knowledge.node(ctx.id).in_tree(i) {
                    self.list.push_back(i as u32);
                }
                self.scores[i] = 0;
            }
        }
    }

    fn send(&mut self, _round: Round, ctx: &NodeCtx, out: &mut Outbox<DescMsg>) {
        // c injects the next list entry (line 2)...
        if ctx.id == self.c {
            if let Some(i) = self.list.pop_front() {
                self.enqueue_children(ctx.id, i);
            }
        }
        // ...and everyone drains one message per child link (lines 3-4).
        let mut targets: Vec<NodeId> = self
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&t, _)| t)
            .collect();
        targets.sort_unstable();
        for t in targets {
            if let Some(m) = self.queues.get_mut(&t).and_then(|q| q.pop_front()) {
                out.unicast(t, m);
            }
        }
    }

    fn receive(&mut self, _round: Round, inbox: &[Envelope<DescMsg>], ctx: &NodeCtx) {
        self.max_inbox = self.max_inbox.max(inbox.len());
        for env in inbox {
            let i = env.msg().tree as usize;
            // lines 5-6: zero the score; forward next round
            self.scores[i] = 0;
            self.enqueue_children(ctx.id, env.msg().tree);
        }
    }

    fn earliest_send(&self, after: Round, _ctx: &NodeCtx) -> Option<Round> {
        if self.list.is_empty() && self.queues.values().all(|q| q.is_empty()) {
            None
        } else {
            Some(after)
        }
    }
}

/// Outcome diagnostics of one Algorithm 4 run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescendantOutcome {
    pub stats: RunStats,
    /// Largest per-round inbox any node saw (Lemma III.6 ⇒ 1).
    pub max_inbox: usize,
}

/// Algorithm 4: zero the scores of all descendants of `c` (and of `c`
/// itself), pipelined over trees. `k + h - 1` rounds (Lemma III.8).
pub fn descendant_updates(
    g: &WGraph,
    knowledge: &TreeKnowledge,
    c: NodeId,
    scores: &mut [Vec<u64>],
    engine: EngineConfig,
) -> DescendantOutcome {
    let mut net = Network::new(g, engine, |v| DescendantNode {
        knowledge: knowledge.clone(),
        c,
        scores: scores[v as usize].clone(),
        list: VecDeque::new(),
        queues: HashMap::new(),
        max_inbox: 0,
    });
    net.run(knowledge.k() as u64 + knowledge.h + 2);
    let stats = net.stats();
    let mut max_inbox = 0;
    for (v, node) in net.into_nodes().into_iter().enumerate() {
        max_inbox = max_inbox.max(node.max_inbox);
        scores[v] = node.scores;
    }
    DescendantOutcome { stats, max_inbox }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scores::{compute_initial_scores, reference_scores};
    use dw_graph::gen;
    use dw_pipeline::build_csssp;

    fn setup(n: usize, h: u64, seed: u64) -> (WGraph, TreeKnowledge, Vec<Vec<u64>>) {
        let g = gen::zero_heavy(n, 0.18, 0.4, 4, true, seed);
        let delta = dw_seqref::max_finite_h_hop_distance(&g, 2 * h as usize).max(1);
        let sources: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let (c, _) = build_csssp(&g, &sources, h, delta, EngineConfig::default());
        let know = TreeKnowledge::from_csssp(&c);
        let (scores, _) = compute_initial_scores(&g, &know, EngineConfig::default());
        (g.clone(), know, scores)
    }

    /// Centralized reference of both updates for cross-checking.
    fn reference_after_pick(know: &TreeKnowledge, scores: &[Vec<u64>], c: NodeId) -> Vec<Vec<u64>> {
        let mut out = scores.to_vec();
        for i in 0..know.k() {
            if !know.node(c).in_tree(i) {
                continue;
            }
            let sc = scores[c as usize][i];
            if sc > 0 {
                // ancestors: walk c's parent chain
                let mut cur = c;
                while let Some(p) = know.node(cur).parent[i] {
                    out[p as usize][i] -= sc;
                    cur = p;
                }
                // descendants (incl. c): zero everything in c's subtree
                let mut stack = vec![c];
                while let Some(u) = stack.pop() {
                    out[u as usize][i] = 0;
                    stack.extend(know.node(u).children[i].iter().copied());
                }
            }
            out[c as usize][i] = 0;
        }
        out
    }

    #[test]
    fn updates_match_reference() {
        let (g, know, scores) = setup(14, 3, 6);
        // pick the max-score node like the greedy loop would
        let totals: Vec<u64> = scores.iter().map(|r| r.iter().sum()).collect();
        let c = (0..g.n() as NodeId)
            .max_by_key(|&v| (totals[v as usize], std::cmp::Reverse(v)))
            .unwrap();
        let expect = reference_after_pick(&know, &scores, c);

        let mut got = scores.clone();
        ancestor_updates(&g, &know, c, &mut got, EngineConfig::default());
        let desc = descendant_updates(&g, &know, c, &mut got, EngineConfig::default());
        assert_eq!(got, expect);
        assert!(desc.max_inbox <= 1, "Lemma III.6: one message per round");
    }

    #[test]
    fn algorithm4_round_bound() {
        let (g, know, scores) = setup(16, 3, 8);
        let totals: Vec<u64> = scores.iter().map(|r| r.iter().sum()).collect();
        let c = (0..g.n() as NodeId)
            .max_by_key(|&v| (totals[v as usize], std::cmp::Reverse(v)))
            .unwrap();
        let mut work = scores.clone();
        ancestor_updates(&g, &know, c, &mut work, EngineConfig::default());
        let desc = descendant_updates(&g, &know, c, &mut work, EngineConfig::default());
        assert!(
            desc.stats.rounds <= know.k() as u64 + know.h,
            "Lemma III.8: {} > k+h-1",
            desc.stats.rounds
        );
    }

    #[test]
    fn scores_stay_consistent_reference() {
        // sanity: reference_scores and compute_initial_scores agree (the
        // scores module tests this too; here we guard the setup path)
        let (_, know, scores) = setup(12, 2, 10);
        assert_eq!(scores, reference_scores(&know));
    }
}
