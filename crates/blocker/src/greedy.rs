//! The greedy blocker-set selection loop (Section III-B).
//!
//! Repeat until every h-length root-to-leaf path is covered: find the node
//! with maximum total score (convergecast over a BFS spanning tree),
//! announce it (broadcast), then run the ancestor and descendant
//! (Algorithm 4) score updates. The greedy set-cover argument gives
//! `|Q| = O((n log n)/h)` because each h-length path has `h+1` nodes, so a
//! fractional cover of size `n/h` always exists.

use crate::knowledge::TreeKnowledge;
use crate::scores::compute_initial_scores;
use crate::update::{ancestor_updates, descendant_updates};
use dw_congest::primitives::{build_bfs_tree, converge_max, pipeline_broadcast};
use dw_congest::{EngineConfig, NullRecorder, Recorder, RunStats};
use dw_graph::{NodeId, WGraph};

/// Result of the blocker-set computation.
#[derive(Debug, Clone)]
pub struct BlockerOutcome {
    /// The blocker set `Q`, in selection order.
    pub blockers: Vec<NodeId>,
    /// Composed rounds/messages across every distributed phase.
    pub stats: RunStats,
    /// Rounds spent in the initial score aggregation alone.
    pub score_rounds: u64,
    /// Largest single-round inbox seen by Algorithm 4 (Lemma III.6 ⇒ 1).
    pub alg4_max_inbox: usize,
    /// Max rounds of any single Algorithm 4 invocation (Lemma III.8 ⇒
    /// `<= k + h - 1`).
    pub alg4_max_rounds: u64,
    /// Final score table (all zeros on success).
    pub final_scores: Vec<Vec<u64>>,
}

/// Compute a blocker set for the CSSSP collection described by
/// `knowledge`.
pub fn find_blocker_set(
    g: &WGraph,
    knowledge: &TreeKnowledge,
    engine: EngineConfig,
) -> BlockerOutcome {
    find_blocker_set_recorded(g, knowledge, engine, &mut NullRecorder)
}

/// As [`find_blocker_set`], recording phase spans: `blocker_scores`
/// (initial score aggregation + BFS spanning tree), one
/// `blocker_select` per greedy iteration (the converge-max plus the
/// announcement broadcast — including the final probe that finds no
/// positive score), one `alg4_update` per selection (ancestor +
/// descendant score updates), and a `blocker.selected` counter.
pub fn find_blocker_set_recorded(
    g: &WGraph,
    knowledge: &TreeKnowledge,
    engine: EngineConfig,
    rec: &mut dyn Recorder,
) -> BlockerOutcome {
    let span = rec.begin("blocker_scores");
    let (mut scores, score_stats) = compute_initial_scores(g, knowledge, engine.clone());
    let mut stats = score_stats.clone();
    let (bfs, bfs_stats) = build_bfs_tree(g, 0, engine.clone());
    stats = stats.then(&bfs_stats);
    rec.end(span, &stats);

    let mut blockers = Vec::new();
    let mut alg4_max_inbox = 0;
    let mut alg4_max_rounds = 0;
    loop {
        let totals: Vec<u64> = scores.iter().map(|row| row.iter().sum()).collect();
        let span = rec.begin("blocker_select");
        let ((best, c), cc_stats) = converge_max(g, &bfs, &totals, engine.clone());
        let mut select_stats = cc_stats;
        if best == 0 {
            rec.end(span, &select_stats);
            stats = stats.then(&select_stats);
            break;
        }
        // announce the chosen blocker to every node
        let (_, bc_stats) = pipeline_broadcast(g, &bfs, vec![c as u64], engine.clone());
        select_stats = select_stats.then(&bc_stats);
        rec.end(span, &select_stats);
        stats = stats.then(&select_stats);
        blockers.push(c);
        rec.counter("blocker.selected", 1);

        let span = rec.begin("alg4_update");
        let anc_stats = ancestor_updates(g, knowledge, c, &mut scores, engine.clone());
        let desc = descendant_updates(g, knowledge, c, &mut scores, engine.clone());
        alg4_max_inbox = alg4_max_inbox.max(desc.max_inbox);
        alg4_max_rounds = alg4_max_rounds.max(desc.stats.rounds);
        let update_stats = anc_stats.then(&desc.stats);
        rec.end(span, &update_stats);
        stats = stats.then(&update_stats);
    }

    BlockerOutcome {
        blockers,
        stats,
        score_rounds: score_stats.rounds,
        alg4_max_inbox,
        alg4_max_rounds,
        final_scores: scores,
    }
}

/// Verify Definition III.1 centrally: every depth-h node's root path in
/// every tree contains a blocker.
pub fn verify_blocker_coverage(
    knowledge: &TreeKnowledge,
    blockers: &[NodeId],
) -> Result<(), String> {
    let in_q: std::collections::HashSet<NodeId> = blockers.iter().copied().collect();
    for i in 0..knowledge.k() {
        for v in 0..knowledge.n() as NodeId {
            if knowledge.node(v).depth[i] != knowledge.h {
                continue;
            }
            // walk the root path; some node must be in Q
            let mut cur = v;
            let mut covered = in_q.contains(&cur);
            while let Some(p) = knowledge.node(cur).parent[i] {
                cur = p;
                covered |= in_q.contains(&cur);
            }
            if !covered {
                return Err(format!(
                    "h-path to {v} in tree {} (source {}) uncovered",
                    i, knowledge.sources[i]
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_graph::gen;
    use dw_pipeline::build_csssp;

    fn setup(n: usize, h: u64, seed: u64) -> (WGraph, TreeKnowledge) {
        let g = gen::zero_heavy(n, 0.18, 0.4, 4, true, seed);
        let delta = dw_seqref::max_finite_h_hop_distance(&g, 2 * h as usize).max(1);
        let sources: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let (c, _) = build_csssp(&g, &sources, h, delta, EngineConfig::default());
        (g.clone(), TreeKnowledge::from_csssp(&c))
    }

    #[test]
    fn blocker_set_covers_all_h_paths() {
        let (g, know) = setup(16, 3, 5);
        let out = find_blocker_set(&g, &know, EngineConfig::default());
        verify_blocker_coverage(&know, &out.blockers).unwrap();
        assert!(out.final_scores.iter().flatten().all(|&s| s == 0));
        assert!(out.alg4_max_inbox <= 1);
        assert!(out.alg4_max_rounds <= know.k() as u64 + know.h);
    }

    #[test]
    fn empty_when_no_deep_paths() {
        // h larger than any tree height: nothing to cover
        let (g, know) = setup(10, 9, 7);
        let deep = (0..know.k())
            .flat_map(|i| (0..know.n() as NodeId).map(move |v| (i, v)))
            .filter(|&(i, v)| know.node(v).depth[i] == know.h)
            .count();
        let out = find_blocker_set(&g, &know, EngineConfig::default());
        if deep == 0 {
            assert!(out.blockers.is_empty());
        } else {
            verify_blocker_coverage(&know, &out.blockers).unwrap();
        }
    }

    #[test]
    fn greedy_size_within_set_cover_bound() {
        let (g, know) = setup(18, 3, 11);
        let out = find_blocker_set(&g, &know, EngineConfig::default());
        verify_blocker_coverage(&know, &out.blockers).unwrap();
        // generous O((n ln(nk))/h) sanity bound
        let n = g.n() as f64;
        let k = know.k() as f64;
        let bound = (n / know.h as f64) * ((n * k).ln() + 1.0) + 1.0;
        assert!(
            (out.blockers.len() as f64) <= bound,
            "|Q| = {} exceeds {bound}",
            out.blockers.len()
        );
    }
}
