//! The blocker-set machinery of Section III and the overall **Algorithm 3**
//! (k-SSP / APSP via CSSSP + blocker set).
//!
//! A *blocker set* `Q` for a collection of rooted h-hop trees is a set of
//! vertices hitting every root-to-leaf path of length `h`
//! (Definition III.1). Algorithm 3 computes k-SSP as:
//!
//! 1. build an h-hop CSSSP collection (consistent trees, `dw-pipeline`);
//! 2. greedily pick blocker nodes by maximum *score* (= number of
//!    uncovered depth-h leaves in the node's subtrees), maintaining scores
//!    distributedly: pipelined initial score aggregation, pipelined
//!    ancestor updates, and the pipelined descendant zeroing of
//!    **Algorithm 4** (Lemma III.8: `k + h - 1` rounds);
//! 3. compute an exact SSSP tree from every blocker (Bellman–Ford);
//! 4. broadcast each blocker's h-hop distances from the `k` sources;
//! 5. combine locally: `δ(x,v) = min(δ_h(x,v), min_c δ_h(x,c) + δ(c,v))`.
//!
//! Every phase is a real protocol on the CONGEST engine; the returned
//! statistics compose the phases' rounds (experiments E6/E7/E9).

pub mod alg3;
pub mod greedy;
pub mod knowledge;
pub mod random;
pub mod scores;
pub mod update;

pub use alg3::{alg3_apsp, alg3_apsp_recorded, alg3_k_ssp, alg3_k_ssp_recorded, Alg3Outcome};
pub use greedy::{
    find_blocker_set, find_blocker_set_recorded, verify_blocker_coverage, BlockerOutcome,
};
pub use knowledge::TreeKnowledge;
pub use random::{random_blocker_set, RandomBlockerOutcome};
pub use scores::compute_initial_scores;
