//! Randomized blocker-set baseline: uniform sampling.
//!
//! The classical alternative to the greedy algorithm (mentioned alongside
//! the blocker technique in \[3\], \[14\]): sample each node independently
//! with probability `p = min(1, c·ln(N+1)/(h+1))` where `N = n·k` bounds
//! the number of h-length root-to-leaf paths. Each such path has `h+1`
//! nodes, so it is left uncovered with probability
//! `(1-p)^{h+1} <= e^{-c·ln(N+1)} = (N+1)^{-c}`; a union bound over at
//! most `N` paths makes full coverage hold w.h.p. for `c > 1`.
//!
//! Sampling is entirely local (zero communication rounds!). The price is
//! the **size**: `E[|Q|] = p·n ≈ (c·n·ln N)/h` versus greedy's
//! instance-adaptive set, which can be far smaller (experiment E12). A
//! larger `Q` is paid downstream: Algorithm 3's Steps 3–4 cost
//! `O(n)` rounds *per blocker*.
//!
//! If a sample misses some path, the driver doubles `c` and retries
//! (coverage is verified centrally here; distributedly it is an
//! `O(k + h)`-round check along the trees).

use crate::greedy::verify_blocker_coverage;
use crate::knowledge::TreeKnowledge;
use dw_graph::NodeId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Outcome of the sampling baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomBlockerOutcome {
    pub blockers: Vec<NodeId>,
    /// The constant `c` that first achieved coverage.
    pub c_used: f64,
    /// Sampling attempts (retries double `c`).
    pub attempts: u32,
    /// Sampling probability of the successful attempt.
    pub p: f64,
}

/// Sample a blocker set for the collection in `knowledge`.
pub fn random_blocker_set(knowledge: &TreeKnowledge, seed: u64) -> RandomBlockerOutcome {
    let n = knowledge.n();
    let k = knowledge.k();
    let h = knowledge.h;
    let big_n = (n * k) as f64;
    let mut c = 1.5f64;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut attempts = 0;
    loop {
        attempts += 1;
        let p = (c * (big_n + 1.0).ln() / (h as f64 + 1.0)).min(1.0);
        let blockers: Vec<NodeId> = (0..n as NodeId).filter(|_| rng.gen_bool(p)).collect();
        if verify_blocker_coverage(knowledge, &blockers).is_ok() {
            return RandomBlockerOutcome {
                blockers,
                c_used: c,
                attempts,
                p,
            };
        }
        c *= 2.0;
        assert!(c < 1e6, "sampling cannot cover: malformed tree collection");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_congest::EngineConfig;
    use dw_graph::gen;
    use dw_pipeline::build_csssp;

    fn knowledge(n: usize, h: u64, seed: u64) -> TreeKnowledge {
        let g = gen::zero_heavy(n, 0.18, 0.4, 5, true, seed);
        let delta = dw_seqref::max_finite_h_hop_distance(&g, 2 * h as usize).max(1);
        let sources: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let (c, _) = build_csssp(&g, &sources, h, delta, EngineConfig::default());
        TreeKnowledge::from_csssp(&c)
    }

    #[test]
    fn sampled_set_covers() {
        let know = knowledge(18, 3, 4);
        let out = random_blocker_set(&know, 99);
        verify_blocker_coverage(&know, &out.blockers).unwrap();
        assert!(out.p > 0.0 && out.p <= 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let know = knowledge(14, 2, 7);
        assert_eq!(random_blocker_set(&know, 3), random_blocker_set(&know, 3));
    }

    #[test]
    fn usually_larger_than_greedy() {
        let know = knowledge(20, 3, 11);
        let g = gen::zero_heavy(20, 0.18, 0.4, 5, true, 11);
        let greedy = crate::greedy::find_blocker_set(&g, &know, EngineConfig::default());
        let sampled = random_blocker_set(&know, 5);
        // not a theorem, but with h=3 and ln(nk) ≈ 6 the sampling rate is
        // high; allow equality to avoid flakes
        assert!(sampled.blockers.len() >= greedy.blockers.len());
    }
}
