//! Algorithm 3: the overall k-SSP / APSP algorithm
//! (CSSSP → blocker set → per-blocker SSSP → broadcast → local combine).

use crate::greedy::{find_blocker_set_recorded, BlockerOutcome};
use crate::knowledge::TreeKnowledge;
use dw_baselines::bf_k_source;
use dw_congest::primitives::{build_bfs_tree, pipeline_broadcast};
use dw_congest::{EngineConfig, MsgSize, NullRecorder, Recorder, RunStats};
use dw_graph::{NodeId, WGraph, Weight, INFINITY};
use dw_pipeline::build_csssp_recorded;
use dw_seqref::DistMatrix;

/// `(source index, δ_h(source, c))` broadcast payload — 2 words.
#[derive(Debug, Clone, Copy)]
struct DistItem {
    src_idx: u32,
    d: Weight,
}

impl MsgSize for DistItem {
    fn size_words(&self) -> usize {
        2
    }
}

/// Everything Algorithm 3 produces.
#[derive(Debug, Clone)]
pub struct Alg3Outcome {
    /// Exact distances from the `k` sources.
    pub matrix: DistMatrix,
    /// The blocker set used.
    pub blockers: Vec<NodeId>,
    /// Composed statistics, plus the per-step round split.
    pub stats: RunStats,
    pub step1_rounds: u64,
    pub step2_rounds: u64,
    pub step3_rounds: u64,
    pub step4_rounds: u64,
    /// Blocker diagnostics (Algorithm 4 bounds etc.).
    pub blocker: BlockerOutcome,
}

/// Run Algorithm 3 for the given sources and hop parameter `h`. `delta`
/// must bound the `2h`-hop distances (Step 1 runs Algorithm 1 with hop
/// bound `2h` to build the CSSSP collection).
pub fn alg3_k_ssp(
    g: &WGraph,
    sources: &[NodeId],
    h: u64,
    delta: Weight,
    engine: EngineConfig,
) -> Alg3Outcome {
    alg3_k_ssp_recorded(g, sources, h, delta, engine, &mut NullRecorder)
}

/// As [`alg3_k_ssp`], recording the full phase decomposition on `rec`:
/// `csssp` (with `hk_2h`/`validate` children), the blocker-selection
/// spans (see `find_blocker_set_recorded`), one `per_blocker_sssp` per
/// blocker, one `broadcast` per blocker, and a final zero-round
/// `combine` for the local Step 5. Top-level span stats compose (via
/// `RunStats::then`) exactly to [`Alg3Outcome::stats`] — the property
/// the `prop_obs` suite in `dwapsp` checks.
pub fn alg3_k_ssp_recorded(
    g: &WGraph,
    sources: &[NodeId],
    h: u64,
    delta: Weight,
    engine: EngineConfig,
    rec: &mut dyn Recorder,
) -> Alg3Outcome {
    let n = g.n();
    let k = sources.len();

    // Step 1: h-hop CSSSP collection.
    let (csssp, step1) = build_csssp_recorded(g, sources, h, delta, engine.clone(), rec);
    let knowledge = TreeKnowledge::from_csssp(&csssp);
    let mut stats = step1.clone();

    // Step 2: blocker set.
    let blocker = find_blocker_set_recorded(g, &knowledge, engine.clone(), rec);
    stats = stats.then(&blocker.stats);
    let blockers = blocker.blockers.clone();

    // Step 3: exact SSSP from each blocker, in sequence (Bellman–Ford,
    // n-1 hops each — the O(n·q) part of Lemma III.2).
    let mut step3 = RunStats::default();
    let mut from_blocker: Vec<Vec<Weight>> = Vec::with_capacity(blockers.len());
    for &c in &blockers {
        let span = rec.begin("per_blocker_sssp");
        let (res, st) = bf_k_source(g, &[c], n as u64 - 1, engine.clone());
        rec.end(span, &st);
        step3 = step3.then(&st);
        from_blocker.push(res.dist.into_iter().next().unwrap());
    }
    stats = stats.then(&step3);

    // Step 4: each blocker broadcasts its h-hop distances from the k
    // sources (δ_h(x, c) as recorded by the CSSSP). Every node stores the
    // values it receives; the broadcaster uses its local copy.
    let mut step4 = RunStats::default();
    // heard[v][qi][i] = δ_h(sources[i], blockers[qi]) as learned by node v
    let mut heard: Vec<Vec<Vec<Weight>>> = vec![Vec::new(); n];
    for (qi, &c) in blockers.iter().enumerate() {
        let items: Vec<DistItem> = (0..k)
            .map(|i| DistItem {
                src_idx: i as u32,
                d: csssp.dist[i][c as usize],
            })
            .collect();
        let span = rec.begin("broadcast");
        let (tree, t_st) = build_bfs_tree(g, c, engine.clone());
        let (per_node, b_st) = pipeline_broadcast(g, &tree, items.clone(), engine.clone());
        rec.end(span, &t_st.then(&b_st));
        step4 = step4.then(&t_st);
        step4 = step4.then(&b_st);
        for (v, heard_v) in heard.iter_mut().enumerate() {
            let got = if v == c as usize {
                &items
            } else {
                &per_node[v]
            };
            assert_eq!(
                got.len(),
                k,
                "node {v} missed part of blocker {qi}'s broadcast"
            );
            let mut row = vec![INFINITY; k];
            for it in got {
                row[it.src_idx as usize] = it.d;
            }
            heard_v.push(row);
        }
    }
    stats = stats.then(&step4);

    // Step 5: local combine at every node —
    // δ(x,v) = min(δ_h(x,v), min_c δ_h(x,c) + δ(c,v)). No communication.
    let span = rec.begin("combine");
    let mut dist = vec![vec![INFINITY; n]; k];
    for i in 0..k {
        for v in 0..n {
            let mut best = csssp.dist[i][v];
            for qi in 0..blockers.len() {
                let to_c = heard[v][qi][i];
                let from_c = from_blocker[qi][v];
                if to_c != INFINITY && from_c != INFINITY {
                    best = best.min(to_c + from_c);
                }
            }
            dist[i][v] = best;
        }
    }
    // purely local: a zero-round span, present so the report accounts
    // for every step of Algorithm 3
    rec.end(span, &RunStats::default());

    Alg3Outcome {
        matrix: DistMatrix::new(sources.to_vec(), dist),
        blockers,
        stats,
        step1_rounds: step1.rounds,
        step2_rounds: blocker.stats.rounds,
        step3_rounds: step3.rounds,
        step4_rounds: step4.rounds,
        blocker,
    }
}

/// APSP via Algorithm 3 (`sources = V`).
pub fn alg3_apsp(g: &WGraph, h: u64, delta: Weight, engine: EngineConfig) -> Alg3Outcome {
    let sources: Vec<NodeId> = g.nodes().collect();
    alg3_k_ssp(g, &sources, h, delta, engine)
}

/// As [`alg3_apsp`], recording the phase decomposition on `rec`.
pub fn alg3_apsp_recorded(
    g: &WGraph,
    h: u64,
    delta: Weight,
    engine: EngineConfig,
    rec: &mut dyn Recorder,
) -> Alg3Outcome {
    let sources: Vec<NodeId> = g.nodes().collect();
    alg3_k_ssp_recorded(g, &sources, h, delta, engine, rec)
}

/// The hop parameter suggested by Theorem I.2's proof for the
/// weight-bounded regime: `h = n·log^{1/2}(n) / (W·k)^{1/4}`, clamped to
/// `[1, n]`.
pub fn suggested_h_weight_regime(n: usize, k: usize, w: Weight) -> u64 {
    let n_f = n as f64;
    let h = n_f * n_f.ln().max(1.0).sqrt() / ((w.max(1) as f64) * (k as f64)).powf(0.25);
    (h.round() as u64).clamp(1, n as u64)
}

/// The hop parameter suggested by Theorem I.3's proof for the
/// distance-bounded regime: `h = (n² log²n / (Δk))^{1/3}`, clamped.
pub fn suggested_h_distance_regime(n: usize, k: usize, delta: Weight) -> u64 {
    let n_f = n as f64;
    let ln2 = n_f.ln().max(1.0).powi(2);
    let h = (n_f * n_f * ln2 / ((delta.max(1) as f64) * (k as f64))).powf(1.0 / 3.0);
    (h.round() as u64).clamp(1, n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_graph::gen;
    use dw_seqref::{apsp_dijkstra, assert_matrices_equal, k_source_dijkstra};

    fn delta_for(g: &WGraph, h: u64) -> Weight {
        dw_seqref::max_finite_h_hop_distance(g, 2 * h as usize).max(1)
    }

    #[test]
    fn apsp_matches_dijkstra_small_h() {
        // h much smaller than n forces real blocker work
        let g = gen::zero_heavy(14, 0.18, 0.4, 5, true, 3);
        let h = 3;
        let out = alg3_apsp(&g, h, delta_for(&g, h), EngineConfig::default());
        assert_matrices_equal(&apsp_dijkstra(&g), &out.matrix, "alg3 apsp");
        assert!(!out.blockers.is_empty(), "h=3 should need blockers");
    }

    #[test]
    fn apsp_matches_dijkstra_various_h() {
        let g = gen::zero_heavy(12, 0.2, 0.5, 4, true, 9);
        for h in [1u64, 2, 5, 11] {
            let out = alg3_apsp(&g, h, delta_for(&g, h), EngineConfig::default());
            assert_matrices_equal(&apsp_dijkstra(&g), &out.matrix, &format!("alg3 h={h}"));
        }
    }

    #[test]
    fn k_ssp_subset_sources() {
        let g = gen::zero_heavy(15, 0.2, 0.4, 6, true, 21);
        let sources = vec![2u32, 7, 11];
        let h = 3;
        let out = alg3_k_ssp(&g, &sources, h, delta_for(&g, h), EngineConfig::default());
        assert_matrices_equal(&k_source_dijkstra(&g, &sources), &out.matrix, "alg3 k-ssp");
    }

    #[test]
    fn undirected_graphs_work() {
        let g = gen::zero_heavy(12, 0.25, 0.5, 4, false, 5);
        let h = 2;
        let out = alg3_apsp(&g, h, delta_for(&g, h), EngineConfig::default());
        assert_matrices_equal(&apsp_dijkstra(&g), &out.matrix, "alg3 undirected");
    }

    #[test]
    fn suggested_h_values_sane() {
        assert!(suggested_h_weight_regime(100, 100, 4) >= 1);
        assert!(suggested_h_weight_regime(100, 100, 4) <= 100);
        assert!(suggested_h_distance_regime(100, 100, 50) >= 1);
        // larger W/Δ shrink h
        assert!(suggested_h_weight_regime(200, 200, 64) <= suggested_h_weight_regime(200, 200, 1));
        assert!(
            suggested_h_distance_regime(200, 200, 1000)
                <= suggested_h_distance_regime(200, 200, 10)
        );
    }
}
