//! Distributed baselines the paper builds on or compares against.
//!
//! * [`bellman_ford`] — k-source distributed Bellman–Ford with round-robin
//!   source scheduling (`O(k·h)` rounds): the textbook baseline that
//!   Algorithm 3 uses per blocker node, and the "slow but simple" row of
//!   the exact-APSP comparison (experiment E1).
//! * [`unweighted`] — the pipelined unweighted APSP in the style of \[12\]
//!   (`< 2n` rounds): the algorithm the paper generalizes, and the
//!   zero-edge reachability substrate of Section IV.
//! * [`delayed_bfs`] — pipelined APSP for **positive** integer weights via
//!   the classical weight-expansion idea (`O(Δ + n)` rounds): the approach
//!   whose failure on zero-weight edges motivates the whole paper, and the
//!   per-scale workhorse of the (1+ε) substrate.

pub mod bellman_ford;
pub mod delayed_bfs;
pub mod unweighted;

pub use bellman_ford::{bf_apsp, bf_k_source, BfResult};
pub use delayed_bfs::{delayed_bfs_apsp, delayed_bfs_k_source, run_best_list, DelayedBfsOutcome};
pub use unweighted::{unweighted_apsp, unweighted_k_source};
