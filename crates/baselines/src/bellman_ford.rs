//! Distributed k-source Bellman–Ford with round-robin source scheduling.
//!
//! In round `r` the *phase* is `(r - 1) mod k`; every node whose estimate
//! for source `sources[phase]` improved since that source's last phase
//! broadcasts the estimate. One message per link per round by
//! construction; each source advances one Bellman–Ford layer every `k`
//! rounds, so `h`-hop convergence takes at most `k · (h + 1)` rounds.

use dw_congest::{
    EngineConfig, Envelope, MsgSize, Network, NodeCtx, Outbox, Protocol, Round, RunStats,
};
use dw_graph::{NodeId, WGraph, Weight, INFINITY};
use dw_seqref::DistMatrix;

/// `(source_index, d, l)` — the hop count rides along so results report
/// path hop lengths like the other algorithms. 3 words.
#[derive(Debug, Clone, Copy)]
struct BfMsg {
    src_idx: u32,
    d: Weight,
    l: u64,
}

impl MsgSize for BfMsg {
    fn size_words(&self) -> usize {
        3
    }
}

#[derive(Clone)]
struct BfNode {
    sources: std::sync::Arc<Vec<NodeId>>,
    h: u64,
    /// Per source index: (d, l, parent), plus a dirty bit since last
    /// announcement.
    best: Vec<Option<(Weight, u64, Option<NodeId>)>>,
    dirty: Vec<bool>,
}

impl Protocol for BfNode {
    type Msg = BfMsg;

    fn init(&mut self, ctx: &NodeCtx) {
        for (i, &s) in self.sources.iter().enumerate() {
            if s == ctx.id {
                self.best[i] = Some((0, 0, None));
                self.dirty[i] = true;
            }
        }
    }

    fn send(&mut self, round: Round, _ctx: &NodeCtx, out: &mut Outbox<BfMsg>) {
        let k = self.sources.len() as u64;
        let phase = ((round - 1) % k) as usize;
        if self.dirty[phase] {
            self.dirty[phase] = false;
            if let Some((d, l, _)) = self.best[phase] {
                out.broadcast(BfMsg {
                    src_idx: phase as u32,
                    d,
                    l,
                });
            }
        }
    }

    fn receive(&mut self, _round: Round, inbox: &[Envelope<BfMsg>], ctx: &NodeCtx) {
        for env in inbox {
            let Some(w) = ctx.in_weight_from(env.from) else {
                continue;
            };
            let i = env.msg().src_idx as usize;
            let d = env.msg().d + w;
            let l = env.msg().l + 1;
            if l > self.h {
                continue;
            }
            let better = match self.best[i] {
                None => true,
                Some((bd, bl, _)) => d < bd || (d == bd && l < bl),
            };
            if better {
                self.best[i] = Some((d, l, Some(env.from)));
                self.dirty[i] = true;
            }
        }
    }

    fn earliest_send(&self, after: Round, _ctx: &NodeCtx) -> Option<Round> {
        // next phase round of any dirty source
        let k = self.sources.len() as u64;
        self.dirty
            .iter()
            .enumerate()
            .filter(|&(_, &dirt)| dirt)
            .map(|(i, _)| {
                // smallest r >= after with (r-1) % k == i
                let i = i as u64;
                let rem = (after - 1) % k;
                if rem <= i {
                    after + (i - rem)
                } else {
                    after + (k - rem + i)
                }
            })
            .min()
    }
}

/// Result of a Bellman–Ford run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfResult {
    pub sources: Vec<NodeId>,
    pub dist: Vec<Vec<Weight>>,
    pub hops: Vec<Vec<u64>>,
    pub parent: Vec<Vec<Option<NodeId>>>,
}

impl BfResult {
    pub fn to_matrix(&self) -> DistMatrix {
        DistMatrix::new(self.sources.clone(), self.dist.clone())
    }
}

/// h-hop distances from `sources` by round-robin Bellman–Ford.
pub fn bf_k_source(
    g: &WGraph,
    sources: &[NodeId],
    h: u64,
    engine: EngineConfig,
) -> (BfResult, RunStats) {
    let k = sources.len();
    assert!(k >= 1);
    let shared = std::sync::Arc::new(sources.to_vec());
    let mut net = Network::new(g, engine, |_| BfNode {
        sources: shared.clone(),
        h,
        best: vec![None; k],
        dirty: vec![false; k],
    });
    // each source advances a layer per k rounds; h layers + slack
    net.run((k as u64) * (h + 2));
    let stats = net.stats();
    let n = g.n();
    let mut dist = vec![vec![INFINITY; n]; k];
    let mut hops = vec![vec![0u64; n]; k];
    let mut parent = vec![vec![None; n]; k];
    for (v, node) in net.nodes().enumerate() {
        for i in 0..k {
            if let Some((d, l, p)) = node.best[i] {
                dist[i][v] = d;
                hops[i][v] = l;
                parent[i][v] = p;
            }
        }
    }
    (
        BfResult {
            sources: sources.to_vec(),
            dist,
            hops,
            parent,
        },
        stats,
    )
}

/// Exact APSP by Bellman–Ford (`h = n - 1`): the `O(n·k)`-round baseline.
pub fn bf_apsp(g: &WGraph, engine: EngineConfig) -> (BfResult, RunStats) {
    let sources: Vec<NodeId> = g.nodes().collect();
    bf_k_source(g, &sources, g.n() as u64 - 1, engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_graph::gen;
    use dw_seqref::{apsp_dijkstra, assert_matrices_equal, h_hop_sssp};

    #[test]
    fn apsp_matches_dijkstra_with_zero_weights() {
        let g = gen::zero_heavy(14, 0.2, 0.5, 6, true, 3);
        let (res, stats) = bf_apsp(&g, EngineConfig::default());
        assert_matrices_equal(&apsp_dijkstra(&g), &res.to_matrix(), "bf apsp");
        assert!(stats.rounds <= (g.n() as u64) * (g.n() as u64 + 1));
    }

    #[test]
    fn h_hop_semantics() {
        let g = gen::staircase(2, 3, 4, true);
        let (res, _) = bf_k_source(&g, &[0], 2, EngineConfig::default());
        let reference = h_hop_sssp(&g, 0, 2);
        for v in g.nodes() {
            assert_eq!(res.dist[0][v as usize], reference[v as usize].dist);
        }
    }

    #[test]
    fn round_robin_respects_link_capacity() {
        // engine would panic on violation; also sanity check the phase math
        let g = gen::gnp_connected(
            12,
            0.3,
            false,
            dw_graph::gen::WeightDist::Uniform { max: 4 },
            8,
        );
        let (res, _) = bf_k_source(&g, &[1, 5, 9], (g.n() - 1) as u64, EngineConfig::default());
        let reference = dw_seqref::k_source_dijkstra(&g, &[1, 5, 9]);
        assert_matrices_equal(&reference, &res.to_matrix(), "bf 3-source");
    }

    #[test]
    fn earliest_send_phase_math() {
        // indirect: a single dirty source at index 2 with k=5 should fire
        // at rounds ≡ 3 (mod 5); run a 3-node path and watch stats
        let g = gen::path(3, false, dw_graph::gen::WeightDist::Constant(1), 0);
        let (res, stats) = bf_k_source(&g, &[0, 1, 2], 4, EngineConfig::default());
        assert_eq!(res.dist[0], vec![0, 1, 2]);
        assert_eq!(res.dist[1], vec![1, 0, 1]);
        assert_eq!(res.dist[2], vec![2, 1, 0]);
        assert!(stats.rounds <= 3 * 6);
    }
}
