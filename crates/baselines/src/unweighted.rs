//! The pipelined **unweighted** APSP of \[12\] — the algorithm the paper's
//! Section II recaps as its starting point.
//!
//! Every node keeps its best (hop) distance per source in sorted order and
//! announces the estimate with `d(s) + pos(s) = r` in round `r`. All
//! distances arrive within `2n` rounds. Edge weights are ignored (every
//! edge counts one hop), which is exactly what the Section IV zero-closure
//! needs: running this on the zero-weight subgraph computes zero-path
//! reachability.

use crate::delayed_bfs::{run_best_list, DelayedBfsOutcome};
use dw_congest::{EngineConfig, RunStats};
use dw_graph::{NodeId, WGraph};

/// Unweighted APSP (hop distances from every node), `< 2n` rounds.
pub fn unweighted_apsp(g: &WGraph, engine: EngineConfig) -> (DelayedBfsOutcome, RunStats) {
    let sources: Vec<NodeId> = g.nodes().collect();
    unweighted_k_source(g, &sources, engine)
}

/// Unweighted k-SSP (hop distances from `sources`).
pub fn unweighted_k_source(
    g: &WGraph,
    sources: &[NodeId],
    engine: EngineConfig,
) -> (DelayedBfsOutcome, RunStats) {
    run_best_list(g, sources, true, 2 * g.n() as u64 + 2, engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_graph::gen::{self, WeightDist};
    use dw_graph::INFINITY;

    fn hop_reference(g: &WGraph, s: NodeId) -> Vec<u64> {
        // BFS over out-edges (directed semantics)
        let mut dist = vec![INFINITY; g.n()];
        dist[s as usize] = 0;
        let mut q = std::collections::VecDeque::from([s]);
        while let Some(v) = q.pop_front() {
            for &(u, _) in g.out_edges(v) {
                if dist[u as usize] == INFINITY {
                    dist[u as usize] = dist[v as usize] + 1;
                    q.push_back(u);
                }
            }
        }
        dist
    }

    #[test]
    fn matches_bfs_reference() {
        let g = gen::gnp_connected(30, 0.08, true, WeightDist::Uniform { max: 9 }, 12);
        let (out, stats) = unweighted_apsp(&g, EngineConfig::default());
        assert_eq!(out.stranded, 0);
        for s in g.nodes() {
            let expect = hop_reference(&g, s);
            for v in g.nodes() {
                assert_eq!(
                    out.matrix.from_source(s, v),
                    Some(expect[v as usize]),
                    "{s}->{v}"
                );
            }
        }
        // Theorem of [12]: all estimates arrive within 2n rounds.
        assert!(stats.rounds <= 2 * g.n() as u64, "rounds {}", stats.rounds);
    }

    #[test]
    fn zero_subgraph_reachability() {
        // the Section IV use: which pairs are joined by all-zero paths?
        let g = gen::zero_heavy(20, 0.15, 0.5, 6, true, 7);
        let z = g.zero_subgraph();
        let (out, _) = unweighted_apsp(&z, EngineConfig::default());
        let reference = dw_seqref::apsp_dijkstra(&g);
        for s in g.nodes() {
            for v in g.nodes() {
                let zero_reachable = out.matrix.from_source(s, v) != Some(INFINITY);
                if zero_reachable {
                    assert_eq!(
                        reference.from_source(s, v),
                        Some(0),
                        "zero-path implies distance 0"
                    );
                }
            }
        }
    }

    #[test]
    fn per_node_single_message_per_source() {
        // [12]: each node sends at most one message per source
        let g = gen::path(10, false, WeightDist::Constant(1), 0);
        let (_, stats) = unweighted_apsp(&g, EngineConfig::default());
        // a node's sends ≤ number of sources
        assert!(stats.max_node_sends <= g.n() as u64);
    }
}
