//! Pipelined APSP/k-SSP for **positive** integer weights — the classical
//! "expand an edge of weight w into w unit edges" approach, realized as a
//! \[12\]-style pipeline with key `d` and send schedule `r = d + pos`.
//!
//! This is the technique used by the approximate algorithms \[16\], \[18\]
//! (and by our `dw-approx` per scale). It is correct for weights `>= 1`:
//! an improvement traversing an edge raises the key by at least the hop
//! count, so every estimate arrives before its announcement round. With
//! **zero-weight edges this breaks** — keys stop growing along edges and
//! estimates can arrive after their scheduled round, stranding them
//! unannounced (exactly the failure mode the paper describes in Section I
//! and fixes with Algorithm 1's composite key). The `stranded` counter
//! makes that failure observable; see the crate tests and experiment E10.

use dw_congest::{
    EngineConfig, Envelope, MsgSize, Network, NodeCtx, Outbox, Protocol, Round, RunStats,
};
use dw_graph::{NodeId, WGraph, Weight, INFINITY};
use dw_seqref::DistMatrix;

/// `(d, source)` — 2 words.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BestMsg {
    pub d: Weight,
    pub src: NodeId,
}

impl MsgSize for BestMsg {
    fn size_words(&self) -> usize {
        2
    }
}

/// One best-estimate entry per source, sorted by `(d, src)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BestEntry {
    pub d: Weight,
    pub src: NodeId,
    pub parent: Option<NodeId>,
    pub sent: bool,
}

/// Single-best-per-source pipelined node (\[12\] generalized to integer
/// weights). With `unit_weights` every edge counts as 1 (the unweighted
/// algorithm, used on the zero-edge subgraph in Section IV).
#[derive(Clone)]
pub(crate) struct BestListNode {
    pub unit_weights: bool,
    pub is_source: bool,
    /// Sorted by (d, src).
    pub list: Vec<BestEntry>,
    /// Estimates that arrived at or after their announcement round and
    /// will therefore never be sent (always 0 for weights >= 1).
    pub stranded: u64,
}

impl BestListNode {
    fn position_of(&self, src: NodeId) -> Option<usize> {
        self.list.iter().position(|e| e.src == src)
    }

    fn schedule(&self, idx: usize) -> u64 {
        self.list[idx].d + idx as u64 + 1
    }

    fn upsert(&mut self, src: NodeId, d: Weight, parent: Option<NodeId>, round: Round) {
        if let Some(old) = self.position_of(src) {
            if self.list[old].d <= d {
                return;
            }
            self.list.remove(old);
        }
        let idx = self.list.partition_point(|e| (e.d, e.src) <= (d, src));
        self.list.insert(
            idx,
            BestEntry {
                d,
                src,
                parent,
                sent: false,
            },
        );
        if round >= self.schedule(idx) {
            self.stranded += 1;
        }
    }

    pub fn best(&self, src: NodeId) -> Option<&BestEntry> {
        self.list.iter().find(|e| e.src == src)
    }
}

impl Protocol for BestListNode {
    type Msg = BestMsg;

    fn init(&mut self, ctx: &NodeCtx) {
        if self.is_source {
            self.list.push(BestEntry {
                d: 0,
                src: ctx.id,
                parent: None,
                sent: false,
            });
        }
    }

    fn send(&mut self, round: Round, _ctx: &NodeCtx, out: &mut Outbox<BestMsg>) {
        // schedule values d + pos are strictly increasing along the list,
        // so at most one entry matches the round
        let n = self.list.len();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.schedule(mid) < round {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < n && self.schedule(lo) == round && !self.list[lo].sent {
            self.list[lo].sent = true;
            let e = self.list[lo];
            out.broadcast(BestMsg { d: e.d, src: e.src });
        }
    }

    fn receive(&mut self, round: Round, inbox: &[Envelope<BestMsg>], ctx: &NodeCtx) {
        for env in inbox {
            let Some(w) = ctx.in_weight_from(env.from) else {
                continue;
            };
            let step = if self.unit_weights { 1 } else { w };
            let d = env.msg().d + step;
            self.upsert(env.msg().src, d, Some(env.from), round);
        }
    }

    fn earliest_send(&self, after: Round, _ctx: &NodeCtx) -> Option<Round> {
        (0..self.list.len())
            .filter(|&i| !self.list[i].sent)
            .map(|i| self.schedule(i))
            .filter(|&v| v >= after)
            .min()
    }
}

/// Outcome of a delayed-BFS run.
#[derive(Debug, Clone)]
pub struct DelayedBfsOutcome {
    pub matrix: DistMatrix,
    pub parent: Vec<Vec<Option<NodeId>>>,
    /// Total stranded estimates across nodes — 0 for positive weights,
    /// typically positive when zero-weight edges are present (the failure
    /// the paper fixes).
    pub stranded: u64,
}

pub fn run_best_list(
    g: &WGraph,
    sources: &[NodeId],
    unit_weights: bool,
    budget: u64,
    engine: EngineConfig,
) -> (DelayedBfsOutcome, RunStats) {
    let mut is_source = vec![false; g.n()];
    for &s in sources {
        is_source[s as usize] = true;
    }
    let mut net = Network::new(g, engine, |v| BestListNode {
        unit_weights,
        is_source: is_source[v as usize],
        list: Vec::new(),
        stranded: 0,
    });
    net.run(budget);
    let stats = net.stats();
    let n = g.n();
    let k = sources.len();
    let mut dist = vec![vec![INFINITY; n]; k];
    let mut parent = vec![vec![None; n]; k];
    let mut stranded = 0;
    for (v, node) in net.nodes().enumerate() {
        stranded += node.stranded;
        for (i, &s) in sources.iter().enumerate() {
            if let Some(e) = node.best(s) {
                dist[i][v] = e.d;
                parent[i][v] = e.parent;
            }
        }
    }
    (
        DelayedBfsOutcome {
            matrix: DistMatrix::new(sources.to_vec(), dist),
            parent,
            stranded,
        },
        stats,
    )
}

/// k-SSP for positive integer weights; `delta` bounds the distances (round
/// budget `Δ + n + 2`).
pub fn delayed_bfs_k_source(
    g: &WGraph,
    sources: &[NodeId],
    delta: Weight,
    engine: EngineConfig,
) -> (DelayedBfsOutcome, RunStats) {
    run_best_list(g, sources, false, delta + g.n() as u64 + 2, engine)
}

/// APSP for positive integer weights.
pub fn delayed_bfs_apsp(
    g: &WGraph,
    delta: Weight,
    engine: EngineConfig,
) -> (DelayedBfsOutcome, RunStats) {
    let sources: Vec<NodeId> = g.nodes().collect();
    delayed_bfs_k_source(g, &sources, delta, engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_graph::gen::{self, WeightDist};
    use dw_seqref::{apsp_dijkstra, assert_matrices_equal, max_finite_distance};

    #[test]
    fn exact_on_positive_weights() {
        for seed in 0..3 {
            let g = gen::gnp_connected(
                18,
                0.12,
                true,
                WeightDist::ZeroOr {
                    p_zero: 0.0,
                    max: 7,
                },
                seed,
            );
            let delta = max_finite_distance(&g);
            let (out, stats) = delayed_bfs_apsp(&g, delta, EngineConfig::default());
            assert_eq!(out.stranded, 0, "no stranding with positive weights");
            assert_matrices_equal(&apsp_dijkstra(&g), &out.matrix, "delayed bfs");
            assert!(stats.rounds <= delta + g.n() as u64 + 2);
        }
    }

    #[test]
    fn round_bound_delta_plus_n() {
        let g = gen::path(20, false, WeightDist::Constant(3), 0);
        let delta = max_finite_distance(&g);
        let (_, stats) = delayed_bfs_apsp(&g, delta, EngineConfig::default());
        assert!(stats.rounds <= delta + 22);
    }

    /// The paper's motivating failure: with zero-weight edges the
    /// `d + pos` schedule strands estimates or reports wrong distances.
    #[test]
    fn zero_weights_break_the_schedule() {
        let mut broke = false;
        for seed in 0..6 {
            let g = gen::zero_heavy(16, 0.25, 0.6, 5, true, seed);
            let delta = max_finite_distance(&g);
            let (out, _) = delayed_bfs_apsp(&g, delta, EngineConfig::default());
            let reference = apsp_dijkstra(&g);
            let diffs = dw_seqref::matrices_equal(&reference, &out.matrix, 1);
            if out.stranded > 0 || !diffs.is_empty() {
                broke = true;
                break;
            }
        }
        assert!(
            broke,
            "zero-heavy graphs should exhibit stranded estimates or wrong distances"
        );
    }
}
