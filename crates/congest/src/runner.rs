//! The shared per-node execution path.
//!
//! [`NodeRunner`] owns one node's protocol state plus everything the
//! CONGEST model charges to that node locally: its send buffer, its
//! per-out-link load and capacity stamps, and its send/word counters.
//! Both execution environments drive rounds through this one type:
//!
//! * the lockstep simulator ([`crate::engine::Network`]) holds a
//!   `Vec<NodeRunner<P>>` and plays all of them in-process;
//! * the message-passing runtime (`dw-transport`) gives each worker —
//!   a thread, an OS process behind a TCP socket, or a Maelstrom-style
//!   stdio node — its own `NodeRunner` and moves the emitted messages
//!   over a real channel.
//!
//! The CONGEST validation rules (word budget, one message per directed
//! link per round, neighbors only) therefore live here, in exactly one
//! place, and a conformance failure between the two environments can
//! only come from delivery ordering — never from divergent send-side
//! accounting.

use crate::message::{Envelope, MsgSize};
use crate::outbox::{Outbox, SendOp};
use crate::protocol::{NodeCtx, Protocol, Round};
use dw_graph::{NodeId, WGraph};

/// Where a [`NodeRunner`] puts validated transmissions.
///
/// The runner has already charged the word budget, stamped link
/// capacity and counted the transmission by the time a sink method
/// runs; the sink only decides how the message travels. The simulator's
/// sink pushes into in-memory inboxes (applying fault decisions); the
/// transport sinks serialize frames onto channels or sockets.
pub trait SendSink<M> {
    /// One message over the single link `from -> to`. `rank` is the
    /// index of `to` in `from`'s sorted comm-neighbor list.
    fn unicast(&mut self, from: NodeId, rank: usize, to: NodeId, msg: M, words: usize);

    /// One message over every incident link of `from`. `nbrs` is
    /// `from`'s full comm-neighbor list; sinks may share one payload
    /// allocation across recipients.
    fn broadcast(&mut self, from: NodeId, nbrs: &[NodeId], msg: M, words: usize);
}

/// One node's protocol state plus its local CONGEST accounting.
pub struct NodeRunner<P: Protocol> {
    id: NodeId,
    node: P,
    outbox: Outbox<P::Msg>,
    /// Messages carried per out-link (comm-neighbor rank order).
    link_load: Vec<u64>,
    /// Round stamp of the last use of each out-link (capacity check).
    link_stamp: Vec<Round>,
    /// Rounds in which this node's outbox was non-empty.
    node_sends: u64,
    /// Wire transmissions (a degree-`d` broadcast counts `d`).
    messages: u64,
    /// Words put on the wire.
    total_words: u64,
}

impl<P: Protocol> NodeRunner<P> {
    /// Wrap `node` as node `id` of `g`. Does **not** call
    /// [`Protocol::init`]; use [`NodeRunner::init`] once the whole
    /// network is constructed (round 0 semantics).
    pub fn new(id: NodeId, g: &WGraph, node: P) -> Self {
        let degree = g.comm_neighbors(id).len();
        NodeRunner {
            id,
            node,
            outbox: Outbox::new(),
            link_load: vec![0; degree],
            link_stamp: vec![0; degree],
            node_sends: 0,
            messages: 0,
            total_words: 0,
        }
    }

    /// Local initialization (round 0, no communication).
    pub fn init(&mut self, g: &WGraph) {
        self.node.init(&NodeCtx::new(self.id, g));
    }

    pub fn id(&self) -> NodeId {
        self.id
    }

    pub fn node(&self) -> &P {
        &self.node
    }

    pub fn node_mut(&mut self) -> &mut P {
        &mut self.node
    }

    pub fn into_node(self) -> P {
        self.node
    }

    /// The node's schedule hint (see [`Protocol::earliest_send`]).
    pub fn earliest_send(&self, after: Round, g: &WGraph) -> Option<Round> {
        self.node.earliest_send(after, &NodeCtx::new(self.id, g))
    }

    /// Send phase: let the protocol fill the outbox for `round`.
    pub fn poll_send(&mut self, round: Round, g: &WGraph) {
        self.node
            .send(round, &NodeCtx::new(self.id, g), &mut self.outbox);
    }

    /// Drain the outbox filled by [`NodeRunner::poll_send`], validating
    /// the CONGEST constraints and handing each transmission to `sink`.
    /// Returns the number of wire transmissions this round (a broadcast
    /// from a neighborless node contributes zero).
    pub fn drain_sends<S: SendSink<P::Msg>>(
        &mut self,
        round: Round,
        g: &WGraph,
        max_words: usize,
        enforce_link_capacity: bool,
        sink: &mut S,
    ) -> u64 {
        let mut ops = self.outbox.take_ops();
        if ops.is_empty() {
            self.outbox.restore(ops);
            return 0;
        }
        self.node_sends += 1;
        let u = self.id;
        let mut sent = 0u64;
        let mut words_sent = 0u64;
        for op in ops.drain(..) {
            match op {
                SendOp::Broadcast(m) => {
                    let words = m.size_words();
                    check_words(u, words, max_words);
                    let nbrs = g.comm_neighbors(u);
                    for (rank, &v) in nbrs.iter().enumerate() {
                        self.stamp(rank, round, v, enforce_link_capacity);
                    }
                    sent += nbrs.len() as u64;
                    words_sent += (words * nbrs.len()) as u64;
                    sink.broadcast(u, nbrs, m, words);
                }
                SendOp::Unicast(v, m) => {
                    let words = m.size_words();
                    check_words(u, words, max_words);
                    let rank = g
                        .comm_neighbors(u)
                        .binary_search(&v)
                        .unwrap_or_else(|_| panic!("protocol bug: {u} sent to non-neighbor {v}"));
                    self.stamp(rank, round, v, enforce_link_capacity);
                    sent += 1;
                    words_sent += words as u64;
                    sink.unicast(u, rank, v, m, words);
                }
            }
        }
        self.messages += sent;
        self.total_words += words_sent;
        self.outbox.restore(ops);
        sent
    }

    /// Receive phase: hand `inbox` (sorted by sender id) to the node.
    pub fn receive(&mut self, round: Round, inbox: &[Envelope<P::Msg>], g: &WGraph) {
        self.node.receive(round, inbox, &NodeCtx::new(self.id, g));
    }

    #[inline]
    fn stamp(&mut self, rank: usize, round: Round, v: NodeId, enforce: bool) {
        if enforce {
            assert!(
                self.link_stamp[rank] != round,
                "protocol bug: node {u} sent two messages over link {u}->{v} in round {round}",
                u = self.id,
            );
        }
        self.link_stamp[rank] = round;
        self.link_load[rank] += 1;
    }

    /// Messages carried per out-link over the whole run, in
    /// comm-neighbor rank order (the per-link congestion of this node's
    /// outgoing links).
    pub fn link_loads(&self) -> &[u64] {
        &self.link_load
    }

    /// Maximum load over this node's out-links.
    pub fn max_link_load(&self) -> u64 {
        self.link_load.iter().copied().max().unwrap_or(0)
    }

    /// Rounds in which this node emitted at least one send op.
    pub fn node_sends(&self) -> u64 {
        self.node_sends
    }

    /// Total wire transmissions by this node.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total words put on the wire by this node.
    pub fn total_words(&self) -> u64 {
        self.total_words
    }

    /// Serialize the runner's own accounting (send/word counters, link
    /// loads, capacity stamps) for a crash-recovery checkpoint. The
    /// protocol state is serialized separately via
    /// [`crate::Checkpointable`].
    pub fn encode_accounting(&self, out: &mut Vec<u8>) {
        use crate::codec::WireCodec;
        self.node_sends.encode(out);
        self.messages.encode(out);
        self.total_words.encode(out);
        self.link_load.encode(out);
        self.link_stamp.encode(out);
    }

    /// Restore accounting previously written by
    /// [`NodeRunner::encode_accounting`]. `None` means the bytes are
    /// malformed or the link vectors do not match this node's degree.
    pub fn restore_accounting(&mut self, buf: &mut &[u8]) -> Option<()> {
        use crate::codec::WireCodec;
        let node_sends = u64::decode(buf)?;
        let messages = u64::decode(buf)?;
        let total_words = u64::decode(buf)?;
        let link_load = Vec::<u64>::decode(buf)?;
        let link_stamp = Vec::<Round>::decode(buf)?;
        if link_load.len() != self.link_load.len() || link_stamp.len() != self.link_stamp.len() {
            return None;
        }
        self.node_sends = node_sends;
        self.messages = messages;
        self.total_words = total_words;
        self.link_load = link_load;
        self.link_stamp = link_stamp;
        Some(())
    }
}

#[inline]
fn check_words(u: NodeId, words: usize, max_words: usize) {
    assert!(
        words <= max_words,
        "protocol bug: node {u} sent a {words}-word message (budget {max_words})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_graph::gen::{self, WeightDist};

    struct Chatter;
    impl Protocol for Chatter {
        type Msg = u64;
        fn send(&mut self, round: Round, ctx: &NodeCtx, out: &mut Outbox<u64>) {
            if round == 1 {
                out.broadcast(7);
            } else if round == 2 && ctx.is_comm_neighbor(0) {
                out.unicast(0, 9);
            }
        }
        fn receive(&mut self, _r: Round, _i: &[Envelope<u64>], _c: &NodeCtx) {}
    }

    #[derive(Default)]
    struct Collect {
        unicasts: Vec<(NodeId, NodeId)>,
        broadcasts: Vec<(NodeId, usize)>,
    }
    impl SendSink<u64> for Collect {
        fn unicast(&mut self, from: NodeId, _rank: usize, to: NodeId, _m: u64, _w: usize) {
            self.unicasts.push((from, to));
        }
        fn broadcast(&mut self, from: NodeId, nbrs: &[NodeId], _m: u64, _w: usize) {
            self.broadcasts.push((from, nbrs.len()));
        }
    }

    #[test]
    fn accounts_broadcast_and_unicast() {
        let g = gen::path(3, false, WeightDist::Constant(1), 0); // 0-1-2
        let mut r = NodeRunner::new(1, &g, Chatter);
        r.init(&g);
        let mut sink = Collect::default();

        r.poll_send(1, &g);
        assert_eq!(r.drain_sends(1, &g, 8, true, &mut sink), 2);
        r.poll_send(2, &g);
        assert_eq!(r.drain_sends(2, &g, 8, true, &mut sink), 1);
        r.poll_send(3, &g);
        assert_eq!(r.drain_sends(3, &g, 8, true, &mut sink), 0, "empty outbox");

        assert_eq!(sink.broadcasts, vec![(1, 2)]);
        assert_eq!(sink.unicasts, vec![(1, 0)]);
        assert_eq!(r.node_sends(), 2, "round 3 was silent");
        assert_eq!(r.messages(), 3);
        assert_eq!(r.total_words(), 3);
        assert_eq!(r.link_loads(), &[2, 1], "link to 0 used twice, to 2 once");
        assert_eq!(r.max_link_load(), 2);
    }

    struct DoubleUnicast;
    impl Protocol for DoubleUnicast {
        type Msg = u64;
        fn send(&mut self, _r: Round, _c: &NodeCtx, out: &mut Outbox<u64>) {
            out.unicast(1, 1);
            out.unicast(1, 2);
        }
        fn receive(&mut self, _r: Round, _i: &[Envelope<u64>], _c: &NodeCtx) {}
    }

    #[test]
    #[should_panic(expected = "two messages over link")]
    fn capacity_violation_panics() {
        let g = gen::path(2, false, WeightDist::Constant(1), 0);
        let mut r = NodeRunner::new(0, &g, DoubleUnicast);
        r.poll_send(1, &g);
        r.drain_sends(1, &g, 8, true, &mut Collect::default());
    }
}
