//! The per-node program abstraction.

use crate::message::{Envelope, MsgSize};
use crate::outbox::Outbox;
use dw_graph::{NodeId, WGraph};

/// Round counter. Round 0 is initialization (no communication, per the
/// paper's Algorithm 1 "there are no Sends in round 0"); communication
/// rounds are `1, 2, ...`.
pub type Round = u64;

/// Read-only view a node has of its own position in the network.
///
/// Although the simulator owns the whole graph, protocols must only use
/// *local* knowledge: the node's id, its incident edges (with weights and
/// directions) and globally-known scalars (`n`, parameters). The accessors
/// here expose exactly that. (The CONGEST model gives each node knowledge
/// of its incident edges only — Section I-B.)
#[derive(Clone, Copy)]
pub struct NodeCtx<'g> {
    pub id: NodeId,
    graph: &'g WGraph,
}

impl<'g> NodeCtx<'g> {
    pub(crate) fn new(id: NodeId, graph: &'g WGraph) -> Self {
        NodeCtx { id, graph }
    }

    /// Total number of nodes `n` (globally known in the CONGEST model).
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Communication neighbors (underlying undirected graph).
    #[inline]
    pub fn comm_neighbors(&self) -> &'g [NodeId] {
        self.graph.comm_neighbors(self.id)
    }

    /// Outgoing weighted edges of this node in `G`.
    #[inline]
    pub fn out_edges(&self) -> &'g [(NodeId, u64)] {
        self.graph.out_edges(self.id)
    }

    /// Incoming weighted edges of this node in `G`.
    #[inline]
    pub fn in_edges(&self) -> &'g [(NodeId, u64)] {
        self.graph.in_edges(self.id)
    }

    /// Weight of the edge `from -> self.id`, if it exists in `G`.
    /// This is the weight a node uses to extend a path announced by a
    /// communication neighbor.
    #[inline]
    pub fn in_weight_from(&self, from: NodeId) -> Option<u64> {
        let row = self.in_edges();
        row.binary_search_by_key(&from, |&(u, _)| u)
            .ok()
            .map(|i| row[i].1)
    }

    /// Whether `u` is a communication neighbor.
    #[inline]
    pub fn is_comm_neighbor(&self, u: NodeId) -> bool {
        self.comm_neighbors().binary_search(&u).is_ok()
    }
}

/// A node program for a synchronous CONGEST protocol.
///
/// The engine drives each round `r >= 1` as: every node's [`Protocol::send`]
/// is called (producing at most one message per incident link), then every
/// node's [`Protocol::receive`] is called with the messages addressed to it
/// in round `r`.
pub trait Protocol: Send {
    /// Message type carried by this protocol.
    ///
    /// `Sync` is required because a broadcast delivery shares one payload
    /// allocation across all recipient inboxes, and the parallel receive
    /// phase reads those inboxes from worker threads. Message types are
    /// plain data, so this costs nothing in practice.
    type Msg: Clone + MsgSize + Send + Sync;

    /// Local initialization (round 0, no communication).
    fn init(&mut self, ctx: &NodeCtx) {
        let _ = ctx;
    }

    /// Send phase of round `round`.
    fn send(&mut self, round: Round, ctx: &NodeCtx, out: &mut Outbox<Self::Msg>);

    /// Receive phase of round `round`; `inbox` is sorted by sender id.
    fn receive(&mut self, round: Round, inbox: &[Envelope<Self::Msg>], ctx: &NodeCtx);

    /// The earliest round `>= after` in which this node *might* send,
    /// given its current state, or `None` if it will stay silent until it
    /// receives something.
    ///
    /// Pipelined protocols have sparse send schedules (a node sends for
    /// source `s` only in round `⌈κ⌉ + pos`); implementing this lets the
    /// engine fast-forward through silent rounds (they are still counted in
    /// the round complexity, just not simulated one by one). The default is
    /// conservative: "might send every round".
    ///
    /// # Contract (required by active-set scheduling)
    ///
    /// The answer may be *conservative* — earlier than the node actually
    /// sends, or `Some(after)` always, as the default is — but it must be
    /// **sound** and **stable**:
    ///
    /// * **Sound**: the node never sends in a round `r >= after` strictly
    ///   before the returned round, and never sends at all (until its state
    ///   changes) after returning `None`. State changes only in `init`,
    ///   `send` and `receive`.
    /// * **Stable**: between state changes, answers are consistent with one
    ///   earlier answer. If `earliest_send(a)` returned `Some(r)`, then for
    ///   any `a <= a' <= r`, `earliest_send(a')` returns `Some(r)`; if it
    ///   returned `None`, every later query returns `None` until the state
    ///   changes.
    ///
    /// Under this contract the active-set scheduler, which caches one
    /// pending send round per node and only re-queries nodes whose state
    /// changed, polls exactly the same nodes the exhaustive engine would
    /// observe sending — which is what makes the two modes bit-identical.
    fn earliest_send(&self, after: Round, ctx: &NodeCtx) -> Option<Round> {
        let _ = ctx;
        Some(after)
    }
}

/// A protocol whose dynamic state can be serialized for crash recovery.
///
/// The transport runtime checkpoints workers at a round cadence and, after
/// a crash, rebuilds the node as "pristine clone + `init` + `restore`"
/// before replaying the frames received since the checkpoint round. That
/// split fixes the contract:
///
/// * `Clone` must reproduce the node *as constructed* — configuration
///   parameters (`k`, `h`, Δ, source flags…) travel by cloning, never
///   over the wire;
/// * [`Checkpointable::snapshot`] serializes only the *dynamic* state
///   accumulated since `init` (distance lists, best maps, counters),
///   using the [`crate::WireCodec`] building blocks;
/// * [`Checkpointable::restore`] overwrites that dynamic state on a
///   freshly constructed and `init`-ed instance.
///
/// Because the round schedule is deterministic and barrier-synchronous,
/// a restored node that replays its post-checkpoint inbox re-derives
/// exactly the state it lost (DESIGN.md §10).
pub trait Checkpointable: Protocol + Clone {
    /// Append the node's dynamic state to `out`.
    fn snapshot(&self, out: &mut Vec<u8>);

    /// Overwrite the dynamic state from the front of `buf`, advancing it
    /// past the consumed bytes. `None` means the bytes are malformed.
    fn restore(&mut self, buf: &mut &[u8]) -> Option<()>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_graph::GraphBuilder;

    #[test]
    fn ctx_local_views() {
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 1, 5);
        b.add_edge(2, 1, 7);
        let g = b.build();
        let ctx = NodeCtx::new(1, &g);
        assert_eq!(ctx.n(), 3);
        assert_eq!(ctx.comm_neighbors(), &[0, 2]);
        assert_eq!(ctx.in_weight_from(0), Some(5));
        assert_eq!(ctx.in_weight_from(2), Some(7));
        assert_eq!(ctx.in_weight_from(1), None);
        assert!(ctx.is_comm_neighbor(2));
        assert!(!ctx.is_comm_neighbor(1));
        assert_eq!(ctx.out_edges(), &[]);
    }
}
