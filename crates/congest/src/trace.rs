//! Round-by-round execution tracing.
//!
//! Debugging a distributed protocol usually means asking "what was in
//! flight in round r?". [`RoundTrace`] is a cheap recorder the engine can
//! feed (via [`crate::engine::Network::step_traced`]): per executed round
//! it stores the message count, the set of senders, and optionally a
//! rendered digest of the messages. Used by tests in this workspace and
//! handy when developing new protocols on the engine.

use crate::protocol::Round;
use dw_graph::NodeId;

/// One executed round's summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord {
    pub round: Round,
    pub messages: u64,
    /// Distinct sender ids this round (sorted).
    pub senders: Vec<NodeId>,
    /// Optional rendered messages `(from, to, text)` — only populated
    /// when the trace was created with [`RoundTrace::with_payloads`].
    pub payloads: Vec<(NodeId, NodeId, String)>,
    /// Messages tampered with by fault injection this round
    /// (drops + outage drops + duplications + delays).
    pub fault_events: u64,
    /// Delay-faulted messages that arrived (late) this round.
    pub late_delivered: u64,
}

/// A bounded trace of executed rounds (silent rounds produce no record).
#[derive(Debug, Clone, Default)]
pub struct RoundTrace {
    records: Vec<RoundRecord>,
    keep_payloads: bool,
    /// Hard cap on stored records, oldest dropped first (0 = unbounded).
    cap: usize,
}

impl RoundTrace {
    /// Counts and senders only.
    pub fn new() -> Self {
        RoundTrace::default()
    }

    /// Also render every message with `Debug` (verbose; small runs only).
    pub fn with_payloads() -> Self {
        RoundTrace {
            keep_payloads: true,
            ..RoundTrace::default()
        }
    }

    /// Keep at most `cap` most recent records.
    pub fn capped(mut self, cap: usize) -> Self {
        self.cap = cap;
        self
    }

    pub(crate) fn keep_payloads(&self) -> bool {
        self.keep_payloads
    }

    pub(crate) fn push(&mut self, rec: RoundRecord) {
        // Amortized O(1) eviction: let the buffer grow to 2×cap, then
        // drain the stale half in one memmove. (A `VecDeque` would evict
        // O(1) too, but `records()` hands out a contiguous `&[_]` from
        // `&self`, which a ring buffer can't do without copying.) Live
        // records are always the most recent `cap` — `records()` slices
        // them out — so the extra storage is bounded at one cap's worth.
        self.records.push(rec);
        if self.cap > 0 && self.records.len() >= self.cap * 2 {
            let excess = self.records.len() - self.cap;
            self.records.drain(..excess);
        }
    }

    /// All stored records, oldest first (at most `cap` when capped).
    pub fn records(&self) -> &[RoundRecord] {
        if self.cap > 0 && self.records.len() > self.cap {
            &self.records[self.records.len() - self.cap..]
        } else {
            &self.records
        }
    }

    /// Record for a specific round, if it was executed and retained.
    pub fn round(&self, r: Round) -> Option<&RoundRecord> {
        self.records().iter().find(|rec| rec.round == r)
    }

    /// Rounds in which `v` sent something.
    pub fn send_rounds_of(&self, v: NodeId) -> Vec<Round> {
        self.records()
            .iter()
            .filter(|rec| rec.senders.binary_search(&v).is_ok())
            .map(|rec| rec.round)
            .collect()
    }

    /// Render the trace as an aligned text block (for failure messages).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for rec in self.records() {
            out.push_str(&format!(
                "round {:>5}: {:>4} msgs from {:?}",
                rec.round, rec.messages, rec.senders
            ));
            if rec.fault_events > 0 || rec.late_delivered > 0 {
                out.push_str(&format!(
                    "  [faulted {}, late {}]",
                    rec.fault_events, rec.late_delivered
                ));
            }
            out.push('\n');
            for (f, t, p) in &rec.payloads {
                out.push_str(&format!("    {f} -> {t}: {p}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: Round, senders: Vec<NodeId>) -> RoundRecord {
        RoundRecord {
            round,
            messages: senders.len() as u64,
            senders,
            payloads: Vec::new(),
            fault_events: 0,
            late_delivered: 0,
        }
    }

    #[test]
    fn stores_and_queries() {
        let mut t = RoundTrace::new();
        t.push(rec(1, vec![0, 2]));
        t.push(rec(3, vec![2]));
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.round(3).unwrap().messages, 1);
        assert!(t.round(2).is_none());
        assert_eq!(t.send_rounds_of(2), vec![1, 3]);
        assert_eq!(t.send_rounds_of(9), Vec::<Round>::new());
    }

    #[test]
    fn cap_drops_oldest() {
        let mut t = RoundTrace::new().capped(2);
        t.push(rec(1, vec![0]));
        t.push(rec(2, vec![0]));
        t.push(rec(3, vec![0]));
        assert_eq!(t.records().len(), 2);
        assert!(t.round(1).is_none());
        assert!(t.round(3).is_some());
    }

    #[test]
    fn cap_always_yields_most_recent_window() {
        // Drive far past several drain cycles and check the visible
        // window plus the storage bound at every step.
        let cap = 7;
        let mut t = RoundTrace::new().capped(cap);
        for i in 1..=1000u64 {
            t.push(rec(i, vec![0]));
            let recs = t.records();
            let want = cap.min(i as usize);
            assert_eq!(recs.len(), want, "after {i} pushes");
            let first = i + 1 - want as u64;
            for (j, r) in recs.iter().enumerate() {
                assert_eq!(r.round, first + j as u64);
            }
            assert!(t.round(i).is_some());
            if i > cap as u64 {
                assert!(t.round(i - cap as u64).is_none());
                assert_eq!(t.send_rounds_of(0).len(), cap);
            }
            assert!(t.records.len() < cap * 2, "storage stays bounded");
        }
    }

    #[test]
    fn uncapped_trace_keeps_everything() {
        let mut t = RoundTrace::new();
        for i in 1..=100 {
            t.push(rec(i, vec![0]));
        }
        assert_eq!(t.records().len(), 100);
        assert_eq!(t.records()[0].round, 1);
    }

    #[test]
    fn renders_readably() {
        let mut t = RoundTrace::with_payloads();
        let mut r = rec(7, vec![1]);
        r.payloads.push((1, 2, "hello".into()));
        t.push(r);
        let s = t.render();
        assert!(s.contains("round     7"));
        assert!(s.contains("1 -> 2: hello"));
        assert!(!s.contains("faulted"), "fault-free rounds render clean");
    }

    #[test]
    fn renders_fault_annotations() {
        let mut t = RoundTrace::new();
        let mut r = rec(3, vec![0]);
        r.fault_events = 2;
        r.late_delivered = 1;
        t.push(r);
        assert!(t.render().contains("[faulted 2, late 1]"));
    }
}
