//! Binary wire codec for protocol messages.
//!
//! The simulator moves messages as in-memory values; the `dw-transport`
//! runtime moves them over OS channels (TCP frames, stdio lines), which
//! needs a byte encoding. [`WireCodec`] is that encoding: hand-rolled,
//! little-endian, fixed layout per type — the repo builds offline, so no
//! serde. The contract is the obvious round trip: `decode` over the
//! bytes produced by `encode` yields an equal value and consumes exactly
//! the bytes `encode` wrote (so codecs compose by concatenation, which
//! is how the tuple and [`RMsg`] impls work).
//!
//! The codec is deliberately *not* asked to be compact: conformance with
//! the simulator is byte-identity of results, and CONGEST accounting is
//! in words ([`crate::MsgSize`]), not wire bytes.

use crate::reliable::RMsg;

/// Encode/decode a message as bytes for a real transport.
pub trait WireCodec: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value from the front of `buf`, advancing it past the
    /// consumed bytes. `None` means the bytes are malformed or truncated.
    fn decode(buf: &mut &[u8]) -> Option<Self>;
}

/// Pull `N` bytes off the front of `buf`.
pub fn take_bytes<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Some(head)
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl WireCodec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(buf: &mut &[u8]) -> Option<Self> {
                let raw = take_bytes(buf, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(raw.try_into().ok()?))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64);

impl WireCodec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_buf: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl WireCodec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl<A: WireCodec, B: WireCodec> WireCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: WireCodec, B: WireCodec, C: WireCodec> WireCodec for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

impl<A: WireCodec, B: WireCodec, C: WireCodec, D: WireCodec> WireCodec for (A, B, C, D) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
        self.3.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((
            A::decode(buf)?,
            B::decode(buf)?,
            C::decode(buf)?,
            D::decode(buf)?,
        ))
    }
}

/// An `Arc<T>` encodes exactly as its payload — sharing is a memory
/// layout, not a wire concept — so snapshots holding rows by reference
/// stay byte-identical to snapshots holding them by value (the serving
/// plane's carry-forward path depends on this).
impl<T: WireCodec> WireCodec for std::sync::Arc<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_ref().encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        T::decode(buf).map(std::sync::Arc::new)
    }
}

impl<M: WireCodec> WireCodec for Option<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(m) => {
                out.push(1);
                m.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(None),
            1 => Some(Some(M::decode(buf)?)),
            _ => None,
        }
    }
}

impl<M: WireCodec> WireCodec for Vec<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for m in self {
            m.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(buf)? as usize;
        // A length prefix can claim more items than the buffer can hold;
        // cap the pre-allocation so a malformed frame cannot force a
        // huge allocation before the per-item decode fails.
        let mut out = Vec::with_capacity(len.min(buf.len()));
        for _ in 0..len {
            out.push(M::decode(buf)?);
        }
        Some(out)
    }
}

impl<M: WireCodec> WireCodec for RMsg<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RMsg::Data { seq, ack, payload } => {
                out.push(0);
                seq.encode(out);
                ack.encode(out);
                payload.encode(out);
            }
            RMsg::Ack { ack } => {
                out.push(1);
                ack.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(RMsg::Data {
                seq: u32::decode(buf)?,
                ack: u32::decode(buf)?,
                payload: M::decode(buf)?,
            }),
            1 => Some(RMsg::Ack {
                ack: u32::decode(buf)?,
            }),
            _ => None,
        }
    }
}

/// Edge updates travel on the wire too — batched into the dynamic
/// subsystem's `UpdateBatch` frames — so their codec lives here with
/// the trait. Layout: a variant tag byte, then the fields in order
/// (weightless variants simply omit the weight).
impl WireCodec for dw_graph::EdgeUpdate {
    fn encode(&self, out: &mut Vec<u8>) {
        use dw_graph::EdgeUpdate::*;
        match *self {
            Insert { src, dst, w } => {
                out.push(0);
                src.encode(out);
                dst.encode(out);
                w.encode(out);
            }
            SetWeight { src, dst, w } => {
                out.push(1);
                src.encode(out);
                dst.encode(out);
                w.encode(out);
            }
            Remove { src, dst } => {
                out.push(2);
                src.encode(out);
                dst.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        use dw_graph::EdgeUpdate::*;
        match u8::decode(buf)? {
            0 => Some(Insert {
                src: u32::decode(buf)?,
                dst: u32::decode(buf)?,
                w: u64::decode(buf)?,
            }),
            1 => Some(SetWeight {
                src: u32::decode(buf)?,
                dst: u32::decode(buf)?,
                w: u64::decode(buf)?,
            }),
            2 => Some(Remove {
                src: u32::decode(buf)?,
                dst: u32::decode(buf)?,
            }),
            _ => None,
        }
    }
}

/// Encode a value into a fresh buffer. The encoding is canonical (a
/// fixed layout per type, no padding, no map iteration order), so the
/// bytes are stable across runs — which is what lets snapshot files be
/// compared byte for byte.
pub fn to_bytes<M: WireCodec>(m: &M) -> Vec<u8> {
    let mut out = Vec::new();
    m.encode(&mut out);
    out
}

/// Decode a value that must account for the *entire* buffer — trailing
/// bytes are an error, exactly like a malformed prefix. This is the
/// contract for persisted snapshots: a file is one encoding, not a
/// stream.
pub fn from_bytes<M: WireCodec>(bytes: &[u8]) -> Option<M> {
    let mut view = bytes;
    let value = M::decode(&mut view)?;
    view.is_empty().then_some(value)
}

/// Round-trip helper for tests: encode then decode, checking the whole
/// buffer is consumed.
pub fn roundtrip<M: WireCodec>(m: &M) -> Option<M> {
    let mut bytes = Vec::new();
    m.encode(&mut bytes);
    let mut view = bytes.as_slice();
    let back = M::decode(&mut view)?;
    view.is_empty().then_some(back)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(roundtrip(&0xdead_beef_u32), Some(0xdead_beef));
        assert_eq!(roundtrip(&u64::MAX), Some(u64::MAX));
        assert_eq!(roundtrip(&true), Some(true));
        assert_eq!(roundtrip(&()), Some(()));
        assert_eq!(
            roundtrip(&(7u64, (3u32, false))),
            Some((7u64, (3u32, false)))
        );
        assert_eq!(
            roundtrip(&(1u32, 2u32, 3u64, true)),
            Some((1u32, 2u32, 3u64, true))
        );
        assert_eq!(roundtrip(&Some(9u32)), Some(Some(9u32)));
        assert_eq!(roundtrip(&None::<u64>), Some(None));
    }

    #[test]
    fn vecs_roundtrip() {
        assert_eq!(roundtrip(&Vec::<u64>::new()), Some(Vec::new()));
        let v = vec![(1u64, 2u32), (3, 4)];
        assert_eq!(roundtrip(&v), Some(v.clone()));
        let nested = vec![vec![1u8, 2], vec![], vec![9]];
        assert_eq!(roundtrip(&nested), Some(nested.clone()));
    }

    #[test]
    fn vec_with_lying_length_prefix_is_rejected() {
        let mut bytes = Vec::new();
        vec![7u64, 8].encode(&mut bytes);
        // claim 3 items but provide 2
        bytes[0] = 3;
        let mut view = bytes.as_slice();
        assert_eq!(Vec::<u64>::decode(&mut view), None);
    }

    #[test]
    fn rmsg_roundtrip() {
        let data = RMsg::Data {
            seq: 12,
            ack: 9,
            payload: 42u64,
        };
        assert_eq!(roundtrip(&data), Some(data.clone()));
        let ack: RMsg<u64> = RMsg::Ack { ack: 3 };
        assert_eq!(roundtrip(&ack), Some(ack.clone()));
    }

    #[test]
    fn edge_update_roundtrip_and_tag_rejection() {
        use dw_graph::EdgeUpdate;
        for u in [
            EdgeUpdate::Insert {
                src: 1,
                dst: 2,
                w: 9,
            },
            EdgeUpdate::SetWeight {
                src: 4,
                dst: 0,
                w: 0,
            },
            EdgeUpdate::Remove { src: 7, dst: 3 },
        ] {
            assert_eq!(roundtrip(&u), Some(u));
        }
        let mut bytes = to_bytes(&EdgeUpdate::Remove { src: 1, dst: 2 });
        bytes[0] = 9;
        assert_eq!(from_bytes::<EdgeUpdate>(&bytes), None);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut bytes = Vec::new();
        77u64.encode(&mut bytes);
        let mut short = &bytes[..5];
        assert_eq!(u64::decode(&mut short), None);
        let mut bad_bool = &[7u8][..];
        assert_eq!(bool::decode(&mut bad_bool), None);
    }

    #[test]
    fn decode_consumes_exactly_the_encoding() {
        let mut bytes = Vec::new();
        (1u32, 2u64).encode(&mut bytes);
        9u8.encode(&mut bytes);
        let mut view = bytes.as_slice();
        assert_eq!(<(u32, u64)>::decode(&mut view), Some((1, 2)));
        assert_eq!(u8::decode(&mut view), Some(9));
        assert!(view.is_empty());
    }
}
