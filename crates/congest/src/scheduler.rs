//! Random-delay composition of many protocol instances over shared links.
//!
//! The paper (Section II-C) runs `n` independent short-range executions
//! simultaneously using the scheduling framework of Ghaffari \[10\]: a
//! collection of algorithms with dilation `d` and per-algorithm congestion
//! `c` can be executed together in `O(c·k + d)`-ish rounds by giving each
//! instance a random start offset and resolving residual collisions.
//!
//! This module implements that mechanism concretely: each instance gets a
//! seeded random start delay; in every *global* round each due instance
//! tries to execute its next *local* round; if any link it needs is already
//! taken this global round by a higher-priority instance, the whole
//! instance **stalls** (its schedule shifts by one global round, preserving
//! its internal synchrony exactly). Priorities are a seeded random
//! permutation, so the highest-priority due instance always makes progress.
//!
//! Local rounds in which an instance provably sends nothing (via
//! [`Protocol::earliest_send`]) are skipped for free, and globally silent
//! stretches are fast-forwarded — both still count toward the reported
//! round totals.

use crate::engine::EngineConfig;
use crate::fault::FaultAction;
use crate::message::{Envelope, MsgSize};
use crate::outbox::{Outbox, SendOp};
use crate::protocol::{NodeCtx, Protocol, Round};
use crate::slab::{Slab, SlabRef};
use dw_graph::{NodeId, WGraph};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Outcome of a scheduled multi-instance run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Global rounds until the last message of the last instance.
    pub global_rounds: u64,
    /// Per-instance stall counts (collisions absorbed).
    pub stalls: Vec<u64>,
    /// Per-instance start offsets that were drawn.
    pub offsets: Vec<u64>,
    /// Total messages across all instances.
    pub messages: u64,
    /// Maximum total load on any directed link.
    pub max_link_load: u64,
    /// Messages destroyed by fault injection (random loss + outages).
    pub dropped: u64,
    /// Messages duplicated by fault injection.
    pub duplicated: u64,
}

struct Instance<P: Protocol> {
    nodes: Vec<P>,
    /// Completed local rounds.
    local_round: Round,
    start: u64,
    stall: u64,
    /// Cached earliest local send round per node (`Round::MAX` = dormant).
    /// Same active-set machinery as the engine: refreshed only for nodes
    /// that were polled or received, valid under the `earliest_send`
    /// soundness + stability contract.
    node_next: Vec<Round>,
    /// Lazy min-heap over `(node_next[v], v)`; entries whose round no
    /// longer matches `node_next` are discarded at pop time.
    heap: BinaryHeap<Reverse<(Round, NodeId)>>,
}

impl<P: Protocol> Instance<P> {
    /// Earliest local round (> local_round) with a potential send, or None
    /// if the instance is quiet. `&mut` because stale heap tops are
    /// discarded on the way.
    fn next_active(&mut self) -> Option<Round> {
        while let Some(&Reverse((r, v))) = self.heap.peek() {
            if self.node_next[v as usize] == r {
                return Some(r);
            }
            self.heap.pop();
        }
        None
    }

    fn due_global(&mut self) -> Option<u64> {
        let (start, stall) = (self.start, self.stall);
        self.next_active().map(|la| start + stall + la)
    }

    /// Pop the nodes due at local round `local` into `due` (sorted,
    /// deduped).
    fn pop_due(&mut self, local: Round, due: &mut Vec<NodeId>) {
        due.clear();
        while let Some(&Reverse((r, v))) = self.heap.peek() {
            if r > local {
                break;
            }
            self.heap.pop();
            if self.node_next[v as usize] == r {
                due.push(v);
            }
        }
        due.sort_unstable();
        due.dedup();
    }

    /// Re-query `earliest_send` for node `v` after local round `local`
    /// and reinstall its schedule entry.
    fn refresh_node(&mut self, g: &WGraph, v: NodeId, local: Round) {
        let i = v as usize;
        match self.nodes[i].earliest_send(local + 1, &NodeCtx::new(v, g)) {
            Some(r) => {
                debug_assert!(r > local, "earliest_send must be in the future");
                self.node_next[i] = r;
                self.heap.push(Reverse((r, v)));
            }
            None => self.node_next[i] = Round::MAX,
        }
    }
}

/// Run `instances` (each a full per-node program vector) over the shared
/// communication graph `g`. Returns the final node programs of each
/// instance plus scheduling statistics.
///
/// `max_offset` is the window for the random start delays (Ghaffari's
/// framework draws delays proportional to the total congestion).
///
/// Fault injection: if `cfg.faults` is set, every committed transmission
/// is subjected to the plan keyed by the **global** round (stalled retries
/// draw fresh decisions). Drop, outage and duplicate faults are supported;
/// delay faults are rejected — a delayed delivery would cross instance
/// stall boundaries, which the schedule abstraction cannot express.
pub fn schedule_instances<P>(
    g: &WGraph,
    instances: Vec<Vec<P>>,
    cfg: &EngineConfig,
    seed: u64,
    max_offset: u64,
    max_global_rounds: u64,
) -> (Vec<Vec<P>>, ScheduleStats)
where
    P: Protocol + Clone,
    P::Msg: Clone,
{
    let n = g.n();
    let k = instances.len();
    let fault_plan = cfg.faults.as_ref();
    if let Some(plan) = fault_plan {
        assert!(
            !plan.has_delays(),
            "the multi-instance scheduler does not support delay faults"
        );
    }
    let mut fault_dropped = 0u64;
    let mut fault_duplicated = 0u64;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut priority: Vec<usize> = (0..k).collect();
    priority.shuffle(&mut rng);

    let mut insts: Vec<Instance<P>> = instances
        .into_iter()
        .map(|mut nodes| {
            assert_eq!(nodes.len(), n, "instance must have one program per node");
            for (v, node) in nodes.iter_mut().enumerate() {
                node.init(&NodeCtx::new(v as NodeId, g));
            }
            let mut node_next = vec![Round::MAX; n];
            let mut heap = BinaryHeap::new();
            for (v, node) in nodes.iter().enumerate() {
                if let Some(r) = node.earliest_send(1, &NodeCtx::new(v as NodeId, g)) {
                    debug_assert!(r >= 1, "earliest_send must be >= after");
                    node_next[v] = r;
                    heap.push(Reverse((r, v as NodeId)));
                }
            }
            Instance {
                nodes,
                local_round: 0,
                start: if max_offset == 0 {
                    0
                } else {
                    rng.gen_range(0..=max_offset)
                },
                stall: 0,
                node_next,
                heap,
            }
        })
        .collect();

    // Per-link bookkeeping shared across instances.
    let mut link_offset = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    link_offset.push(0);
    for v in 0..n as NodeId {
        acc += g.comm_neighbors(v).len();
        link_offset.push(acc);
    }
    let link_id = |u: NodeId, v: NodeId| -> usize {
        let rank = g
            .comm_neighbors(u)
            .binary_search(&v)
            .unwrap_or_else(|_| panic!("protocol bug: {u} sent to non-neighbor {v}"));
        link_offset[u as usize] + rank
    };
    let mut link_stamp: Vec<u64> = vec![u64::MAX; acc];
    let mut link_load: Vec<u64> = vec![0; acc];

    let mut global: u64 = 0;
    let mut last_activity: u64 = 0;
    let mut messages: u64 = 0;
    let mut stats_stalls = vec![0u64; k];
    // Inboxes live in a recycled slab: a node holds a buffer only between
    // its first delivery of a committed round and its receive, so resident
    // memory tracks the per-round receiver set across all instances, not
    // `k * n`. The first delivery doubles as the receiver-set insert.
    let mut slab: Slab<Envelope<P::Msg>> = Slab::new();
    let mut inbox_ref: Vec<SlabRef> = vec![SlabRef::NONE; n];

    let mut due_nodes: Vec<NodeId> = Vec::new();
    let mut receivers: Vec<NodeId> = Vec::new();

    // First delivery of a committed round acquires the slot and records
    // the receiver; later deliveries append to the held buffer.
    fn inbox_of<'a, M>(
        slab: &'a mut Slab<Envelope<M>>,
        inbox_ref: &mut [SlabRef],
        receivers: &mut Vec<NodeId>,
        v: NodeId,
    ) -> &'a mut Vec<Envelope<M>> {
        let i = v as usize;
        if inbox_ref[i] == SlabRef::NONE {
            inbox_ref[i] = slab.acquire();
            receivers.push(v);
        }
        slab.get_mut(inbox_ref[i])
    }

    loop {
        // Fast-forward to the earliest due instance.
        let next_due = insts.iter_mut().filter_map(|i| i.due_global()).min();
        let Some(next_due) = next_due else { break };
        if next_due > max_global_rounds {
            break;
        }
        global = next_due.max(global + 1);

        for &ii in &priority {
            let due = insts[ii].due_global();
            if due != Some(global) {
                // Not this instance's active round. If its next active local
                // round is still in the future, its local clock simply
                // advances with global time (silent local rounds are free).
                continue;
            }
            let local = global - insts[ii].start - insts[ii].stall;

            // Tentatively execute local round `local` on clones of the due
            // nodes only (any other node's `earliest_send` proves it
            // silent this round, so cloning it would be wasted work).
            insts[ii].pop_due(local, &mut due_nodes);
            let mut clones: Vec<(NodeId, P)> = due_nodes
                .iter()
                .map(|&v| (v, insts[ii].nodes[v as usize].clone()))
                .collect();
            let mut all_ops: Vec<(NodeId, Vec<SendOp<P::Msg>>)> = Vec::new();
            for (v, node) in clones.iter_mut() {
                let mut out = Outbox::new();
                node.send(local, &NodeCtx::new(*v, g), &mut out);
                let ops: Vec<_> = out.drain().collect();
                if !ops.is_empty() {
                    all_ops.push((*v, ops));
                }
            }

            // Collect required links; detect collisions with this global
            // round's committed sends.
            let mut needed: Vec<usize> = Vec::new();
            let mut conflict = false;
            'outer: for (u, ops) in &all_ops {
                for op in ops {
                    match op {
                        SendOp::Broadcast(_) => {
                            for &v in g.comm_neighbors(*u) {
                                let lid = link_id(*u, v);
                                assert!(
                                    !needed.contains(&lid),
                                    "protocol bug: instance double-sent over {u}->{v}"
                                );
                                if link_stamp[lid] == global {
                                    conflict = true;
                                    break 'outer;
                                }
                                needed.push(lid);
                            }
                        }
                        SendOp::Unicast(v, _) => {
                            let lid = link_id(*u, *v);
                            assert!(
                                !needed.contains(&lid),
                                "protocol bug: instance double-sent over {u}->{v}"
                            );
                            if link_stamp[lid] == global {
                                conflict = true;
                                break 'outer;
                            }
                            needed.push(lid);
                        }
                    }
                }
            }

            if conflict {
                // Discard the clones and retry next global round. The
                // popped schedule entries are still accurate (the real
                // nodes were not touched), so reinstall them.
                insts[ii].stall += 1;
                stats_stalls[ii] += 1;
                for &v in &due_nodes {
                    let r = insts[ii].node_next[v as usize];
                    debug_assert!(r != Round::MAX);
                    insts[ii].heap.push(Reverse((r, v)));
                }
                continue;
            }

            // Commit: stamp links, deliver, receive.
            let mut sent = 0u64;
            receivers.clear();
            for (u, ops) in all_ops {
                for op in ops {
                    match op {
                        SendOp::Broadcast(m) => {
                            assert!(
                                m.size_words() <= cfg.max_words,
                                "protocol bug: oversized message from {u}"
                            );
                            // One payload allocation shared across all
                            // recipients, as in the engine's delivery path.
                            let payload = Arc::new(m);
                            for &v in g.comm_neighbors(u) {
                                let lid = link_id(u, v);
                                link_stamp[lid] = global;
                                link_load[lid] += 1;
                                sent += 1;
                                match fault_plan
                                    .map_or(FaultAction::Deliver, |p| p.decide(u, v, global))
                                {
                                    FaultAction::Deliver => {
                                        inbox_of(&mut slab, &mut inbox_ref, &mut receivers, v)
                                            .push(Envelope::shared(u, Arc::clone(&payload)));
                                    }
                                    FaultAction::Drop | FaultAction::OutageDrop => {
                                        fault_dropped += 1;
                                    }
                                    FaultAction::Duplicate => {
                                        let inbox =
                                            inbox_of(&mut slab, &mut inbox_ref, &mut receivers, v);
                                        inbox.push(Envelope::shared(u, Arc::clone(&payload)));
                                        inbox.push(Envelope::shared(u, Arc::clone(&payload)));
                                        fault_duplicated += 1;
                                    }
                                    FaultAction::Delay(_) => {
                                        unreachable!("delay faults rejected above")
                                    }
                                }
                            }
                        }
                        SendOp::Unicast(v, m) => {
                            assert!(
                                m.size_words() <= cfg.max_words,
                                "protocol bug: oversized message from {u}"
                            );
                            let lid = link_id(u, v);
                            link_stamp[lid] = global;
                            link_load[lid] += 1;
                            sent += 1;
                            match fault_plan
                                .map_or(FaultAction::Deliver, |p| p.decide(u, v, global))
                            {
                                FaultAction::Deliver => {
                                    inbox_of(&mut slab, &mut inbox_ref, &mut receivers, v)
                                        .push(Envelope::new(u, m));
                                }
                                FaultAction::Drop | FaultAction::OutageDrop => {
                                    fault_dropped += 1;
                                }
                                FaultAction::Duplicate => {
                                    let inbox =
                                        inbox_of(&mut slab, &mut inbox_ref, &mut receivers, v);
                                    inbox.push(Envelope::new(u, m.clone()));
                                    inbox.push(Envelope::new(u, m));
                                    fault_duplicated += 1;
                                }
                                FaultAction::Delay(_) => {
                                    unreachable!("delay faults rejected above")
                                }
                            }
                        }
                    }
                }
            }
            if sent > 0 {
                last_activity = global;
                messages += sent;
            }
            // Install the polled clones, then run receive on the real
            // nodes and refresh the schedule for polled ∪ received.
            for (v, node) in clones {
                insts[ii].nodes[v as usize] = node;
            }
            insts[ii].local_round = local;
            let inst = &mut insts[ii];
            // One receivers entry per node (inserted on slot acquire), so
            // a sort restores the deterministic id order without a dedup.
            receivers.sort_unstable();
            for &v in &receivers {
                let i = v as usize;
                inst.nodes[i].receive(local, slab.get(inbox_ref[i]), &NodeCtx::new(v, g));
                slab.release(inbox_ref[i]);
                inbox_ref[i] = SlabRef::NONE;
                inst.refresh_node(g, v, local);
            }
            for &v in &due_nodes {
                // A polled node that also received was refreshed above;
                // refreshing again with the same arguments is idempotent.
                inst.refresh_node(g, v, local);
            }
        }
    }

    let stats = ScheduleStats {
        global_rounds: last_activity,
        stalls: stats_stalls,
        offsets: insts.iter().map(|i| i.start).collect(),
        messages,
        max_link_load: link_load.iter().copied().max().unwrap_or(0),
        dropped: fault_dropped,
        duplicated: fault_duplicated,
    };
    (insts.into_iter().map(|i| i.nodes).collect(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_graph::gen::{self, WeightDist};

    /// A toy single-source flood that records hop distance from its source.
    #[derive(Clone)]
    struct Flood {
        source: NodeId,
        dist: Option<u64>,
        announced: bool,
    }

    impl Protocol for Flood {
        type Msg = u64;

        fn init(&mut self, ctx: &NodeCtx) {
            if ctx.id == self.source {
                self.dist = Some(0);
            }
        }

        fn send(&mut self, _round: Round, _ctx: &NodeCtx, out: &mut Outbox<u64>) {
            if let (Some(d), false) = (self.dist, self.announced) {
                self.announced = true;
                out.broadcast(d);
            }
        }

        fn receive(&mut self, _round: Round, inbox: &[Envelope<u64>], _ctx: &NodeCtx) {
            for e in inbox {
                let cand = *e.msg() + 1;
                if self.dist.is_none_or(|d| cand < d) {
                    self.dist = Some(cand);
                    self.announced = false;
                }
            }
        }

        fn earliest_send(&self, after: Round, _ctx: &NodeCtx) -> Option<Round> {
            if self.dist.is_some() && !self.announced {
                Some(after)
            } else {
                None
            }
        }
    }

    fn hop_dists(g: &WGraph, s: NodeId) -> Vec<u64> {
        let mut dist = vec![u64::MAX; g.n()];
        dist[s as usize] = 0;
        let mut q = std::collections::VecDeque::from([s]);
        while let Some(v) = q.pop_front() {
            for &u in g.comm_neighbors(v) {
                if dist[u as usize] == u64::MAX {
                    dist[u as usize] = dist[v as usize] + 1;
                    q.push_back(u);
                }
            }
        }
        dist
    }

    #[test]
    fn k_floods_all_correct_under_sharing() {
        let g = gen::gnp_connected(24, 0.1, false, WeightDist::Constant(1), 7);
        let k = 6;
        let instances: Vec<Vec<Flood>> = (0..k)
            .map(|s| {
                (0..g.n())
                    .map(|_| Flood {
                        source: s as NodeId * 3,
                        dist: None,
                        announced: false,
                    })
                    .collect()
            })
            .collect();
        let (finished, st) =
            schedule_instances(&g, instances, &EngineConfig::default(), 42, 8, 100_000);
        for (i, inst) in finished.iter().enumerate() {
            let s = (i as NodeId) * 3;
            let expect = hop_dists(&g, s);
            let got: Vec<u64> = inst.iter().map(|f| f.dist.unwrap()).collect();
            assert_eq!(got, expect, "instance {i}");
        }
        assert!(st.global_rounds > 0);
        assert_eq!(st.offsets.len(), k);
    }

    #[test]
    fn zero_offset_single_instance_matches_engine() {
        let g = gen::path(8, false, WeightDist::Constant(1), 0);
        let instances = vec![(0..g.n())
            .map(|_| Flood {
                source: 0,
                dist: None,
                announced: false,
            })
            .collect::<Vec<_>>()];
        let (finished, st) =
            schedule_instances(&g, instances, &EngineConfig::default(), 1, 0, 10_000);
        let got: Vec<u64> = finished[0].iter().map(|f| f.dist.unwrap()).collect();
        assert_eq!(got, (0..8).map(|i| i as u64).collect::<Vec<_>>());
        // same as the plain engine: farthest node announces in round 8
        assert_eq!(st.global_rounds, 8);
        assert_eq!(st.stalls, vec![0]);
    }

    #[test]
    fn collisions_cause_stalls_not_errors() {
        // Star: every flood's first broadcast leaves the center or enters
        // it; many instances with offset window 0 must serialize.
        let g = gen::star(8, false, WeightDist::Constant(1), 0);
        let k = 5;
        let instances: Vec<Vec<Flood>> = (0..k)
            .map(|s| {
                (0..g.n())
                    .map(|_| Flood {
                        source: s as NodeId,
                        dist: None,
                        announced: false,
                    })
                    .collect()
            })
            .collect();
        let (finished, st) =
            schedule_instances(&g, instances, &EngineConfig::default(), 3, 0, 100_000);
        let total_stalls: u64 = st.stalls.iter().sum();
        assert!(total_stalls > 0, "star with zero offsets must collide");
        for (i, inst) in finished.iter().enumerate() {
            let expect = hop_dists(&g, i as NodeId);
            let got: Vec<u64> = inst.iter().map(|f| f.dist.unwrap()).collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn offsets_reduce_stalls() {
        let g = gen::star(10, false, WeightDist::Constant(1), 0);
        let build = || -> Vec<Vec<Flood>> {
            (0..6)
                .map(|s| {
                    (0..g.n())
                        .map(|_| Flood {
                            source: s as NodeId,
                            dist: None,
                            announced: false,
                        })
                        .collect()
                })
                .collect()
        };
        let (_, tight) = schedule_instances(&g, build(), &EngineConfig::default(), 5, 0, 100_000);
        let (_, spread) = schedule_instances(&g, build(), &EngineConfig::default(), 5, 64, 100_000);
        assert!(
            spread.stalls.iter().sum::<u64>() <= tight.stalls.iter().sum::<u64>(),
            "random offsets should not increase collisions on a star"
        );
    }
}
