//! Per-node send buffer for one round.

use dw_graph::NodeId;

/// One send instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendOp<M> {
    /// Same message on every incident link (the common case in the paper's
    /// algorithms: "send M to all neighbors").
    Broadcast(M),
    /// Message on the single link to `dst` (used by tree-structured
    /// protocols: broadcast down children, convergecast to parent).
    Unicast(NodeId, M),
}

/// Collects the messages a node emits in one round. The engine validates
/// the CONGEST constraints (one message per link, word budget) when it
/// drains the outbox.
#[derive(Debug)]
pub struct Outbox<M> {
    ops: Vec<SendOp<M>>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox { ops: Vec::new() }
    }
}

impl<M> Outbox<M> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Send `msg` over every incident link.
    pub fn broadcast(&mut self, msg: M) {
        self.ops.push(SendOp::Broadcast(msg));
    }

    /// Send `msg` over the link to neighbor `dst`.
    pub fn unicast(&mut self, dst: NodeId, msg: M) {
        self.ops.push(SendOp::Unicast(dst, msg));
    }

    /// Send `msg` to each of `dsts` (one link each).
    pub fn multicast(&mut self, dsts: impl IntoIterator<Item = NodeId>, msg: M)
    where
        M: Clone,
    {
        for d in dsts {
            self.ops.push(SendOp::Unicast(d, msg.clone()));
        }
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub(crate) fn drain(&mut self) -> std::vec::Drain<'_, SendOp<M>> {
        self.ops.drain(..)
    }

    /// Move the buffered ops out (engine delivery path). Pair with
    /// [`Outbox::restore`] to hand the allocation back so the per-node
    /// outboxes reach a steady state with no per-round allocation.
    pub(crate) fn take_ops(&mut self) -> Vec<SendOp<M>> {
        std::mem::take(&mut self.ops)
    }

    /// Return a drained ops buffer, keeping its capacity for the next
    /// round.
    pub(crate) fn restore(&mut self, mut ops: Vec<SendOp<M>>) {
        ops.clear();
        self.ops = ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_ops_in_order() {
        let mut o: Outbox<u64> = Outbox::new();
        assert!(o.is_empty());
        o.broadcast(1);
        o.unicast(3, 2);
        o.multicast([4, 5], 9);
        assert_eq!(o.len(), 4);
        let ops: Vec<_> = o.drain().collect();
        assert_eq!(
            ops,
            vec![
                SendOp::Broadcast(1),
                SendOp::Unicast(3, 2),
                SendOp::Unicast(4, 9),
                SendOp::Unicast(5, 9)
            ]
        );
        assert!(o.is_empty());
    }
}
