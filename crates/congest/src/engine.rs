//! The synchronous round engine.
//!
//! Two scheduling modes drive the same round semantics:
//!
//! * [`SchedulingMode::ActiveSet`] (default) — the engine keeps a cached
//!   next-send round per node (fed by [`Protocol::earliest_send`]) in a
//!   lazy min-heap and, each executed round, polls only nodes that are due
//!   plus nodes woken by a receive. Quiet-round fast-forward is a heap
//!   peek instead of an O(n) scan.
//! * [`SchedulingMode::ExhaustivePoll`] — the original engine: every node
//!   is polled every executed round. Kept as the behavioral reference; the
//!   conformance suite proves both modes bit-identical (`RunStats`,
//!   traces, distances), which is what the `earliest_send` soundness +
//!   stability contract guarantees.
//!
//! Per-node execution (send validation, CONGEST accounting) lives in
//! [`crate::runner::NodeRunner`], shared with the `dw-transport`
//! message-passing runtime; this module owns only what is global to a
//! lockstep simulation: the poll set, delivery into in-memory inboxes
//! (where fault decisions are applied), and quiet-round fast-forward.
//!
//! Hot paths are allocation-free in steady state: per-node [`Outbox`]
//! buffers are reused round to round, inboxes live in a recycled
//! [`Slab`] (a node holds a buffer only between its first delivery and
//! its receive, so resident memory tracks the per-round dirty set, not
//! `n`), delivery marks a dirty-inbox list so the receive phase and the
//! late-delivery sort touch only mailboxes that actually got mail, and a
//! broadcast allocates its payload exactly once (shared via `Arc` with
//! index-only fan-out — no per-recipient clone). The parallel phases run
//! on a persistent [`WorkerPool`] with chunk-ordered writes into
//! disjoint slots, replacing per-round thread spawns.
//!
//! For scale, the active-set schedule is **sharded**: nodes are split
//! into contiguous chunks (aligned with the worker-pool partitions),
//! each with its own lazy min-heap, so the schedule refresh — the
//! per-round `earliest_send` queries — parallelizes with disjoint
//! writes. Soundness is unchanged: each shard's heap maintains the exact
//! invariant the global heap did, restricted to its node range, and the
//! due set is the (sorted) union of the per-shard pops, which is the
//! same set the global heap would pop. A **density fallback** switches
//! to exhaustive polling while almost every node is active each round
//! (see [`EngineConfig::dense_poll_fraction`]): polling a node early is
//! a no-op under the `earliest_send` contract, so the fallback is
//! bit-identical while skipping all heap bookkeeping on dense rounds.

use crate::slab::{Slab, SlabRef};

use crate::fault::{FaultAction, FaultPlan};
use crate::message::Envelope;
use crate::metrics::RunStats;
use crate::pool::{Ptr, WorkerPool};
use crate::protocol::{Protocol, Round};
use crate::runner::{NodeRunner, SendSink};
use dw_graph::{NodeId, WGraph};
use dw_obs::Recorder;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

/// How the engine decides which nodes to poll in an executed round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingMode {
    /// Poll only nodes whose cached `earliest_send` is due, plus nodes
    /// woken by a receive. Requires the soundness/stability contract on
    /// [`Protocol::earliest_send`] (which the default conservative
    /// implementation satisfies trivially).
    ActiveSet,
    /// Poll every node every executed round (the original engine).
    /// Reference implementation for conformance testing.
    ExhaustivePoll,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Per-message word budget (a word = one `O(log n)`-bit quantity).
    /// Exceeding it is a protocol bug and panics.
    pub max_words: usize,
    /// Enforce at most one message per directed link per round (the CONGEST
    /// bandwidth constraint). Always leave on; exposed for the failure
    /// injection tests.
    pub enforce_link_capacity: bool,
    /// Use the thread-parallel send/receive phases when the number of
    /// nodes scheduled in a round (active senders, resp. dirty inboxes)
    /// is at least this threshold. `usize::MAX` disables parallelism.
    /// Under [`SchedulingMode::ActiveSet`] this counts *active* nodes,
    /// not `n` — idle-heavy workloads stay on the cheap sequential path
    /// even on huge graphs.
    pub parallel_threshold: usize,
    /// Worker threads for the parallel phases (the calling thread counts
    /// toward this number; the persistent pool holds `threads - 1`).
    pub threads: usize,
    /// Node polling strategy; see [`SchedulingMode`].
    pub scheduling: SchedulingMode,
    /// Number of contiguous node chunks the active-set schedule is
    /// sharded into (each with its own lazy min-heap, enabling a
    /// disjoint-write parallel schedule refresh). `0` means auto: one
    /// shard per worker thread. Any value yields bit-identical runs —
    /// this is a layout knob, not a semantic one.
    pub schedule_shards: usize,
    /// Density fallback threshold for [`SchedulingMode::ActiveSet`]:
    /// when the due set of a round reaches this fraction of `n`, the
    /// engine stops maintaining the schedule heaps and polls every node
    /// (heap bookkeeping is pure overhead when nearly everyone is active
    /// — the BENCH_5 e2 regression). It returns to heap scheduling — via
    /// a full `earliest_send` rescan — once the fraction of nodes that
    /// actually *sent* drops below half this threshold (hysteresis, so
    /// workloads hovering at the boundary don't thrash). Polling a node
    /// before its due round is a no-op under the `earliest_send`
    /// contract, so both transitions are bit-identical to never
    /// switching. Set above `1.0` to disable.
    pub dense_poll_fraction: f64,
    /// Optional deterministic fault injection (see [`crate::fault`]).
    /// `None` leaves the delivery path byte-identical to the fault-free
    /// engine.
    pub faults: Option<FaultPlan>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_words: 8,
            enforce_link_capacity: true,
            parallel_threshold: 1024,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            scheduling: SchedulingMode::ActiveSet,
            schedule_shards: 0,
            dense_poll_fraction: 0.5,
            faults: None,
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// No node will ever send again: the protocol has converged.
    Quiet,
    /// The round budget was exhausted before the protocol went quiet.
    BudgetExhausted,
}

/// Delay-faulted messages held back by the engine, keyed by due round;
/// each entry is (recipient, envelope).
type DelayedQueue<M> = BTreeMap<Round, Vec<(NodeId, Envelope<M>)>>;

/// Tally of fault decisions that tampered with a message.
#[derive(Debug, Clone, Default)]
struct FaultTally {
    dropped: u64,
    outage_dropped: u64,
    duplicated: u64,
    delayed: u64,
    late_delivered: u64,
}

impl FaultTally {
    /// Tampering events excluding late deliveries (those are the delayed
    /// messages arriving, not new decisions).
    fn events(&self) -> u64 {
        self.dropped + self.outage_dropped + self.duplicated + self.delayed
    }
}

/// The simulator's [`SendSink`]: applies fault decisions and pushes
/// envelopes straight into the recipients' slab-backed inboxes.
struct EngineSink<'a, M> {
    slab: &'a mut Slab<Envelope<M>>,
    inbox_ref: &'a mut [SlabRef],
    dirty: &'a mut Vec<NodeId>,
    inbox_mark: &'a mut [Round],
    pending: &'a mut DelayedQueue<M>,
    faults: Option<&'a FaultPlan>,
    tally: &'a mut FaultTally,
    round: Round,
    on_msg: &'a mut dyn FnMut(NodeId, NodeId, &M),
}

impl<M: Clone> EngineSink<'_, M> {
    /// The inbox buffer for `v`, acquiring a slab slot on the first
    /// delivery of the round (which also marks `v` dirty — at most one
    /// `dirty` entry per node per round).
    #[inline]
    fn inbox_of(&mut self, v: NodeId) -> &mut Vec<Envelope<M>> {
        let i = v as usize;
        if self.inbox_mark[i] != self.round {
            self.inbox_mark[i] = self.round;
            self.dirty.push(v);
            self.inbox_ref[i] = self.slab.acquire();
        }
        self.slab.get_mut(self.inbox_ref[i])
    }

    /// The sender occupied the link either way; only delivery is faulted.
    fn deliver(&mut self, u: NodeId, v: NodeId, env: Envelope<M>) {
        let Some(plan) = self.faults else {
            self.inbox_of(v).push(env);
            return;
        };
        match plan.decide(u, v, self.round) {
            FaultAction::Deliver => {
                self.inbox_of(v).push(env);
            }
            FaultAction::Drop => {
                self.tally.dropped += 1;
            }
            FaultAction::OutageDrop => {
                self.tally.outage_dropped += 1;
            }
            FaultAction::Duplicate => {
                let inbox = self.inbox_of(v);
                inbox.push(env.clone());
                inbox.push(env);
                self.tally.duplicated += 1;
            }
            FaultAction::Delay(d) => {
                self.pending
                    .entry(self.round + d)
                    .or_default()
                    .push((v, env));
                self.tally.delayed += 1;
            }
        }
    }
}

impl<M: Clone> SendSink<M> for EngineSink<'_, M> {
    fn unicast(&mut self, from: NodeId, _rank: usize, to: NodeId, msg: M, _words: usize) {
        (self.on_msg)(from, to, &msg);
        self.deliver(from, to, Envelope::new(from, msg));
    }

    fn broadcast(&mut self, from: NodeId, nbrs: &[NodeId], msg: M, _words: usize) {
        // Zero-copy means "never duplicate a heap payload per recipient",
        // not "always share". Word-sized plain-old-data messages
        // (`needs_drop` = false guarantees the clone is a flat memcpy)
        // are cheaper to copy than to share: an `Arc` costs an allocation
        // per broadcast plus two atomics per delivery, which dense
        // small-message workloads (BENCH `dense_ping`) pay millions of
        // times per run. Both conditions are compile-time constants, so
        // each monomorphization keeps exactly one arm.
        if !std::mem::needs_drop::<M>() && std::mem::size_of::<M>() <= 32 {
            for &v in nbrs {
                (self.on_msg)(from, v, &msg);
                self.deliver(from, v, Envelope::new(from, msg.clone()));
            }
            return;
        }
        // The payload owns heap memory (or is large): allocate it exactly
        // once and fan out `(from, Arc)` envelopes — no per-recipient
        // clone of the message itself.
        let payload = Arc::new(msg);
        for &v in nbrs {
            (self.on_msg)(from, v, &payload);
            self.deliver(from, v, Envelope::shared(from, Arc::clone(&payload)));
        }
    }
}

/// A network of `n` nodes running the same protocol type.
pub struct Network<'g, P: Protocol> {
    g: &'g WGraph,
    cfg: EngineConfig,
    runners: Vec<NodeRunner<P>>,
    round: Round,
    /// Recycled inbox buffers; a node holds a slot only between its first
    /// delivery of a round and its receive.
    slab: Slab<Envelope<P::Msg>>,
    /// Per-node handle into `slab` (`SlabRef::NONE` when idle).
    inbox_ref: Vec<SlabRef>,
    /// Authoritative cached next-send round per node; `Round::MAX` means
    /// dormant (will not send until woken by a receive).
    next_send: Vec<Round>,
    /// Per-shard lazy min-heaps over `(next_send[v], v)`, shard `s`
    /// covering node ids `[s * shard_size, (s+1) * shard_size)`. An entry
    /// is valid iff its round still equals `next_send[v]`; stale entries
    /// are discarded at pop time.
    heaps: Vec<BinaryHeap<Reverse<(Round, NodeId)>>>,
    /// Nodes per schedule shard (the last shard may be short).
    shard_size: usize,
    /// Density fallback engaged: poll everyone, skip heap bookkeeping.
    dense_mode: bool,
    /// Scratch: nodes polled this round (sorted, deduped).
    active_scratch: Vec<NodeId>,
    /// Scratch: nodes whose inbox got mail this round.
    dirty: Vec<NodeId>,
    /// Round stamp deduplicating `dirty` pushes.
    inbox_mark: Vec<Round>,
    /// Per-node "sent something this round" flag, consumed by the
    /// schedule refresh (sender-stays-hot fast path).
    sent_flag: Vec<bool>,
    /// Persistent workers for the parallel phases (created on first use).
    pool: Option<WorkerPool>,
    last_activity: Round,
    rounds_executed: u64,
    max_round_messages: u64,
    /// Delay-faulted messages awaiting delivery, keyed by due round.
    pending: DelayedQueue<P::Msg>,
    tally: FaultTally,
}

impl<'g, P: Protocol> Network<'g, P> {
    /// Build a network over communication graph `g`, with node `v` running
    /// `make(v)`. Calls [`Protocol::init`] on every node (round 0).
    pub fn new(g: &'g WGraph, cfg: EngineConfig, mut make: impl FnMut(NodeId) -> P) -> Self {
        let n = g.n();
        let mut runners: Vec<NodeRunner<P>> = (0..n as NodeId)
            .map(|v| NodeRunner::new(v, g, make(v)))
            .collect();
        for r in runners.iter_mut() {
            r.init(g);
        }
        // Schedule shard layout: `0` shards means one per worker thread.
        // Any layout is bit-identical (the due set is the sorted union of
        // per-shard pops either way), so this only affects parallelism.
        let want = if cfg.schedule_shards == 0 {
            cfg.threads
        } else {
            cfg.schedule_shards
        };
        let shards = want.clamp(1, n.max(1));
        let shard_size = n.div_ceil(shards).max(1);
        let heap_count = if n == 0 { 1 } else { (n - 1) / shard_size + 1 };
        let mut heaps: Vec<BinaryHeap<Reverse<(Round, NodeId)>>> =
            (0..heap_count).map(|_| BinaryHeap::new()).collect();
        // Seed the active-set schedule from the post-init node states.
        let mut next_send = vec![Round::MAX; n];
        if cfg.scheduling == SchedulingMode::ActiveSet {
            for (v, runner) in runners.iter().enumerate() {
                if let Some(r) = runner.earliest_send(1, g) {
                    debug_assert!(r >= 1, "earliest_send must be >= after");
                    next_send[v] = r;
                    heaps[v / shard_size].push(Reverse((r, v as NodeId)));
                }
            }
        }
        Network {
            g,
            cfg,
            runners,
            round: 0,
            slab: Slab::new(),
            inbox_ref: vec![SlabRef::NONE; n],
            next_send,
            heaps,
            shard_size,
            dense_mode: false,
            active_scratch: Vec::new(),
            dirty: Vec::new(),
            inbox_mark: vec![0; n],
            sent_flag: vec![false; n],
            pool: None,
            last_activity: 0,
            rounds_executed: 0,
            max_round_messages: 0,
            pending: BTreeMap::new(),
            tally: FaultTally::default(),
        }
    }

    /// Last completed round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Immutable access to node `v`'s program (for result extraction and
    /// test instrumentation; a real deployment would read local state the
    /// same way).
    pub fn node(&self, v: NodeId) -> &P {
        self.runners[v as usize].node()
    }

    /// Iterate over all node programs in id order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = &P> + '_ {
        self.runners.iter().map(NodeRunner::node)
    }

    /// The communication graph.
    pub fn graph(&self) -> &'g WGraph {
        self.g
    }

    /// Execute exactly one round; returns the number of messages sent.
    pub fn step_one(&mut self) -> u64 {
        self.step_inner(&mut |_, _, _| {})
    }

    /// As [`Network::step_one`], recording the round into `trace`
    /// (message counts, senders, and — if the trace keeps payloads — a
    /// `Debug` rendering of every message).
    pub fn step_traced(&mut self, trace: &mut crate::trace::RoundTrace) -> u64
    where
        P::Msg: std::fmt::Debug,
    {
        let mut senders: Vec<NodeId> = Vec::new();
        let mut payloads = Vec::new();
        let keep = trace.keep_payloads();
        let faults_before = self.tally.events();
        let late_before = self.tally.late_delivered;
        let sent = self.step_inner(&mut |from, to, msg: &P::Msg| {
            senders.push(from);
            if keep {
                payloads.push((from, to, format!("{msg:?}")));
            }
        });
        let fault_events = self.tally.events() - faults_before;
        let late_delivered = self.tally.late_delivered - late_before;
        if sent > 0 || fault_events > 0 || late_delivered > 0 {
            senders.sort_unstable();
            senders.dedup();
            trace.push(crate::trace::RoundRecord {
                round: self.round,
                messages: sent,
                senders,
                payloads,
                fault_events,
                late_delivered,
            });
        }
        sent
    }

    /// Delay-faulted messages still in flight.
    pub fn pending_deliveries(&self) -> usize {
        self.pending.values().map(|b| b.len()).sum()
    }

    /// Move every pending delivery due at or before `round` into the
    /// inboxes. Returns how many messages arrived late this round.
    fn deliver_pending(&mut self, round: Round) -> u64 {
        let mut late = 0u64;
        while let Some((&due, _)) = self.pending.first_key_value() {
            if due > round {
                break;
            }
            let (_, batch) = self.pending.pop_first().expect("checked non-empty");
            for (v, env) in batch {
                let i = v as usize;
                if self.inbox_mark[i] != round {
                    self.inbox_mark[i] = round;
                    self.dirty.push(v);
                    self.inbox_ref[i] = self.slab.acquire();
                }
                self.slab.get_mut(self.inbox_ref[i]).push(env);
                late += 1;
            }
        }
        self.tally.late_delivered += late;
        late
    }

    fn step_inner(&mut self, on_msg: &mut dyn FnMut(NodeId, NodeId, &P::Msg)) -> u64 {
        self.round += 1;
        self.rounds_executed += 1;
        let round = self.round;
        let n = self.g.n();

        // --- late deliveries from delay faults ---
        let late = if self.cfg.faults.is_some() {
            self.deliver_pending(round)
        } else {
            0
        };
        // The dirty list starts each round empty, so right now it holds
        // exactly the late-touched inboxes — the only ones that can be out
        // of sender order after the send phase appends to them.
        let late_prefix = self.dirty.len();

        // --- build the poll set ---
        let mut active = std::mem::take(&mut self.active_scratch);
        match self.cfg.scheduling {
            SchedulingMode::ExhaustivePoll => active.extend(0..n as NodeId),
            SchedulingMode::ActiveSet if self.dense_mode => {
                // Density fallback: poll everyone. Sound because polling a
                // node before its true send round is a no-op (the same
                // contract the ExhaustivePoll conformance relies on).
                active.extend(0..n as NodeId);
            }
            SchedulingMode::ActiveSet => {
                let next_send = &self.next_send;
                for heap in self.heaps.iter_mut() {
                    while let Some(&Reverse((r, v))) = heap.peek() {
                        if r > round {
                            break;
                        }
                        heap.pop();
                        // Stale entries (superseded schedule) are discarded.
                        if next_send[v as usize] == r {
                            active.push(v);
                        }
                    }
                }
                active.sort_unstable();
                active.dedup();
                // Dense-entry check: when almost everyone is due, heap
                // bookkeeping is pure overhead — switch to full polling.
                if (active.len() as f64) >= self.cfg.dense_poll_fraction * n as f64 {
                    self.dense_mode = true;
                    active.clear();
                    active.extend(0..n as NodeId);
                }
            }
        }

        // --- send phase (into the persistent outboxes) ---
        let parallel = active.len() >= self.cfg.parallel_threshold && self.cfg.threads > 1;
        if parallel {
            self.send_phase_parallel(round, &active);
        } else {
            let g = self.g;
            for &v in &active {
                self.runners[v as usize].poll_send(round, g);
            }
        }

        // --- delivery (sequential: validates constraints, deterministic) ---
        let mut sent_this_round = 0u64;
        let mut senders = 0usize;
        {
            let g = self.g;
            let mut sink = EngineSink {
                slab: &mut self.slab,
                inbox_ref: &mut self.inbox_ref,
                dirty: &mut self.dirty,
                inbox_mark: &mut self.inbox_mark,
                pending: &mut self.pending,
                faults: self.cfg.faults.as_ref(),
                tally: &mut self.tally,
                round,
                on_msg,
            };
            for &u in &active {
                let sent = self.runners[u as usize].drain_sends(
                    round,
                    g,
                    self.cfg.max_words,
                    self.cfg.enforce_link_capacity,
                    &mut sink,
                );
                if sent > 0 {
                    senders += 1;
                    // Flag only when a message actually hit a link (a
                    // broadcast from a neighborless node transmits nothing):
                    // the hot-path reschedule below must imply the round is
                    // busy, or it would distort `run`'s quiet-round jumps.
                    // In dense mode the flag stays clear — there is no heap
                    // state to keep warm.
                    if self.cfg.scheduling == SchedulingMode::ActiveSet && !self.dense_mode {
                        self.sent_flag[u as usize] = true;
                    }
                }
                sent_this_round += sent;
            }
        }
        self.max_round_messages = self.max_round_messages.max(sent_this_round);
        if sent_this_round > 0 || late > 0 {
            self.last_activity = round;
        }

        // --- receive phase (dirty inboxes only) ---
        let mut dirty = std::mem::take(&mut self.dirty);
        if late > 0 {
            // Late arrivals were queued before this round's sends, so only
            // the late-touched inboxes can be out of sender order. The
            // stable sort is the identity on every other inbox, so sorting
            // just these is bit-identical to sorting all of them.
            for &v in &dirty[..late_prefix] {
                let inbox = self.slab.get_mut(self.inbox_ref[v as usize]);
                if inbox.len() > 1 {
                    inbox.sort_by_key(|e| e.from);
                }
            }
        }
        dirty.sort_unstable();
        if !dirty.is_empty() {
            let par_recv = dirty.len() >= self.cfg.parallel_threshold && self.cfg.threads > 1;
            if par_recv {
                self.receive_phase_parallel(round, &dirty);
            } else {
                let runners = &mut self.runners;
                let slab = &self.slab;
                let g = self.g;
                for &v in &dirty {
                    let i = v as usize;
                    runners[i].receive(round, slab.get(self.inbox_ref[i]), g);
                }
            }
            // Return every touched buffer to the pool (cheap: the parallel
            // path already cleared them; release just recycles the slot).
            for &v in &dirty {
                let i = v as usize;
                self.slab.release(self.inbox_ref[i]);
                self.inbox_ref[i] = SlabRef::NONE;
            }
        }

        // --- schedule refresh: polled nodes and woken (dirty) nodes ---
        if self.cfg.scheduling == SchedulingMode::ActiveSet && !self.dense_mode {
            let par_refresh = active.len() + dirty.len() >= self.cfg.parallel_threshold
                && self.cfg.threads > 1
                && self.heaps.len() > 1;
            if par_refresh {
                self.refresh_schedule_parallel(round, &active, &dirty);
            } else {
                self.refresh_schedule(round, &active, &dirty);
            }
        } else if self.cfg.scheduling == SchedulingMode::ActiveSet {
            // Dense exit (hysteresis): once actual senders drop below half
            // the entry fraction, heap scheduling pays again. A full
            // rescan re-seeds the schedule. A quiet round (zero senders)
            // exits unconditionally — even at threshold 0 — so `run`'s
            // fast-forward only ever consults the heaps in non-dense
            // state.
            if senders == 0 || (senders as f64) < self.cfg.dense_poll_fraction * 0.5 * n as f64 {
                self.rebuild_schedule(round);
                self.dense_mode = false;
            }
        }

        // Hand the scratch allocations back for the next round.
        active.clear();
        self.active_scratch = active;
        dirty.clear();
        self.dirty = dirty;

        sent_this_round
    }

    /// Create the persistent worker pool on first parallel phase.
    fn ensure_pool(&mut self) {
        if self.pool.is_none() {
            // The calling thread executes jobs too, so the pool holds one
            // worker fewer than the configured parallelism.
            self.pool = Some(WorkerPool::new(self.cfg.threads.saturating_sub(1)));
        }
    }

    fn send_phase_parallel(&mut self, round: Round, active: &[NodeId]) {
        self.ensure_pool();
        let g = self.g;
        let chunk = active.len().div_ceil(self.cfg.threads).max(1);
        let runners = Ptr(self.runners.as_mut_ptr());
        let pool = self.pool.as_ref().expect("pool just created");
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = active
            .chunks(chunk)
            .map(|ch| {
                Box::new(move || {
                    for &v in ch {
                        // SAFETY: active ids are sorted+deduped and chunks
                        // are disjoint, so each index is touched by exactly
                        // one job; pool.run blocks until all jobs finish.
                        let runner = unsafe { runners.at(v as usize) };
                        runner.poll_send(round, g);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
    }

    fn receive_phase_parallel(&mut self, round: Round, dirty: &[NodeId]) {
        self.ensure_pool();
        let g = self.g;
        let chunk = dirty.len().div_ceil(self.cfg.threads).max(1);
        let runners = Ptr(self.runners.as_mut_ptr());
        let (bufs, gens) = self.slab.raw_parts();
        let refs: &[SlabRef] = &self.inbox_ref;
        let pool = self.pool.as_ref().expect("pool just created");
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = dirty
            .chunks(chunk)
            .map(|ch| {
                Box::new(move || {
                    for &v in ch {
                        // SAFETY: dirty ids are sorted and unique (stamp
                        // dedup), each holds a distinct live slab slot, and
                        // chunks are disjoint — so each runner index and
                        // each slot index is touched by exactly one job;
                        // pool.run blocks until all jobs finish.
                        let r = refs[v as usize];
                        debug_assert_eq!(
                            gens[r.slot()],
                            r.generation(),
                            "stale slab handle in parallel receive"
                        );
                        let runner = unsafe { runners.at(v as usize) };
                        let inbox = unsafe { bufs.at(r.slot()) };
                        runner.receive(round, inbox, g);
                        inbox.clear();
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
    }

    /// Shard index owning node `v`.
    #[inline]
    fn shard_of(&self, v: NodeId) -> usize {
        v as usize / self.shard_size
    }

    /// Sequential schedule refresh after round `round`: reinstall heap
    /// entries for polled nodes, re-query woken (dirty-but-not-polled)
    /// nodes.
    fn refresh_schedule(&mut self, round: Round, active: &[NodeId], dirty: &[NodeId]) {
        let g = self.g;
        for &v in active {
            // Popped nodes lost their heap entry; always reinstall.
            let i = v as usize;
            let shard = self.shard_of(v);
            if self.sent_flag[i] {
                // Sender-stays-hot: a node that sent this round is
                // simply re-polled next round instead of paying an
                // `earliest_send` query (which may scan protocol
                // state). This is unobservable: `run` always executes
                // the round after a busy one before considering a
                // jump, and polling a node before its true send round
                // is a no-op, after which the exact query runs. At
                // jump time every surviving heap entry is exact,
                // because a conservative entry is consumed in the
                // very next executed round and is only ever pushed in
                // a busy (non-jumping) round.
                self.sent_flag[i] = false;
                self.next_send[i] = round + 1;
                self.heaps[shard].push(Reverse((round + 1, v)));
                continue;
            }
            match self.runners[i].earliest_send(round + 1, g) {
                Some(r) => {
                    debug_assert!(r > round, "earliest_send must be in the future");
                    self.next_send[i] = r;
                    self.heaps[shard].push(Reverse((r, v)));
                }
                None => self.next_send[i] = Round::MAX,
            }
        }
        for &v in dirty {
            if active.binary_search(&v).is_ok() {
                continue; // already refreshed above
            }
            let i = v as usize;
            let r_new = self.runners[i]
                .earliest_send(round + 1, g)
                .unwrap_or(Round::MAX);
            if r_new != self.next_send[i] {
                self.next_send[i] = r_new;
                if r_new != Round::MAX {
                    debug_assert!(r_new > round, "earliest_send must be in the future");
                    let shard = self.shard_of(v);
                    self.heaps[shard].push(Reverse((r_new, v)));
                }
                // The superseded heap entry (if any) is now stale and
                // will be discarded at pop time.
            }
        }
    }

    /// Parallel schedule refresh: one job per shard, operating on the
    /// shard's contiguous subranges of `active` and `dirty` with disjoint
    /// writes into its own heap / `next_send` / `sent_flag` slots.
    ///
    /// Bit-identical to [`Network::refresh_schedule`]: that loop visits
    /// active (sorted) then dirty (sorted), so restricted to one shard it
    /// performs exactly the insertion sequence the shard job performs,
    /// and heap contents per shard are therefore identical. The pop order
    /// across shards is re-sorted into the global order at poll time.
    fn refresh_schedule_parallel(&mut self, round: Round, active: &[NodeId], dirty: &[NodeId]) {
        self.ensure_pool();
        let g = self.g;
        let shard_size = self.shard_size;
        let heaps = Ptr(self.heaps.as_mut_ptr());
        let next_send = Ptr(self.next_send.as_mut_ptr());
        let sent_flag = Ptr(self.sent_flag.as_mut_ptr());
        let runners = Ptr(self.runners.as_mut_ptr());
        let pool = self.pool.as_ref().expect("pool just created");
        let shard_count = self.heaps.len();
        let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(shard_count);
        let (mut a_lo, mut d_lo) = (0usize, 0usize);
        for s in 0..shard_count {
            let hi = ((s + 1) * shard_size) as NodeId;
            let a_hi = a_lo + active[a_lo..].partition_point(|&v| v < hi);
            let d_hi = d_lo + dirty[d_lo..].partition_point(|&v| v < hi);
            let (active_s, dirty_s) = (&active[a_lo..a_hi], &dirty[d_lo..d_hi]);
            (a_lo, d_lo) = (a_hi, d_hi);
            if active_s.is_empty() && dirty_s.is_empty() {
                continue;
            }
            jobs.push(Box::new(move || {
                // SAFETY: all node ids here lie in shard `s`'s range and
                // shard ranges are disjoint, so each runner, `next_send` /
                // `sent_flag` slot, and the shard heap are touched by
                // exactly one job; pool.run blocks until all jobs finish.
                let heap = unsafe { heaps.at(s) };
                for &v in active_s {
                    let i = v as usize;
                    let flag = unsafe { sent_flag.at(i) };
                    if *flag {
                        *flag = false;
                        *unsafe { next_send.at(i) } = round + 1;
                        heap.push(Reverse((round + 1, v)));
                        continue;
                    }
                    let runner = unsafe { runners.at(i) };
                    match runner.earliest_send(round + 1, g) {
                        Some(r) => {
                            debug_assert!(r > round, "earliest_send must be in the future");
                            *unsafe { next_send.at(i) } = r;
                            heap.push(Reverse((r, v)));
                        }
                        None => *unsafe { next_send.at(i) } = Round::MAX,
                    }
                }
                for &v in dirty_s {
                    if active_s.binary_search(&v).is_ok() {
                        continue;
                    }
                    let i = v as usize;
                    let runner = unsafe { runners.at(i) };
                    let r_new = runner.earliest_send(round + 1, g).unwrap_or(Round::MAX);
                    let slot = unsafe { next_send.at(i) };
                    if r_new != *slot {
                        *slot = r_new;
                        if r_new != Round::MAX {
                            debug_assert!(r_new > round, "earliest_send must be in the future");
                            heap.push(Reverse((r_new, v)));
                        }
                    }
                }
            }) as Box<dyn FnOnce() + Send + '_>);
        }
        pool.run(jobs);
    }

    /// Re-seed the schedule from scratch (dense-mode exit): clear every
    /// shard heap and re-query `earliest_send` for all nodes.
    fn rebuild_schedule(&mut self, round: Round) {
        let g = self.g;
        for heap in self.heaps.iter_mut() {
            heap.clear();
        }
        for (v, runner) in self.runners.iter().enumerate() {
            match runner.earliest_send(round + 1, g) {
                Some(r) => {
                    debug_assert!(r > round, "earliest_send must be in the future");
                    self.next_send[v] = r;
                    self.heaps[v / self.shard_size].push(Reverse((r, v as NodeId)));
                }
                None => self.next_send[v] = Round::MAX,
            }
        }
    }

    /// Earliest future send round across all nodes, by scanning every
    /// node ([`SchedulingMode::ExhaustivePoll`]'s quiet path).
    fn scan_earliest(&self) -> Option<Round> {
        let g = self.g;
        let mut next: Option<Round> = None;
        for runner in &self.runners {
            if let Some(r) = runner.earliest_send(self.round + 1, g) {
                debug_assert!(r > self.round, "earliest_send must be in the future");
                next = Some(next.map_or(r, |cur| cur.min(r)));
            }
        }
        next
    }

    /// Earliest future send round across all nodes, from the schedule
    /// heaps ([`SchedulingMode::ActiveSet`]'s quiet path): per shard,
    /// discard stale tops then peek; take the minimum over shards.
    /// O(stale log n) amortized instead of O(n). Only called in non-dense
    /// state (a quiet round always exits dense mode first).
    fn next_scheduled(&mut self) -> Option<Round> {
        debug_assert!(!self.dense_mode, "quiet rounds exit dense mode");
        let round = self.round;
        let next_send = &self.next_send;
        let mut next: Option<Round> = None;
        for heap in self.heaps.iter_mut() {
            while let Some(&Reverse((r, v))) = heap.peek() {
                if next_send[v as usize] == r {
                    debug_assert!(r > round, "schedule must be in the future");
                    next = Some(next.map_or(r, |cur| cur.min(r)));
                    break;
                }
                heap.pop();
            }
        }
        next
    }

    /// Run until the protocol goes quiet or `max_rounds` have elapsed.
    ///
    /// Silent rounds are fast-forwarded using [`Protocol::earliest_send`]:
    /// they count toward the round complexity but are not simulated.
    pub fn run(&mut self, max_rounds: Round) -> RunOutcome {
        loop {
            if self.round >= max_rounds {
                return RunOutcome::BudgetExhausted;
            }
            let sent = self.step_one();
            if sent == 0 {
                // Nothing moved. When might any node next send?
                let mut next = match self.cfg.scheduling {
                    SchedulingMode::ExhaustivePoll => self.scan_earliest(),
                    SchedulingMode::ActiveSet => self.next_scheduled(),
                };
                // A delay-faulted message still in flight forces its due
                // round to be simulated (all pending rounds are > round:
                // deliver_pending drained the rest at the top of the step).
                if let Some((&due, _)) = self.pending.first_key_value() {
                    next = Some(next.map_or(due, |cur| cur.min(due)));
                }
                match next {
                    None => return RunOutcome::Quiet,
                    Some(r) => {
                        // Jump to just before round r (bounded by budget).
                        let target = r.min(max_rounds + 1) - 1;
                        if target > self.round {
                            self.round = target;
                        }
                    }
                }
            }
        }
    }

    /// As [`Network::run`], emitting one [`Recorder::round`] event per
    /// *executed* round (fast-forwarded silent rounds produce no event).
    ///
    /// Deliberately a separate loop rather than an `Option<&mut dyn
    /// Recorder>` parameter on [`Network::run`]: the unrecorded path —
    /// every default entry point — keeps exactly the instruction stream
    /// it had before observability existed.
    pub fn run_recorded(&mut self, max_rounds: Round, rec: &mut dyn Recorder) -> RunOutcome {
        loop {
            if self.round >= max_rounds {
                return RunOutcome::BudgetExhausted;
            }
            let sent = self.step_one();
            if sent > 0 {
                rec.round(self.round, sent);
            } else {
                let mut next = match self.cfg.scheduling {
                    SchedulingMode::ExhaustivePoll => self.scan_earliest(),
                    SchedulingMode::ActiveSet => self.next_scheduled(),
                };
                if let Some((&due, _)) = self.pending.first_key_value() {
                    next = Some(next.map_or(due, |cur| cur.min(due)));
                }
                match next {
                    None => return RunOutcome::Quiet,
                    Some(r) => {
                        let target = r.min(max_rounds + 1) - 1;
                        if target > self.round {
                            self.round = target;
                        }
                    }
                }
            }
        }
    }

    /// Metrics snapshot.
    pub fn stats(&self) -> RunStats {
        RunStats {
            rounds: self.last_activity,
            rounds_executed: self.rounds_executed,
            messages: self.runners.iter().map(NodeRunner::messages).sum(),
            max_link_load: self
                .runners
                .iter()
                .map(NodeRunner::max_link_load)
                .max()
                .unwrap_or(0),
            max_node_sends: self
                .runners
                .iter()
                .map(NodeRunner::node_sends)
                .max()
                .unwrap_or(0),
            max_round_messages: self.max_round_messages,
            total_words: self.runners.iter().map(NodeRunner::total_words).sum(),
            dropped: self.tally.dropped,
            outage_dropped: self.tally.outage_dropped,
            duplicated: self.tally.duplicated,
            delayed: self.tally.delayed,
            late_delivered: self.tally.late_delivered,
            ..RunStats::default()
        }
    }

    /// As [`Network::stats`], additionally filling the memory counters
    /// (`slab_bytes` / `slab_peak`) from the inbox slab. Kept separate so
    /// plain `stats()` stays bit-comparable across runtimes that have no
    /// slab (the sim↔transport conformance suites compare `RunStats`
    /// structs wholesale).
    pub fn stats_with_memory(&self) -> RunStats {
        let mut s = self.stats();
        s.slab_bytes = self.slab.resident_bytes() as u64;
        s.slab_peak = self.slab.peak_live() as u64;
        s
    }

    /// Per-node send-round counts (Algorithm 2's per-node congestion).
    pub fn node_sends(&self) -> Vec<u64> {
        self.runners.iter().map(NodeRunner::node_sends).collect()
    }

    /// Consume the network, returning the node programs for result
    /// extraction.
    pub fn into_nodes(self) -> Vec<P> {
        self.runners
            .into_iter()
            .map(NodeRunner::into_node)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgSize;
    use crate::outbox::Outbox;
    use crate::protocol::NodeCtx;
    use dw_graph::gen::{self, WeightDist};

    /// Unweighted BFS flood: each node learns its hop distance from node 0
    /// and announces it once.
    struct Flood {
        dist: Option<u64>,
        announced: bool,
    }

    impl Protocol for Flood {
        type Msg = u64;

        fn init(&mut self, ctx: &NodeCtx) {
            if ctx.id == 0 {
                self.dist = Some(0);
            }
        }

        fn send(&mut self, _round: Round, _ctx: &NodeCtx, out: &mut Outbox<u64>) {
            if let (Some(d), false) = (self.dist, self.announced) {
                self.announced = true;
                out.broadcast(d);
            }
        }

        fn receive(&mut self, _round: Round, inbox: &[Envelope<u64>], _ctx: &NodeCtx) {
            for e in inbox {
                let cand = *e.msg() + 1;
                if self.dist.is_none_or(|d| cand < d) {
                    self.dist = Some(cand);
                    self.announced = false;
                }
            }
        }

        fn earliest_send(&self, after: Round, _ctx: &NodeCtx) -> Option<Round> {
            if self.dist.is_some() && !self.announced {
                Some(after)
            } else {
                None
            }
        }
    }

    fn flood_net(g: &WGraph, cfg: EngineConfig) -> Vec<Option<u64>> {
        let mut net = Network::new(g, cfg, |_| Flood {
            dist: None,
            announced: false,
        });
        assert_eq!(net.run(10_000), RunOutcome::Quiet);
        net.nodes().map(|f| f.dist).collect()
    }

    #[test]
    fn bfs_flood_on_path() {
        let g = gen::path(6, false, WeightDist::Constant(1), 0);
        let d = flood_net(&g, EngineConfig::default());
        assert_eq!(d, (0..6).map(|i| Some(i as u64)).collect::<Vec<_>>());
    }

    #[test]
    fn bfs_flood_round_complexity_is_eccentricity() {
        let g = gen::path(6, false, WeightDist::Constant(1), 0);
        let mut net = Network::new(&g, EngineConfig::default(), |_| Flood {
            dist: None,
            announced: false,
        });
        net.run(100);
        // node 0 announces in round 1, farthest node (hop 5) hears in round 5
        // and announces in round 6.
        assert_eq!(net.stats().rounds, 6);
    }

    #[test]
    fn run_recorded_matches_run_and_emits_executed_rounds() {
        let g = gen::gnp_connected(32, 0.12, false, WeightDist::Constant(1), 5);
        let mk = |_| Flood {
            dist: None,
            announced: false,
        };
        let mut plain = Network::new(&g, EngineConfig::default(), mk);
        assert_eq!(plain.run(10_000), RunOutcome::Quiet);

        let mut rec = dw_obs::ObsRecorder::new();
        let mut recorded = Network::new(&g, EngineConfig::default(), mk);
        use dw_obs::Recorder as _;
        let span = rec.begin("flood");
        assert_eq!(recorded.run_recorded(10_000, &mut rec), RunOutcome::Quiet);
        rec.end(span, &recorded.stats());

        // identical execution...
        assert_eq!(plain.stats(), recorded.stats());
        let r = rec.into_recording();
        // ...and one round event per round that carried messages, whose
        // message counts sum to the stats total
        assert_eq!(r.rounds.len() as u64, {
            let mut t = crate::trace::RoundTrace::new();
            let mut net = Network::new(&g, EngineConfig::default(), mk);
            while net.step_traced(&mut t) > 0 || net.pending_deliveries() > 0 {}
            t.records().len() as u64
        });
        let event_msgs: u64 = r.rounds.iter().map(|&(_, m)| m).sum();
        assert_eq!(event_msgs, recorded.stats().messages);
        assert_eq!(r.spans[0].stats, recorded.stats());
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = gen::gnp_connected(64, 0.08, false, WeightDist::Constant(1), 9);
        let seq = flood_net(&g, EngineConfig::default());
        let par = flood_net(
            &g,
            EngineConfig {
                parallel_threshold: 1,
                threads: 4,
                ..EngineConfig::default()
            },
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn exhaustive_poll_matches_active_set() {
        let g = gen::gnp_connected(48, 0.1, false, WeightDist::Constant(1), 21);
        let run = |mode| {
            let mut net = Network::new(
                &g,
                EngineConfig {
                    scheduling: mode,
                    ..EngineConfig::default()
                },
                |_| Flood {
                    dist: None,
                    announced: false,
                },
            );
            assert_eq!(net.run(10_000), RunOutcome::Quiet);
            let d: Vec<_> = net.nodes().map(|f| f.dist).collect();
            (d, net.stats())
        };
        let (d_ex, s_ex) = run(SchedulingMode::ExhaustivePoll);
        let (d_as, s_as) = run(SchedulingMode::ActiveSet);
        assert_eq!(d_ex, d_as);
        assert_eq!(s_ex, s_as, "bit-identical RunStats across modes");
    }

    #[test]
    fn stats_count_messages_and_congestion() {
        let g = gen::path(3, false, WeightDist::Constant(1), 0);
        let mut net = Network::new(&g, EngineConfig::default(), |_| Flood {
            dist: None,
            announced: false,
        });
        net.run(100);
        let st = net.stats();
        // node0 broadcasts 1 msg; node1 broadcasts 2; node2 broadcasts 1.
        assert_eq!(st.messages, 4);
        assert_eq!(st.max_link_load, 1);
        assert_eq!(st.max_node_sends, 1);
        assert!(st.total_words >= st.messages);
    }

    /// A protocol that (wrongly) unicasts twice over one link in a round.
    struct DoubleSend;
    impl Protocol for DoubleSend {
        type Msg = u64;
        fn send(&mut self, round: Round, ctx: &NodeCtx, out: &mut Outbox<u64>) {
            if round == 1 && ctx.id == 0 {
                out.unicast(1, 1);
                out.unicast(1, 2);
            }
        }
        fn receive(&mut self, _r: Round, _i: &[Envelope<u64>], _c: &NodeCtx) {}
    }

    #[test]
    #[should_panic(expected = "two messages over link")]
    fn double_send_rejected() {
        let g = gen::path(2, false, WeightDist::Constant(1), 0);
        let mut net = Network::new(&g, EngineConfig::default(), |_| DoubleSend);
        net.step_one();
    }

    /// A protocol that (wrongly) broadcasts and unicasts to the same
    /// neighbor in one round (exercises the hoisted broadcast link path).
    struct BroadcastPlusUnicast;
    impl Protocol for BroadcastPlusUnicast {
        type Msg = u64;
        fn send(&mut self, round: Round, ctx: &NodeCtx, out: &mut Outbox<u64>) {
            if round == 1 && ctx.id == 0 {
                out.broadcast(1);
                out.unicast(1, 2);
            }
        }
        fn receive(&mut self, _r: Round, _i: &[Envelope<u64>], _c: &NodeCtx) {}
    }

    #[test]
    #[should_panic(expected = "two messages over link")]
    fn broadcast_then_unicast_rejected() {
        let g = gen::path(2, false, WeightDist::Constant(1), 0);
        let mut net = Network::new(&g, EngineConfig::default(), |_| BroadcastPlusUnicast);
        net.step_one();
    }

    /// A protocol that sends to a node it has no link to.
    struct BadTarget;
    impl Protocol for BadTarget {
        type Msg = u64;
        fn send(&mut self, round: Round, ctx: &NodeCtx, out: &mut Outbox<u64>) {
            if round == 1 && ctx.id == 0 {
                out.unicast(2, 1);
            }
        }
        fn receive(&mut self, _r: Round, _i: &[Envelope<u64>], _c: &NodeCtx) {}
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn non_neighbor_rejected() {
        let g = gen::path(3, false, WeightDist::Constant(1), 0); // 0-1-2
        let mut net = Network::new(&g, EngineConfig::default(), |_| BadTarget);
        net.step_one();
    }

    /// A protocol with an oversized message.
    struct BigMsg;
    #[derive(Clone)]
    struct Huge;
    impl MsgSize for Huge {
        fn size_words(&self) -> usize {
            99
        }
    }
    impl Protocol for BigMsg {
        type Msg = Huge;
        fn send(&mut self, round: Round, ctx: &NodeCtx, out: &mut Outbox<Huge>) {
            if round == 1 && ctx.id == 0 {
                out.broadcast(Huge);
            }
        }
        fn receive(&mut self, _r: Round, _i: &[Envelope<Huge>], _c: &NodeCtx) {}
    }

    #[test]
    #[should_panic(expected = "99-word message")]
    fn oversized_message_rejected() {
        let g = gen::path(2, false, WeightDist::Constant(1), 0);
        let mut net = Network::new(&g, EngineConfig::default(), |_| BigMsg);
        net.step_one();
    }

    /// Sparse schedule: node 0 sends only in round 1000. Fast-forward must
    /// make this cheap while still reporting 1000 rounds.
    struct LateSender {
        sent: bool,
    }
    impl Protocol for LateSender {
        type Msg = u64;
        fn send(&mut self, round: Round, ctx: &NodeCtx, out: &mut Outbox<u64>) {
            if round == 1000 && ctx.id == 0 && !self.sent {
                self.sent = true;
                out.broadcast(7);
            }
        }
        fn receive(&mut self, _r: Round, _i: &[Envelope<u64>], _c: &NodeCtx) {}
        fn earliest_send(&self, after: Round, ctx: &NodeCtx) -> Option<Round> {
            if ctx.id == 0 && !self.sent {
                Some(after.max(1000))
            } else {
                None
            }
        }
    }

    #[test]
    fn fast_forward_skips_silent_rounds() {
        let g = gen::path(2, false, WeightDist::Constant(1), 0);
        let mut net = Network::new(&g, EngineConfig::default(), |_| LateSender { sent: false });
        assert_eq!(net.run(5000), RunOutcome::Quiet);
        let st = net.stats();
        assert_eq!(st.rounds, 1000);
        assert!(st.rounds_executed < 10, "executed {}", st.rounds_executed);
        assert_eq!(st.messages, 1);
    }

    #[test]
    fn tracing_records_executed_rounds() {
        let g = gen::path(4, false, WeightDist::Constant(1), 0);
        let mut net = Network::new(&g, EngineConfig::default(), |_| Flood {
            dist: None,
            announced: false,
        });
        let mut trace = crate::trace::RoundTrace::with_payloads();
        for _ in 0..6 {
            net.step_traced(&mut trace);
        }
        // node0 announces in round 1; farthest announces in round 4
        assert_eq!(trace.send_rounds_of(0), vec![1]);
        assert_eq!(trace.send_rounds_of(3), vec![4]);
        let r1 = trace.round(1).unwrap();
        assert_eq!(r1.messages, 1);
        assert!(r1
            .payloads
            .iter()
            .any(|(f, t, p)| *f == 0 && *t == 1 && p == "0"));
        // silent rounds after quiescence produce no records
        assert!(trace.round(6).is_none());
    }

    #[test]
    fn budget_exhaustion_reported() {
        let g = gen::path(2, false, WeightDist::Constant(1), 0);
        let mut net = Network::new(&g, EngineConfig::default(), |_| LateSender { sent: false });
        assert_eq!(net.run(10), RunOutcome::BudgetExhausted);
    }

    // ---- fault injection ----

    use crate::fault::{FaultPlan, Outage};

    fn flood_run(g: &WGraph, cfg: EngineConfig) -> (Vec<Option<u64>>, RunStats) {
        let mut net = Network::new(g, cfg, |_| Flood {
            dist: None,
            announced: false,
        });
        net.run(100_000);
        let dists = net.nodes().map(|f| f.dist).collect();
        (dists, net.stats())
    }

    #[test]
    fn pristine_fault_plan_is_byte_identical() {
        let g = gen::gnp_connected(40, 0.1, false, WeightDist::Constant(1), 13);
        let (d_none, s_none) = flood_run(&g, EngineConfig::default());
        let (d_plan, s_plan) = flood_run(
            &g,
            EngineConfig {
                faults: Some(FaultPlan::new(42)),
                ..EngineConfig::default()
            },
        );
        assert_eq!(d_none, d_plan);
        assert_eq!(s_none, s_plan);
        assert_eq!(s_plan.fault_events(), 0);
    }

    #[test]
    fn outage_drops_are_counted_and_partition() {
        // Path 0-1-2 with the 1->2 direction permanently dead: node 2
        // never hears anything, node 1 still converges.
        let g = gen::path(3, false, WeightDist::Constant(1), 0);
        let plan = FaultPlan::new(7).with_outage(Outage {
            from: 1,
            to: 2,
            start: 1,
            end: u64::MAX,
            symmetric: false,
        });
        let (dists, st) = flood_run(
            &g,
            EngineConfig {
                faults: Some(plan),
                ..EngineConfig::default()
            },
        );
        assert_eq!(dists[0], Some(0));
        assert_eq!(dists[1], Some(1));
        assert_eq!(dists[2], None);
        assert!(st.outage_dropped > 0);
        assert_eq!(st.dropped, 0);
    }

    /// Node 0 broadcasts one message in round 1; node 1 counts envelopes.
    struct CountRecv {
        sent: bool,
        received: u64,
    }
    impl Protocol for CountRecv {
        type Msg = u64;
        fn send(&mut self, _round: Round, ctx: &NodeCtx, out: &mut Outbox<u64>) {
            if ctx.id == 0 && !self.sent {
                self.sent = true;
                out.broadcast(1);
            }
        }
        fn receive(&mut self, _r: Round, inbox: &[Envelope<u64>], _c: &NodeCtx) {
            self.received += inbox.len() as u64;
        }
        fn earliest_send(&self, after: Round, ctx: &NodeCtx) -> Option<Round> {
            if ctx.id == 0 && !self.sent {
                Some(after)
            } else {
                None
            }
        }
    }

    #[test]
    fn duplicates_deliver_two_copies() {
        let g = gen::path(2, false, WeightDist::Constant(1), 0);
        let plan = FaultPlan::new(3).with_duplicate(1.0);
        let mut net = Network::new(
            &g,
            EngineConfig {
                faults: Some(plan),
                ..EngineConfig::default()
            },
            |_| CountRecv {
                sent: false,
                received: 0,
            },
        );
        assert_eq!(net.run(100), RunOutcome::Quiet);
        assert_eq!(net.node(1).received, 2);
        let st = net.stats();
        assert_eq!(st.duplicated, 1);
        assert_eq!(st.messages, 1, "the wire carried one message");
    }

    #[test]
    fn delayed_messages_arrive_late_and_extend_the_run() {
        let g = gen::path(2, false, WeightDist::Constant(1), 0);
        let plan = FaultPlan::new(11).with_delay(1.0, 4);
        let mut net = Network::new(
            &g,
            EngineConfig {
                faults: Some(plan),
                ..EngineConfig::default()
            },
            |_| CountRecv {
                sent: false,
                received: 0,
            },
        );
        assert_eq!(net.run(100), RunOutcome::Quiet);
        assert_eq!(net.node(1).received, 1, "delayed message still arrives");
        let st = net.stats();
        assert_eq!(st.delayed, 1);
        assert_eq!(st.late_delivered, 1);
        assert!(
            st.rounds > 1,
            "delivery round {} must exceed the send round",
            st.rounds
        );
        assert_eq!(net.pending_deliveries(), 0);
    }

    #[test]
    fn fast_forward_does_not_skip_pending_deliveries() {
        // Sender transmits in round 1000; delivery is delayed further. The
        // fast-forward path must simulate both the send round and the
        // later delivery round.
        let g = gen::path(2, false, WeightDist::Constant(1), 0);
        let plan = FaultPlan::new(2).with_delay(1.0, 3);
        let mut net = Network::new(
            &g,
            EngineConfig {
                faults: Some(plan),
                ..EngineConfig::default()
            },
            |_| LateSender { sent: false },
        );
        assert_eq!(net.run(5000), RunOutcome::Quiet);
        let st = net.stats();
        assert_eq!(st.delayed, 1);
        assert_eq!(st.late_delivered, 1);
        assert!(st.rounds > 1000, "late delivery after round 1000");
        assert!(st.rounds_executed < 10, "executed {}", st.rounds_executed);
    }

    #[test]
    fn random_drops_lose_announcements() {
        // With heavy random loss the fragile announce-once flood must both
        // record drops and (on this seed) leave some node unreached.
        let g = gen::path(8, false, WeightDist::Constant(1), 0);
        let plan = FaultPlan::drop_only(19, 0.9);
        let (dists, st) = flood_run(
            &g,
            EngineConfig {
                faults: Some(plan),
                ..EngineConfig::default()
            },
        );
        assert!(st.dropped > 0);
        assert!(
            dists.iter().any(|d| d.is_none()),
            "90% loss on a path should strand some node (seeded)"
        );
    }

    #[test]
    fn traced_rounds_record_fault_events() {
        let g = gen::path(2, false, WeightDist::Constant(1), 0);
        let plan = FaultPlan::new(11).with_delay(1.0, 4);
        let mut net = Network::new(
            &g,
            EngineConfig {
                faults: Some(plan),
                ..EngineConfig::default()
            },
            |_| CountRecv {
                sent: false,
                received: 0,
            },
        );
        let mut trace = crate::trace::RoundTrace::new();
        for _ in 0..10 {
            net.step_traced(&mut trace);
        }
        let r1 = trace.round(1).expect("send round recorded");
        assert_eq!(r1.fault_events, 1);
        assert_eq!(r1.late_delivered, 0);
        let late: Vec<_> = trace
            .records()
            .iter()
            .filter(|r| r.late_delivered > 0)
            .collect();
        assert_eq!(late.len(), 1, "exactly one late-delivery round");
        assert_eq!(late[0].messages, 0, "no new wire traffic that round");
    }
}
