//! The synchronous round engine.

use crate::message::{Envelope, MsgSize};
use crate::metrics::RunStats;
use crate::outbox::{Outbox, SendOp};
use crate::protocol::{NodeCtx, Protocol, Round};
use dw_graph::{NodeId, WGraph};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Per-message word budget (a word = one `O(log n)`-bit quantity).
    /// Exceeding it is a protocol bug and panics.
    pub max_words: usize,
    /// Enforce at most one message per directed link per round (the CONGEST
    /// bandwidth constraint). Always leave on; exposed for the failure
    /// injection tests.
    pub enforce_link_capacity: bool,
    /// Use the crossbeam-parallel send/receive phases when the node count
    /// is at least this threshold. `usize::MAX` disables parallelism.
    pub parallel_threshold: usize,
    /// Worker threads for the parallel phases.
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_words: 8,
            enforce_link_capacity: true,
            parallel_threshold: 4096,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// No node will ever send again: the protocol has converged.
    Quiet,
    /// The round budget was exhausted before the protocol went quiet.
    BudgetExhausted,
}

/// A network of `n` nodes running the same protocol type.
pub struct Network<'g, P: Protocol> {
    g: &'g WGraph,
    cfg: EngineConfig,
    nodes: Vec<P>,
    round: Round,
    inboxes: Vec<Vec<Envelope<P::Msg>>>,
    /// Messages carried per directed comm link over the whole run.
    link_load: Vec<u64>,
    /// Round stamp of the last use of each directed link (capacity check).
    link_stamp: Vec<Round>,
    /// CSR offsets into `link_load` / `link_stamp` per node.
    link_offset: Vec<usize>,
    node_sends: Vec<u64>,
    last_activity: Round,
    rounds_executed: u64,
    messages: u64,
    total_words: u64,
    max_round_messages: u64,
}

impl<'g, P: Protocol> Network<'g, P> {
    /// Build a network over communication graph `g`, with node `v` running
    /// `make(v)`. Calls [`Protocol::init`] on every node (round 0).
    pub fn new(g: &'g WGraph, cfg: EngineConfig, mut make: impl FnMut(NodeId) -> P) -> Self {
        let n = g.n();
        let mut nodes: Vec<P> = (0..n as NodeId).map(&mut make).collect();
        for (v, node) in nodes.iter_mut().enumerate() {
            node.init(&NodeCtx::new(v as NodeId, g));
        }
        let mut link_offset = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        link_offset.push(0);
        for v in 0..n as NodeId {
            acc += g.comm_neighbors(v).len();
            link_offset.push(acc);
        }
        Network {
            g,
            cfg,
            nodes,
            round: 0,
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            link_load: vec![0; acc],
            link_stamp: vec![0; acc],
            link_offset,
            node_sends: vec![0; n],
            last_activity: 0,
            rounds_executed: 0,
            messages: 0,
            total_words: 0,
            max_round_messages: 0,
        }
    }

    /// Index of the directed link `u -> v` (panics if not a comm link).
    fn link_id(&self, u: NodeId, v: NodeId) -> usize {
        let nbrs = self.g.comm_neighbors(u);
        let rank = nbrs
            .binary_search(&v)
            .unwrap_or_else(|_| panic!("protocol bug: {u} sent to non-neighbor {v}"));
        self.link_offset[u as usize] + rank
    }

    /// Last completed round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Immutable access to node `v`'s program (for result extraction and
    /// test instrumentation; a real deployment would read local state the
    /// same way).
    pub fn node(&self, v: NodeId) -> &P {
        &self.nodes[v as usize]
    }

    /// All node programs.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The communication graph.
    pub fn graph(&self) -> &'g WGraph {
        self.g
    }

    /// Execute exactly one round; returns the number of messages sent.
    pub fn step_one(&mut self) -> u64 {
        self.step_inner(&mut |_, _, _| {})
    }

    /// As [`Network::step_one`], recording the round into `trace`
    /// (message counts, senders, and — if the trace keeps payloads — a
    /// `Debug` rendering of every message).
    pub fn step_traced(&mut self, trace: &mut crate::trace::RoundTrace) -> u64
    where
        P::Msg: std::fmt::Debug,
    {
        let mut senders: Vec<NodeId> = Vec::new();
        let mut payloads = Vec::new();
        let keep = trace.keep_payloads();
        let sent = self.step_inner(&mut |from, to, msg: &P::Msg| {
            senders.push(from);
            if keep {
                payloads.push((from, to, format!("{msg:?}")));
            }
        });
        if sent > 0 {
            senders.sort_unstable();
            senders.dedup();
            trace.push(crate::trace::RoundRecord {
                round: self.round,
                messages: sent,
                senders,
                payloads,
            });
        }
        sent
    }

    fn step_inner(&mut self, on_msg: &mut dyn FnMut(NodeId, NodeId, &P::Msg)) -> u64 {
        self.round += 1;
        self.rounds_executed += 1;
        let round = self.round;
        let n = self.g.n();

        // --- send phase ---
        let parallel = n >= self.cfg.parallel_threshold && self.cfg.threads > 1;
        let all_ops: Vec<Vec<SendOp<P::Msg>>> = if parallel {
            self.send_phase_parallel(round)
        } else {
            let g = self.g;
            self.nodes
                .iter_mut()
                .enumerate()
                .map(|(v, node)| {
                    let mut out = Outbox::new();
                    node.send(round, &NodeCtx::new(v as NodeId, g), &mut out);
                    out.drain().collect()
                })
                .collect()
        };

        // --- delivery (sequential: validates constraints, deterministic) ---
        let mut sent_this_round = 0u64;
        for (u, ops) in all_ops.into_iter().enumerate() {
            let u = u as NodeId;
            if ops.is_empty() {
                continue;
            }
            self.node_sends[u as usize] += 1;
            for op in ops {
                match op {
                    SendOp::Broadcast(m) => {
                        let words = m.size_words();
                        self.check_words(u, words);
                        // borrow dance: collect neighbor list first
                        for i in 0..self.g.comm_neighbors(u).len() {
                            let v = self.g.comm_neighbors(u)[i];
                            on_msg(u, v, &m);
                            self.transmit(u, v, m.clone(), words, round, &mut sent_this_round);
                        }
                    }
                    SendOp::Unicast(v, m) => {
                        let words = m.size_words();
                        self.check_words(u, words);
                        on_msg(u, v, &m);
                        self.transmit(u, v, m, words, round, &mut sent_this_round);
                    }
                }
            }
        }
        self.messages += sent_this_round;
        self.max_round_messages = self.max_round_messages.max(sent_this_round);
        if sent_this_round > 0 {
            self.last_activity = round;
        }

        // --- receive phase ---
        if sent_this_round > 0 {
            if parallel {
                self.receive_phase_parallel(round);
            } else {
                let g = self.g;
                for (v, node) in self.nodes.iter_mut().enumerate() {
                    let inbox = &mut self.inboxes[v];
                    if !inbox.is_empty() {
                        node.receive(round, inbox, &NodeCtx::new(v as NodeId, g));
                        inbox.clear();
                    }
                }
            }
        }
        sent_this_round
    }

    fn check_words(&self, u: NodeId, words: usize) {
        assert!(
            words <= self.cfg.max_words,
            "protocol bug: node {u} sent a {words}-word message (budget {})",
            self.cfg.max_words
        );
    }

    fn transmit(
        &mut self,
        u: NodeId,
        v: NodeId,
        m: P::Msg,
        words: usize,
        round: Round,
        sent: &mut u64,
    ) {
        let lid = self.link_id(u, v);
        if self.cfg.enforce_link_capacity {
            assert!(
                self.link_stamp[lid] != round,
                "protocol bug: node {u} sent two messages over link {u}->{v} in round {round}"
            );
        }
        self.link_stamp[lid] = round;
        self.link_load[lid] += 1;
        self.total_words += words as u64;
        *sent += 1;
        self.inboxes[v as usize].push(Envelope::new(u, m));
    }

    fn send_phase_parallel(&mut self, round: Round) -> Vec<Vec<SendOp<P::Msg>>>
    where
        P::Msg: Send,
    {
        let g = self.g;
        let threads = self.cfg.threads;
        let n = self.nodes.len();
        let chunk = n.div_ceil(threads).max(1);
        let mut results: Vec<Vec<Vec<SendOp<P::Msg>>>> = Vec::new();
        crossbeam::thread::scope(|s| {
            let mut handles = Vec::new();
            for (ci, nodes_chunk) in self.nodes.chunks_mut(chunk).enumerate() {
                let base = ci * chunk;
                handles.push(s.spawn(move |_| {
                    nodes_chunk
                        .iter_mut()
                        .enumerate()
                        .map(|(i, node)| {
                            let v = (base + i) as NodeId;
                            let mut out = Outbox::new();
                            node.send(round, &NodeCtx::new(v, g), &mut out);
                            out.drain().collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                results.push(h.join().expect("send worker panicked"));
            }
        })
        .expect("crossbeam scope");
        results.into_iter().flatten().collect()
    }

    fn receive_phase_parallel(&mut self, round: Round) {
        let g = self.g;
        let threads = self.cfg.threads;
        let n = self.nodes.len();
        let chunk = n.div_ceil(threads).max(1);
        crossbeam::thread::scope(|s| {
            for (ci, (nodes_chunk, inbox_chunk)) in self
                .nodes
                .chunks_mut(chunk)
                .zip(self.inboxes.chunks_mut(chunk))
                .enumerate()
            {
                let base = ci * chunk;
                s.spawn(move |_| {
                    for (i, (node, inbox)) in
                        nodes_chunk.iter_mut().zip(inbox_chunk.iter_mut()).enumerate()
                    {
                        if !inbox.is_empty() {
                            let v = (base + i) as NodeId;
                            node.receive(round, inbox, &NodeCtx::new(v, g));
                            inbox.clear();
                        }
                    }
                });
            }
        })
        .expect("crossbeam scope");
    }

    /// Run until the protocol goes quiet or `max_rounds` have elapsed.
    ///
    /// Silent rounds are fast-forwarded using [`Protocol::earliest_send`]:
    /// they count toward the round complexity but are not simulated.
    pub fn run(&mut self, max_rounds: Round) -> RunOutcome {
        loop {
            if self.round >= max_rounds {
                return RunOutcome::BudgetExhausted;
            }
            let sent = self.step_one();
            if sent == 0 {
                // Nothing moved. Ask every node when it might next send.
                let g = self.g;
                let mut next: Option<Round> = None;
                for (v, node) in self.nodes.iter().enumerate() {
                    if let Some(r) = node.earliest_send(self.round + 1, &NodeCtx::new(v as NodeId, g))
                    {
                        debug_assert!(r > self.round, "earliest_send must be in the future");
                        next = Some(next.map_or(r, |cur| cur.min(r)));
                    }
                }
                match next {
                    None => return RunOutcome::Quiet,
                    Some(r) => {
                        // Jump to just before round r (bounded by budget).
                        let target = r.min(max_rounds + 1) - 1;
                        if target > self.round {
                            self.round = target;
                        }
                    }
                }
            }
        }
    }

    /// Metrics snapshot.
    pub fn stats(&self) -> RunStats {
        RunStats {
            rounds: self.last_activity,
            rounds_executed: self.rounds_executed,
            messages: self.messages,
            max_link_load: self.link_load.iter().copied().max().unwrap_or(0),
            max_node_sends: self.node_sends.iter().copied().max().unwrap_or(0),
            max_round_messages: self.max_round_messages,
            total_words: self.total_words,
        }
    }

    /// Per-node send-round counts (Algorithm 2's per-node congestion).
    pub fn node_sends(&self) -> &[u64] {
        &self.node_sends
    }

    /// Consume the network, returning the node programs for result
    /// extraction.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_graph::gen::{self, WeightDist};

    /// Unweighted BFS flood: each node learns its hop distance from node 0
    /// and announces it once.
    struct Flood {
        dist: Option<u64>,
        announced: bool,
    }

    impl Protocol for Flood {
        type Msg = u64;

        fn init(&mut self, ctx: &NodeCtx) {
            if ctx.id == 0 {
                self.dist = Some(0);
            }
        }

        fn send(&mut self, _round: Round, _ctx: &NodeCtx, out: &mut Outbox<u64>) {
            if let (Some(d), false) = (self.dist, self.announced) {
                self.announced = true;
                out.broadcast(d);
            }
        }

        fn receive(&mut self, _round: Round, inbox: &[Envelope<u64>], _ctx: &NodeCtx) {
            for e in inbox {
                let cand = e.msg + 1;
                if self.dist.is_none_or(|d| cand < d) {
                    self.dist = Some(cand);
                    self.announced = false;
                }
            }
        }

        fn earliest_send(&self, after: Round, _ctx: &NodeCtx) -> Option<Round> {
            if self.dist.is_some() && !self.announced {
                Some(after)
            } else {
                None
            }
        }
    }

    fn flood_net(g: &WGraph, cfg: EngineConfig) -> Vec<Option<u64>> {
        let mut net = Network::new(g, cfg, |_| Flood {
            dist: None,
            announced: false,
        });
        assert_eq!(net.run(10_000), RunOutcome::Quiet);
        net.nodes().iter().map(|f| f.dist).collect()
    }

    #[test]
    fn bfs_flood_on_path() {
        let g = gen::path(6, false, WeightDist::Constant(1), 0);
        let d = flood_net(&g, EngineConfig::default());
        assert_eq!(d, (0..6).map(|i| Some(i as u64)).collect::<Vec<_>>());
    }

    #[test]
    fn bfs_flood_round_complexity_is_eccentricity() {
        let g = gen::path(6, false, WeightDist::Constant(1), 0);
        let mut net = Network::new(&g, EngineConfig::default(), |_| Flood {
            dist: None,
            announced: false,
        });
        net.run(100);
        // node 0 announces in round 1, farthest node (hop 5) hears in round 5
        // and announces in round 6.
        assert_eq!(net.stats().rounds, 6);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = gen::gnp_connected(64, 0.08, false, WeightDist::Constant(1), 9);
        let seq = flood_net(&g, EngineConfig::default());
        let par = flood_net(
            &g,
            EngineConfig {
                parallel_threshold: 1,
                threads: 4,
                ..EngineConfig::default()
            },
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn stats_count_messages_and_congestion() {
        let g = gen::path(3, false, WeightDist::Constant(1), 0);
        let mut net = Network::new(&g, EngineConfig::default(), |_| Flood {
            dist: None,
            announced: false,
        });
        net.run(100);
        let st = net.stats();
        // node0 broadcasts 1 msg; node1 broadcasts 2; node2 broadcasts 1.
        assert_eq!(st.messages, 4);
        assert_eq!(st.max_link_load, 1);
        assert_eq!(st.max_node_sends, 1);
        assert!(st.total_words >= st.messages);
    }

    /// A protocol that (wrongly) unicasts twice over one link in a round.
    struct DoubleSend;
    impl Protocol for DoubleSend {
        type Msg = u64;
        fn send(&mut self, round: Round, ctx: &NodeCtx, out: &mut Outbox<u64>) {
            if round == 1 && ctx.id == 0 {
                out.unicast(1, 1);
                out.unicast(1, 2);
            }
        }
        fn receive(&mut self, _r: Round, _i: &[Envelope<u64>], _c: &NodeCtx) {}
    }

    #[test]
    #[should_panic(expected = "two messages over link")]
    fn double_send_rejected() {
        let g = gen::path(2, false, WeightDist::Constant(1), 0);
        let mut net = Network::new(&g, EngineConfig::default(), |_| DoubleSend);
        net.step_one();
    }

    /// A protocol that sends to a node it has no link to.
    struct BadTarget;
    impl Protocol for BadTarget {
        type Msg = u64;
        fn send(&mut self, round: Round, ctx: &NodeCtx, out: &mut Outbox<u64>) {
            if round == 1 && ctx.id == 0 {
                out.unicast(2, 1);
            }
        }
        fn receive(&mut self, _r: Round, _i: &[Envelope<u64>], _c: &NodeCtx) {}
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn non_neighbor_rejected() {
        let g = gen::path(3, false, WeightDist::Constant(1), 0); // 0-1-2
        let mut net = Network::new(&g, EngineConfig::default(), |_| BadTarget);
        net.step_one();
    }

    /// A protocol with an oversized message.
    struct BigMsg;
    #[derive(Clone)]
    struct Huge;
    impl MsgSize for Huge {
        fn size_words(&self) -> usize {
            99
        }
    }
    impl Protocol for BigMsg {
        type Msg = Huge;
        fn send(&mut self, round: Round, ctx: &NodeCtx, out: &mut Outbox<Huge>) {
            if round == 1 && ctx.id == 0 {
                out.broadcast(Huge);
            }
        }
        fn receive(&mut self, _r: Round, _i: &[Envelope<Huge>], _c: &NodeCtx) {}
    }

    #[test]
    #[should_panic(expected = "99-word message")]
    fn oversized_message_rejected() {
        let g = gen::path(2, false, WeightDist::Constant(1), 0);
        let mut net = Network::new(&g, EngineConfig::default(), |_| BigMsg);
        net.step_one();
    }

    /// Sparse schedule: node 0 sends only in round 1000. Fast-forward must
    /// make this cheap while still reporting 1000 rounds.
    struct LateSender {
        sent: bool,
    }
    impl Protocol for LateSender {
        type Msg = u64;
        fn send(&mut self, round: Round, ctx: &NodeCtx, out: &mut Outbox<u64>) {
            if round == 1000 && ctx.id == 0 && !self.sent {
                self.sent = true;
                out.broadcast(7);
            }
        }
        fn receive(&mut self, _r: Round, _i: &[Envelope<u64>], _c: &NodeCtx) {}
        fn earliest_send(&self, after: Round, ctx: &NodeCtx) -> Option<Round> {
            if ctx.id == 0 && !self.sent {
                Some(after.max(1000))
            } else {
                None
            }
        }
    }

    #[test]
    fn fast_forward_skips_silent_rounds() {
        let g = gen::path(2, false, WeightDist::Constant(1), 0);
        let mut net = Network::new(&g, EngineConfig::default(), |_| LateSender { sent: false });
        assert_eq!(net.run(5000), RunOutcome::Quiet);
        let st = net.stats();
        assert_eq!(st.rounds, 1000);
        assert!(st.rounds_executed < 10, "executed {}", st.rounds_executed);
        assert_eq!(st.messages, 1);
    }

    #[test]
    fn tracing_records_executed_rounds() {
        let g = gen::path(4, false, WeightDist::Constant(1), 0);
        let mut net = Network::new(&g, EngineConfig::default(), |_| Flood {
            dist: None,
            announced: false,
        });
        let mut trace = crate::trace::RoundTrace::with_payloads();
        for _ in 0..6 {
            net.step_traced(&mut trace);
        }
        // node0 announces in round 1; farthest announces in round 4
        assert_eq!(trace.send_rounds_of(0), vec![1]);
        assert_eq!(trace.send_rounds_of(3), vec![4]);
        let r1 = trace.round(1).unwrap();
        assert_eq!(r1.messages, 1);
        assert!(r1.payloads.iter().any(|(f, t, p)| *f == 0 && *t == 1 && p == "0"));
        // silent rounds after quiescence produce no records
        assert!(trace.round(6).is_none());
    }

    #[test]
    fn budget_exhaustion_reported() {
        let g = gen::path(2, false, WeightDist::Constant(1), 0);
        let mut net = Network::new(&g, EngineConfig::default(), |_| LateSender { sent: false });
        assert_eq!(net.run(10), RunOutcome::BudgetExhausted);
    }
}
