//! Deterministic fault injection for the round engine.
//!
//! The CONGEST model assumes perfectly reliable synchronous links. Real
//! deployments (and robustness arguments about the paper's pipelined
//! schedules) need the opposite: messages that are dropped, duplicated or
//! delayed, and links that fail for whole round intervals. A [`FaultPlan`]
//! describes such an adversary **deterministically**: the decision for the
//! message on directed link `(u, v)` in round `r` is a pure function of
//! `(plan seed, u, v, r)`, derived from a dedicated ChaCha8 stream. Two
//! runs with the same seed and the same traffic therefore see byte-for-byte
//! identical faults, regardless of engine parallelism or iteration order —
//! which is what makes the conformance suite in `dwapsp` possible.
//!
//! The plan is enforced inside [`crate::engine::Network`]'s delivery path:
//! the sender still occupies the link (the message was put on the wire, so
//! capacity and congestion accounting are unchanged), only the *delivery*
//! is tampered with. All tampering is tallied in [`crate::RunStats`] and,
//! per round, in [`crate::trace::RoundRecord`].

use crate::protocol::Round;
use dw_graph::NodeId;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// What happens to one message on one directed link in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Normal delivery this round.
    Deliver,
    /// The message vanishes (random loss).
    Drop,
    /// The message vanishes because the link is in a scheduled outage.
    OutageDrop,
    /// The receiver gets two copies this round.
    Duplicate,
    /// Delivery is postponed by this many rounds (`>= 1`).
    Delay(Round),
}

/// A scheduled link failure: messages on the link are dropped for every
/// round in `start..=end` (inclusive), then the link heals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    pub from: NodeId,
    pub to: NodeId,
    pub start: Round,
    pub end: Round,
    /// Also fail the reverse direction `to -> from`.
    pub symmetric: bool,
}

impl Outage {
    fn covers(&self, u: NodeId, v: NodeId, round: Round) -> bool {
        if round < self.start || round > self.end {
            return false;
        }
        (u == self.from && v == self.to) || (self.symmetric && u == self.to && v == self.from)
    }
}

/// A per-directed-link delay profile: messages on `from -> to` are
/// delayed with probability `p`, by a uniform number of rounds in
/// `1..=max_delay`, *instead of* the plan-wide fault mix. Distinct links
/// with distinct profiles make deliveries genuinely reorder (a message
/// sent in round `r` and delayed by 4 arrives after the round-`r+1`
/// message that was delayed by 1), which is the adversary the reliable
/// channel's sequence numbers exist for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDelay {
    pub from: NodeId,
    pub to: NodeId,
    pub p: f64,
    pub max_delay: Round,
}

impl LinkDelay {
    fn covers(&self, u: NodeId, v: NodeId) -> bool {
        u == self.from && v == self.to
    }
}

/// A deterministic, seeded description of link faults.
///
/// Build with the `with_*` combinators:
///
/// ```
/// use dw_congest::fault::FaultPlan;
/// let plan = FaultPlan::new(42)
///     .with_drop(0.05)
///     .with_duplicate(0.01)
///     .with_delay(0.02, 3);
/// assert!(!plan.is_pristine());
/// ```
///
/// The per-message probabilities must sum to at most 1; the remainder is
/// the probability of clean delivery. Outages override the random draws.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_p: f64,
    dup_p: f64,
    delay_p: f64,
    max_delay: Round,
    outages: Vec<Outage>,
    link_delays: Vec<LinkDelay>,
}

impl FaultPlan {
    /// A plan that (so far) faults nothing; combine with `with_*`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            max_delay: 0,
            outages: Vec::new(),
            link_delays: Vec::new(),
        }
    }

    /// Shorthand for a pure random-loss plan.
    pub fn drop_only(seed: u64, p: f64) -> Self {
        FaultPlan::new(seed).with_drop(p)
    }

    /// Drop each message independently with probability `p`.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_p = p;
        self.validate();
        self
    }

    /// Duplicate each message independently with probability `p`.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.dup_p = p;
        self.validate();
        self
    }

    /// Delay each message with probability `p`, by a uniform number of
    /// rounds in `1..=max_delay`.
    pub fn with_delay(mut self, p: f64, max_delay: Round) -> Self {
        self.delay_p = p;
        self.max_delay = max_delay;
        assert!(
            p == 0.0 || max_delay >= 1,
            "delay faults need max_delay >= 1"
        );
        self.validate();
        self
    }

    /// Give one directed link its own delay profile, overriding the
    /// plan-wide fault mix on that link. Heterogeneous profiles across
    /// the links of one node are what reorder deliveries relative to
    /// send order (see [`LinkDelay`]).
    pub fn with_link_delay(mut self, rule: LinkDelay) -> Self {
        assert!(
            (0.0..=1.0).contains(&rule.p),
            "link delay probability {} not in [0, 1]",
            rule.p
        );
        assert!(
            rule.p == 0.0 || rule.max_delay >= 1,
            "link delay faults need max_delay >= 1"
        );
        self.link_delays.push(rule);
        self
    }

    /// Schedule a link outage.
    pub fn with_outage(mut self, outage: Outage) -> Self {
        assert!(outage.start <= outage.end, "outage interval is empty");
        self.outages.push(outage);
        self
    }

    fn validate(&self) {
        for (name, p) in [
            ("drop", self.drop_p),
            ("duplicate", self.dup_p),
            ("delay", self.delay_p),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} probability {p} not in [0, 1]"
            );
        }
        let total = self.drop_p + self.dup_p + self.delay_p;
        assert!(total <= 1.0, "fault probabilities sum to {total} > 1");
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True iff this plan can never tamper with any message.
    pub fn is_pristine(&self) -> bool {
        self.drop_p == 0.0
            && self.dup_p == 0.0
            && self.delay_p == 0.0
            && self.outages.is_empty()
            && self.link_delays.iter().all(|r| r.p == 0.0)
    }

    /// True iff the plan schedules delay faults (the multi-instance
    /// scheduler cannot absorb those; see [`crate::scheduler`]).
    pub fn has_delays(&self) -> bool {
        self.delay_p > 0.0 || self.link_delays.iter().any(|r| r.p > 0.0)
    }

    /// The deterministic per-message seed: a SplitMix64 chain over the plan
    /// seed and the message coordinates. Order-independent, so sequential
    /// and parallel engines agree.
    fn event_seed(&self, u: NodeId, v: NodeId, round: Round) -> u64 {
        fn splitmix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        splitmix(self.seed ^ splitmix(((u as u64) << 32 | v as u64) ^ splitmix(round)))
    }

    /// Decide the fate of the message sent on `u -> v` in `round`.
    ///
    /// At most one message exists per directed link per round (the CONGEST
    /// capacity), so `(u, v, round)` identifies the message uniquely.
    pub fn decide(&self, u: NodeId, v: NodeId, round: Round) -> FaultAction {
        for o in &self.outages {
            if o.covers(u, v, round) {
                return FaultAction::OutageDrop;
            }
        }
        if let Some(rule) = self.link_delays.iter().find(|r| r.covers(u, v)) {
            let mut rng = ChaCha8Rng::seed_from_u64(self.event_seed(u, v, round));
            let x = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            return if x < rule.p {
                FaultAction::Delay(rng.gen_range(1..=rule.max_delay))
            } else {
                FaultAction::Deliver
            };
        }
        let total = self.drop_p + self.dup_p + self.delay_p;
        if total == 0.0 {
            return FaultAction::Deliver;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.event_seed(u, v, round));
        // 53-bit uniform in [0, 1).
        let x = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if x < self.drop_p {
            FaultAction::Drop
        } else if x < self.drop_p + self.dup_p {
            FaultAction::Duplicate
        } else if x < total {
            FaultAction::Delay(rng.gen_range(1..=self.max_delay))
        } else {
            FaultAction::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_plan_always_delivers() {
        let plan = FaultPlan::new(7);
        assert!(plan.is_pristine());
        for r in 1..100 {
            assert_eq!(plan.decide(0, 1, r), FaultAction::Deliver);
        }
    }

    #[test]
    fn link_delay_rule_overrides_plan_mix_on_its_link_only() {
        let plan = FaultPlan::new(3).with_drop(1.0).with_link_delay(LinkDelay {
            from: 0,
            to: 1,
            p: 1.0,
            max_delay: 4,
        });
        assert!(plan.has_delays());
        for r in 1..50 {
            // The ruled link only ever delays (never the plan-wide drop)…
            match plan.decide(0, 1, r) {
                FaultAction::Delay(d) => assert!((1..=4).contains(&d)),
                other => panic!("round {r}: expected a delay, got {other:?}"),
            }
            // …while every other link still sees the plan-wide mix.
            assert_eq!(plan.decide(1, 0, r), FaultAction::Drop);
            assert_eq!(plan.decide(0, 2, r), FaultAction::Drop);
        }
        // Same coordinates, same decision — the rule is deterministic.
        assert_eq!(plan.decide(0, 1, 7), plan.decide(0, 1, 7));
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::new(11).with_drop(0.3).with_delay(0.2, 4);
        let b = a.clone();
        for r in 1..500 {
            for (u, v) in [(0, 1), (1, 0), (2, 5)] {
                assert_eq!(a.decide(u, v, r), b.decide(u, v, r));
            }
        }
    }

    #[test]
    fn different_links_get_independent_decisions() {
        let plan = FaultPlan::drop_only(3, 0.5);
        let mut differ = false;
        for r in 1..64 {
            if plan.decide(0, 1, r) != plan.decide(1, 0, r) {
                differ = true;
                break;
            }
        }
        assert!(differ, "forward and reverse links must draw independently");
    }

    #[test]
    fn drop_rate_is_roughly_respected() {
        let plan = FaultPlan::drop_only(99, 0.25);
        let mut drops = 0u32;
        let trials = 4000;
        for r in 1..=trials {
            if plan.decide(4, 9, r) == FaultAction::Drop {
                drops += 1;
            }
        }
        let rate = drops as f64 / trials as f64;
        assert!((0.2..0.3).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn delay_magnitudes_in_bounds() {
        let plan = FaultPlan::new(5).with_delay(1.0, 3);
        for r in 1..200 {
            match plan.decide(1, 2, r) {
                FaultAction::Delay(d) => assert!((1..=3).contains(&d)),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn outage_overrides_randomness() {
        let plan = FaultPlan::new(1).with_outage(Outage {
            from: 0,
            to: 1,
            start: 10,
            end: 20,
            symmetric: true,
        });
        assert_eq!(plan.decide(0, 1, 9), FaultAction::Deliver);
        assert_eq!(plan.decide(0, 1, 10), FaultAction::OutageDrop);
        assert_eq!(plan.decide(1, 0, 15), FaultAction::OutageDrop);
        assert_eq!(plan.decide(0, 1, 21), FaultAction::Deliver);
        assert_eq!(plan.decide(2, 3, 15), FaultAction::Deliver);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn overfull_probabilities_rejected() {
        let _ = FaultPlan::new(0).with_drop(0.7).with_duplicate(0.5);
    }
}
