//! Recycled buffer slab with generation-checked handles.
//!
//! The engine delivers into per-node inboxes, but at 100k+ nodes keeping
//! a grow/clear `Vec` *per node* pins O(n) buffers (and their capacity)
//! forever, even though only the nodes that got mail this round need one.
//! The slab keeps a pool of recycled buffers sized to the **concurrent**
//! demand instead: a node acquires a slot on its first delivery of the
//! round and releases it after its receive, so resident memory tracks the
//! per-round dirty set, hot buffers stay cache-warm across rounds, and
//! steady-state rounds allocate nothing.
//!
//! Handles carry a generation counter bumped on every release; a stale
//! handle (use-after-release, an engine bug) fails loudly instead of
//! silently reading another node's mail.

/// Handle to a slab slot, valid until the slot is released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabRef {
    idx: u32,
    gen: u32,
}

impl SlabRef {
    /// Sentinel for "no slot held".
    pub const NONE: SlabRef = SlabRef {
        idx: u32::MAX,
        gen: u32::MAX,
    };

    /// Raw slot index, for use with [`Slab::raw_parts`] (validate against
    /// the generation table via [`SlabRef::generation`]).
    pub(crate) fn slot(&self) -> usize {
        self.idx as usize
    }

    /// The generation this handle was issued under.
    pub(crate) fn generation(&self) -> u32 {
        self.gen
    }
}

/// A pool of recycled `Vec<T>` buffers. See the module docs.
#[derive(Debug)]
pub struct Slab<T> {
    bufs: Vec<Vec<T>>,
    gens: Vec<u32>,
    free: Vec<u32>,
    live: usize,
    peak: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    pub fn new() -> Self {
        Slab {
            bufs: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak: 0,
        }
    }

    /// Check out an empty buffer (recycled when possible).
    pub fn acquire(&mut self) -> SlabRef {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.bufs.push(Vec::new());
                self.gens.push(0);
                (self.bufs.len() - 1) as u32
            }
        };
        self.live += 1;
        self.peak = self.peak.max(self.live);
        SlabRef {
            idx,
            gen: self.gens[idx as usize],
        }
    }

    #[inline]
    fn check(&self, r: SlabRef) -> usize {
        let i = r.idx as usize;
        assert!(
            i < self.bufs.len() && self.gens[i] == r.gen,
            "stale or invalid slab handle {r:?}"
        );
        i
    }

    /// The buffer behind a live handle.
    #[inline]
    pub fn get(&self, r: SlabRef) -> &[T] {
        let i = self.check(r);
        &self.bufs[i]
    }

    /// Mutable access to the buffer behind a live handle.
    #[inline]
    pub fn get_mut(&mut self, r: SlabRef) -> &mut Vec<T> {
        let i = self.check(r);
        &mut self.bufs[i]
    }

    /// Return a slot to the pool. Its contents are cleared (capacity is
    /// kept for recycling) and the handle is invalidated.
    pub fn release(&mut self, r: SlabRef) {
        let i = self.check(r);
        self.bufs[i].clear();
        self.gens[i] = self.gens[i].wrapping_add(1);
        self.free.push(r.idx);
        self.live -= 1;
    }

    /// Raw parts for the parallel receive phase: a disjoint-write pointer
    /// over the slot buffers plus the generation table for handle
    /// validation inside jobs. Caller contract as for [`Ptr`]: each slot
    /// index is touched by at most one job.
    pub(crate) fn raw_parts(&mut self) -> (crate::pool::Ptr<Vec<T>>, &[u32]) {
        (crate::pool::Ptr(self.bufs.as_mut_ptr()), &self.gens)
    }

    /// Buffers currently checked out.
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of concurrently checked-out buffers over the
    /// slab's lifetime — the "peak slab occupancy" memory counter.
    pub fn peak_live(&self) -> usize {
        self.peak
    }

    /// Bytes resident in the recycled buffers (capacity, not length):
    /// the slab's steady-state allocation footprint.
    pub fn resident_bytes(&self) -> usize {
        self.bufs
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<T>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_recycles_capacity() {
        let mut s: Slab<u64> = Slab::new();
        let a = s.acquire();
        s.get_mut(a).extend([1, 2, 3]);
        let cap = s.get_mut(a).capacity();
        assert!(cap >= 3);
        s.release(a);
        assert_eq!(s.live(), 0);
        let b = s.acquire();
        assert!(s.get(b).is_empty(), "recycled buffer arrives cleared");
        assert!(s.get_mut(b).capacity() >= cap, "capacity survives recycle");
        assert_eq!(s.resident_bytes(), cap * 8);
    }

    #[test]
    fn peak_tracks_concurrent_demand() {
        let mut s: Slab<u8> = Slab::new();
        let a = s.acquire();
        let b = s.acquire();
        assert_eq!((s.live(), s.peak_live()), (2, 2));
        s.release(a);
        let c = s.acquire();
        assert_eq!((s.live(), s.peak_live()), (2, 2), "recycle, not growth");
        s.release(b);
        s.release(c);
        assert_eq!((s.live(), s.peak_live()), (0, 2));
    }

    #[test]
    #[should_panic(expected = "stale or invalid slab handle")]
    fn stale_handle_rejected() {
        let mut s: Slab<u8> = Slab::new();
        let a = s.acquire();
        s.release(a);
        let _ = s.acquire(); // same slot, new generation
        let _ = s.get(a);
    }

    #[test]
    #[should_panic(expected = "stale or invalid slab handle")]
    fn none_handle_rejected() {
        let s: Slab<u8> = Slab::new();
        let _ = s.get(SlabRef::NONE);
    }
}
