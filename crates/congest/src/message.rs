//! Message plumbing and size accounting.

use dw_graph::NodeId;

/// Size accounting for CONGEST messages.
///
/// The model allows `O(log n)` bits per message. We account in *words*,
/// where one word holds one `O(log n)`-bit quantity (a node id, a distance,
/// a hop count, a counter). A message's size is the number of such
/// quantities it carries; the engine enforces a per-message word budget
/// ([`crate::EngineConfig::max_words`]).
pub trait MsgSize {
    /// Number of `O(log n)`-bit words in this message.
    fn size_words(&self) -> usize;
}

impl MsgSize for () {
    fn size_words(&self) -> usize {
        0
    }
}

impl MsgSize for u64 {
    fn size_words(&self) -> usize {
        1
    }
}

impl MsgSize for u32 {
    fn size_words(&self) -> usize {
        1
    }
}

impl<A: MsgSize, B: MsgSize> MsgSize for (A, B) {
    fn size_words(&self) -> usize {
        self.0.size_words() + self.1.size_words()
    }
}

/// A delivered message together with its sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    pub from: NodeId,
    pub msg: M,
}

impl<M> Envelope<M> {
    pub fn new(from: NodeId, msg: M) -> Self {
        Envelope { from, msg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_sizes_add() {
        let m = (3u64, (4u32, 5u64));
        assert_eq!(m.size_words(), 3);
    }

    #[test]
    fn unit_is_free() {
        assert_eq!(().size_words(), 0);
    }
}
