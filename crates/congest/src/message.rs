//! Message plumbing and size accounting.

use dw_graph::NodeId;
use std::sync::Arc;

/// Size accounting for CONGEST messages.
///
/// The model allows `O(log n)` bits per message. We account in *words*,
/// where one word holds one `O(log n)`-bit quantity (a node id, a distance,
/// a hop count, a counter). A message's size is the number of such
/// quantities it carries; the engine enforces a per-message word budget
/// ([`crate::EngineConfig::max_words`]).
pub trait MsgSize {
    /// Number of `O(log n)`-bit words in this message.
    fn size_words(&self) -> usize;
}

impl MsgSize for () {
    fn size_words(&self) -> usize {
        0
    }
}

impl MsgSize for u64 {
    fn size_words(&self) -> usize {
        1
    }
}

impl MsgSize for u32 {
    fn size_words(&self) -> usize {
        1
    }
}

impl<A: MsgSize, B: MsgSize> MsgSize for (A, B) {
    fn size_words(&self) -> usize {
        self.0.size_words() + self.1.size_words()
    }
}

/// How an envelope holds its message.
///
/// Unicasts own their payload. Broadcast deliveries share one allocation
/// across all recipient inboxes (`Arc`), so a degree-`d` broadcast costs
/// one clone instead of `d` — the receiver-facing API is unchanged because
/// payloads are read-only by contract ([`crate::Protocol::receive`] takes
/// the inbox by shared reference).
#[derive(Debug)]
enum Payload<M> {
    Own(M),
    Shared(Arc<M>),
}

impl<M> Payload<M> {
    #[inline]
    fn get(&self) -> &M {
        match self {
            Payload::Own(m) => m,
            Payload::Shared(a) => a,
        }
    }
}

impl<M: Clone> Clone for Payload<M> {
    fn clone(&self) -> Self {
        match self {
            // Cloning a shared payload bumps the refcount; the message
            // itself is cloned at most once per broadcast.
            Payload::Own(m) => Payload::Own(m.clone()),
            Payload::Shared(a) => Payload::Shared(Arc::clone(a)),
        }
    }
}

/// A delivered message together with its sender.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    pub from: NodeId,
    payload: Payload<M>,
}

impl<M> Envelope<M> {
    /// An envelope owning its payload (unicast delivery, tests, adapters).
    pub fn new(from: NodeId, msg: M) -> Self {
        Envelope {
            from,
            payload: Payload::Own(msg),
        }
    }

    /// An envelope sharing a broadcast payload (engine delivery path).
    pub(crate) fn shared(from: NodeId, msg: Arc<M>) -> Self {
        Envelope {
            from,
            payload: Payload::Shared(msg),
        }
    }

    /// The message carried by this envelope.
    #[inline]
    pub fn msg(&self) -> &M {
        self.payload.get()
    }
}

impl<M: PartialEq> PartialEq for Envelope<M> {
    fn eq(&self, other: &Self) -> bool {
        self.from == other.from && self.msg() == other.msg()
    }
}

impl<M: Eq> Eq for Envelope<M> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_sizes_add() {
        let m = (3u64, (4u32, 5u64));
        assert_eq!(m.size_words(), 3);
    }

    #[test]
    fn unit_is_free() {
        assert_eq!(().size_words(), 0);
    }

    #[test]
    fn shared_and_owned_envelopes_compare_by_content() {
        let a = Envelope::new(3, 42u64);
        let b = Envelope::shared(3, Arc::new(42u64));
        assert_eq!(a, b);
        assert_eq!(*b.msg(), 42);
        let c = b.clone();
        assert_eq!(c, b);
        assert_ne!(Envelope::new(3, 7u64), a);
        assert_ne!(Envelope::new(4, 42u64), a);
    }
}
