//! Convergecast aggregation (global max / sum) over a rooted tree.
//!
//! Used by the greedy blocker-set loop (Section III-B): each iteration must
//! identify the node with the maximum score. Leaves report immediately;
//! every internal node reports to its parent once all children have
//! reported. `height + 1` rounds.

use crate::engine::{EngineConfig, Network, RunOutcome};
use crate::message::{Envelope, MsgSize};
use crate::metrics::RunStats;
use crate::outbox::Outbox;
use crate::primitives::bfs::BfsTree;
use crate::protocol::{NodeCtx, Protocol, Round};
use dw_graph::{NodeId, WGraph};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Maximum value; ties broken toward the smaller node id.
    Max,
    /// Sum of values (the carried id is ignored).
    Sum,
}

/// `(value, witness node id)` — 2 words.
#[derive(Debug, Clone, Copy)]
struct Agg {
    value: u64,
    id: NodeId,
}

impl MsgSize for Agg {
    fn size_words(&self) -> usize {
        2
    }
}

fn combine(op: Op, a: Agg, b: Agg) -> Agg {
    match op {
        Op::Max => {
            if b.value > a.value || (b.value == a.value && b.id < a.id) {
                b
            } else {
                a
            }
        }
        Op::Sum => Agg {
            value: a.value + b.value,
            id: a.id.min(b.id),
        },
    }
}

struct CcNode {
    op: Op,
    parent: Option<NodeId>,
    pending_children: usize,
    acc: Agg,
    sent: bool,
    in_tree: bool,
}

impl Protocol for CcNode {
    type Msg = Agg;

    fn send(&mut self, _round: Round, _ctx: &NodeCtx, out: &mut Outbox<Agg>) {
        if self.in_tree && !self.sent && self.pending_children == 0 {
            self.sent = true;
            if let Some(p) = self.parent {
                out.unicast(p, self.acc);
            }
        }
    }

    fn receive(&mut self, _round: Round, inbox: &[Envelope<Agg>], _ctx: &NodeCtx) {
        for e in inbox {
            self.acc = combine(self.op, self.acc, *e.msg());
            self.pending_children -= 1;
        }
    }

    fn earliest_send(&self, after: Round, _ctx: &NodeCtx) -> Option<Round> {
        if self.in_tree && !self.sent && self.pending_children == 0 {
            Some(after)
        } else {
            None
        }
    }
}

fn converge(
    g: &WGraph,
    tree: &BfsTree,
    values: &[u64],
    op: Op,
    cfg: EngineConfig,
) -> (Agg, RunStats) {
    assert_eq!(values.len(), g.n());
    let mut net = Network::new(g, cfg, |v| CcNode {
        op,
        parent: tree.parent[v as usize],
        pending_children: tree.children[v as usize].len(),
        acc: Agg {
            value: values[v as usize],
            id: v,
        },
        sent: false,
        in_tree: tree.depth[v as usize] != u64::MAX,
    });
    let outcome = net.run(tree.height() + 2);
    debug_assert_eq!(outcome, RunOutcome::Quiet);
    let stats = net.stats();
    let acc = net.node(tree.root).acc;
    (acc, stats)
}

/// Global maximum of `values` (ties to the smaller node id), aggregated at
/// `tree.root`. Returns `((max_value, argmax_node), stats)`.
pub fn converge_max(
    g: &WGraph,
    tree: &BfsTree,
    values: &[u64],
    cfg: EngineConfig,
) -> ((u64, NodeId), RunStats) {
    let (agg, st) = converge(g, tree, values, Op::Max, cfg);
    ((agg.value, agg.id), st)
}

/// Global sum of `values`, aggregated at `tree.root`.
pub fn converge_sum(
    g: &WGraph,
    tree: &BfsTree,
    values: &[u64],
    cfg: EngineConfig,
) -> (u64, RunStats) {
    let (agg, st) = converge(g, tree, values, Op::Sum, cfg);
    (agg.value, st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::bfs::build_bfs_tree;
    use dw_graph::gen::{self, WeightDist};

    fn setup(n: usize, seed: u64) -> (WGraph, BfsTree) {
        let g = gen::gnp_connected(n, 0.1, false, WeightDist::Constant(1), seed);
        let (t, _) = build_bfs_tree(&g, 0, EngineConfig::default());
        (g, t)
    }

    #[test]
    fn max_finds_argmax() {
        let (g, t) = setup(30, 1);
        let mut values: Vec<u64> = (0..30).map(|i| (i * 7 % 23) as u64).collect();
        values[17] = 1000;
        let ((v, id), st) = converge_max(&g, &t, &values, EngineConfig::default());
        assert_eq!((v, id), (1000, 17));
        assert!(st.rounds <= t.height() + 1);
    }

    #[test]
    fn max_tie_breaks_to_smaller_id() {
        let (g, t) = setup(20, 2);
        let mut values = vec![5u64; 20];
        values[4] = 9;
        values[11] = 9;
        let ((v, id), _) = converge_max(&g, &t, &values, EngineConfig::default());
        assert_eq!((v, id), (9, 4));
    }

    #[test]
    fn sum_is_total() {
        let (g, t) = setup(25, 3);
        let values: Vec<u64> = (0..25).map(|i| i as u64).collect();
        let (s, _) = converge_sum(&g, &t, &values, EngineConfig::default());
        assert_eq!(s, (0..25).sum::<u64>());
    }

    #[test]
    fn single_node_tree() {
        let g = gen::path(1, false, WeightDist::Constant(1), 0);
        let (t, _) = build_bfs_tree(&g, 0, EngineConfig::default());
        let ((v, id), st) = converge_max(&g, &t, &[42], EngineConfig::default());
        assert_eq!((v, id), (42, 0));
        assert_eq!(st.messages, 0);
    }

    #[test]
    fn message_count_is_n_minus_one() {
        let (g, t) = setup(30, 4);
        let (_, st) = converge_sum(&g, &t, &vec![1; 30], EngineConfig::default());
        assert_eq!(st.messages, 29);
    }
}
