//! Distributed building blocks used by the higher-level algorithms.
//!
//! The blocker-set machinery (paper Section III-B and \[3\]) repeatedly needs
//! three classical CONGEST primitives on the communication graph:
//!
//! * a **BFS spanning tree** (`O(D)` rounds),
//! * **pipelined broadcast** of `q` values over that tree (`O(q + D)` rounds),
//! * **convergecast** aggregation (global max / sum, `O(D)` rounds).
//!
//! Each is implemented as a genuine [`crate::Protocol`] and driven on the
//! engine, so its rounds and messages are accounted like everything else.

mod bfs;
mod broadcast;
mod convergecast;

pub use bfs::{build_bfs_tree, BfsTree};
pub use broadcast::pipeline_broadcast;
pub use convergecast::{converge_max, converge_sum};
