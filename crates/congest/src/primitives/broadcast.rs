//! Pipelined broadcast of a sequence of values over a rooted tree.
//!
//! The root injects item `i` in round `i`; every node forwards an item to
//! its children one round after receiving it. `q` items over a tree of
//! height `D` reach every node within `q + D` rounds — the schedule used
//! by Steps 3–4 of Algorithm 3 (broadcasting blocker distances).

use crate::engine::{EngineConfig, Network, RunOutcome};
use crate::message::{Envelope, MsgSize};
use crate::metrics::RunStats;
use crate::outbox::Outbox;
use crate::primitives::bfs::BfsTree;
use crate::protocol::{NodeCtx, Protocol, Round};
use dw_graph::WGraph;
use std::collections::VecDeque;

/// An indexed item in flight.
#[derive(Debug, Clone)]
struct Item<M> {
    idx: u64,
    payload: M,
}

impl<M: MsgSize> MsgSize for Item<M> {
    fn size_words(&self) -> usize {
        1 + self.payload.size_words()
    }
}

struct BcastNode<M> {
    children: Vec<dw_graph::NodeId>,
    /// Items queued for forwarding to children (root starts with all).
    queue: VecDeque<Item<M>>,
    received: Vec<(u64, M)>,
}

impl<M: Clone + MsgSize + Send + Sync> Protocol for BcastNode<M> {
    type Msg = Item<M>;

    fn send(&mut self, _round: Round, _ctx: &NodeCtx, out: &mut Outbox<Item<M>>) {
        if let Some(item) = self.queue.pop_front() {
            if !self.children.is_empty() {
                out.multicast(self.children.iter().copied(), item);
            }
        }
    }

    fn receive(&mut self, _round: Round, inbox: &[Envelope<Item<M>>], _ctx: &NodeCtx) {
        for e in inbox {
            self.received.push((e.msg().idx, e.msg().payload.clone()));
            self.queue.push_back(e.msg().clone());
        }
    }

    fn earliest_send(&self, after: Round, _ctx: &NodeCtx) -> Option<Round> {
        if self.queue.is_empty() {
            None
        } else {
            Some(after)
        }
    }
}

/// Broadcast `items` from `tree.root` to every tree node. Returns the items
/// received at each node (in index order) and the run stats.
///
/// Every node receives all `q` items within `q + height` rounds.
pub fn pipeline_broadcast<M: Clone + MsgSize + Send + Sync>(
    g: &WGraph,
    tree: &BfsTree,
    items: Vec<M>,
    cfg: EngineConfig,
) -> (Vec<Vec<M>>, RunStats) {
    let q = items.len() as u64;
    let mut net = Network::new(g, cfg, |v| {
        let queue: VecDeque<Item<M>> = if v == tree.root {
            items
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, payload)| Item {
                    idx: i as u64,
                    payload,
                })
                .collect()
        } else {
            VecDeque::new()
        };
        BcastNode {
            children: tree.children[v as usize].clone(),
            queue,
            received: Vec::new(),
        }
    });
    let outcome = net.run(q + tree.height() + 2);
    debug_assert_eq!(outcome, RunOutcome::Quiet);
    let stats = net.stats();
    let per_node = net
        .into_nodes()
        .into_iter()
        .map(|mut nd| {
            nd.received.sort_by_key(|&(i, _)| i);
            nd.received.into_iter().map(|(_, m)| m).collect()
        })
        .collect();
    (per_node, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::bfs::build_bfs_tree;
    use dw_graph::gen::{self, WeightDist};

    fn bcast(g: &WGraph, items: Vec<u64>) -> (Vec<Vec<u64>>, RunStats, u64) {
        let (tree, _) = build_bfs_tree(g, 0, EngineConfig::default());
        let h = tree.height();
        let (per_node, st) = pipeline_broadcast(g, &tree, items, EngineConfig::default());
        (per_node, st, h)
    }

    #[test]
    fn all_nodes_receive_all_items_in_order() {
        let g = gen::gnp_connected(40, 0.07, false, WeightDist::Constant(1), 5);
        let items: Vec<u64> = (100..120).collect();
        let (per_node, _, _) = bcast(&g, items.clone());
        for (v, got) in per_node.iter().enumerate() {
            if v == 0 {
                assert!(got.is_empty()); // root already has them
            } else {
                assert_eq!(got, &items, "node {v}");
            }
        }
    }

    #[test]
    fn round_bound_q_plus_depth() {
        let g = gen::path(10, false, WeightDist::Constant(1), 0);
        let items: Vec<u64> = (0..25).collect();
        let (_, st, h) = bcast(&g, items);
        assert_eq!(h, 9);
        assert!(st.rounds <= 25 + h + 1, "rounds {} height {h}", st.rounds);
    }

    #[test]
    fn empty_broadcast_is_noop() {
        let g = gen::path(3, false, WeightDist::Constant(1), 0);
        let (per_node, st, _) = bcast(&g, vec![]);
        assert!(per_node.iter().all(|v| v.is_empty()));
        assert_eq!(st.messages, 0);
    }

    #[test]
    fn leaf_only_receives_once_per_item() {
        let g = gen::star(6, false, WeightDist::Constant(1), 0);
        let (per_node, st, _) = bcast(&g, vec![7, 8]);
        for got in per_node.iter().skip(1) {
            assert_eq!(got, &vec![7, 8]);
        }
        // 2 items * 5 leaves
        assert_eq!(st.messages, 10);
        assert_eq!(st.max_link_load, 2);
    }
}
