//! Distributed BFS spanning tree of the communication graph.

use crate::engine::{EngineConfig, Network, RunOutcome};
use crate::message::{Envelope, MsgSize};
use crate::metrics::RunStats;
use crate::outbox::Outbox;
use crate::protocol::{NodeCtx, Protocol, Round};
use dw_graph::{NodeId, WGraph};

/// A rooted spanning tree of the communication graph, as computed by
/// [`build_bfs_tree`]. `parent[root] == None`; nodes unreachable from the
/// root (disconnected communication graph) also have `parent == None` and
/// `depth == u64::MAX`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsTree {
    pub root: NodeId,
    pub parent: Vec<Option<NodeId>>,
    pub depth: Vec<u64>,
    pub children: Vec<Vec<NodeId>>,
}

impl BfsTree {
    /// Tree height (max depth over reachable nodes).
    pub fn height(&self) -> u64 {
        self.depth
            .iter()
            .copied()
            .filter(|&d| d != u64::MAX)
            .max()
            .unwrap_or(0)
    }

    /// Number of nodes in the tree (reachable from root).
    pub fn size(&self) -> usize {
        self.depth.iter().filter(|&&d| d != u64::MAX).count()
    }
}

/// Join announcement: `(depth_of_sender, parent_of_sender)`.
/// A neighbor that hears `u` announce parent `p == me` learns `u` is its
/// child; a neighbor without a parent adopts the sender.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Join {
    depth: u64,
    parent: NodeId,
}

impl MsgSize for Join {
    fn size_words(&self) -> usize {
        2
    }
}

struct BfsNode {
    root: NodeId,
    depth: Option<u64>,
    parent: Option<NodeId>,
    announced: bool,
    children: Vec<NodeId>,
}

impl Protocol for BfsNode {
    type Msg = Join;

    fn init(&mut self, ctx: &NodeCtx) {
        if ctx.id == self.root {
            self.depth = Some(0);
        }
    }

    fn send(&mut self, _round: Round, ctx: &NodeCtx, out: &mut Outbox<Join>) {
        if let (Some(d), false) = (self.depth, self.announced) {
            self.announced = true;
            out.broadcast(Join {
                depth: d,
                // the root announces itself as its own parent
                parent: self.parent.unwrap_or(ctx.id),
            });
        }
    }

    fn receive(&mut self, _round: Round, inbox: &[Envelope<Join>], ctx: &NodeCtx) {
        for e in inbox {
            if e.msg().parent == ctx.id && e.from != ctx.id {
                self.children.push(e.from);
            }
            if self.depth.is_none() {
                // inbox is sorted by sender id, so ties pick the smallest id
                self.depth = Some(e.msg().depth + 1);
                self.parent = Some(e.from);
            }
        }
    }

    fn earliest_send(&self, after: Round, _ctx: &NodeCtx) -> Option<Round> {
        if self.depth.is_some() && !self.announced {
            Some(after)
        } else {
            None
        }
    }
}

/// Build a BFS spanning tree rooted at `root`. Runs in `height + 2` rounds.
pub fn build_bfs_tree(g: &WGraph, root: NodeId, cfg: EngineConfig) -> (BfsTree, RunStats) {
    let mut net = Network::new(g, cfg, |_| BfsNode {
        root,
        depth: None,
        parent: None,
        announced: false,
        children: Vec::new(),
    });
    let outcome = net.run(2 * g.n() as u64 + 4);
    debug_assert_eq!(outcome, RunOutcome::Quiet);
    let stats = net.stats();
    let nodes = net.into_nodes();
    let mut parent = Vec::with_capacity(nodes.len());
    let mut depth = Vec::with_capacity(nodes.len());
    let mut children = Vec::with_capacity(nodes.len());
    for nd in nodes {
        parent.push(nd.parent);
        depth.push(nd.depth.unwrap_or(u64::MAX));
        let mut ch = nd.children;
        ch.sort_unstable();
        children.push(ch);
    }
    (
        BfsTree {
            root,
            parent,
            depth,
            children,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_graph::gen::{self, WeightDist};
    use dw_graph::GraphBuilder;

    #[test]
    fn tree_on_path() {
        let g = gen::path(5, false, WeightDist::Constant(1), 0);
        let (t, st) = build_bfs_tree(&g, 0, EngineConfig::default());
        assert_eq!(t.parent, vec![None, Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(t.depth, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.children[0], vec![1]);
        assert_eq!(t.children[4], Vec::<NodeId>::new());
        assert_eq!(t.height(), 4);
        assert!(st.rounds <= 6);
    }

    #[test]
    fn tree_respects_comm_graph_of_directed_edges() {
        // directed edges 1->0, 2->1: communication is still bidirectional
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(1, 0, 3).add_edge(2, 1, 3);
        let g = b.build();
        let (t, _) = build_bfs_tree(&g, 0, EngineConfig::default());
        assert_eq!(t.parent, vec![None, Some(0), Some(1)]);
        assert_eq!(t.size(), 3);
    }

    #[test]
    fn smallest_id_parent_on_ties() {
        // diamond: 0-1, 0-2, 1-3, 2-3; node 3 hears 1 and 2 in same round
        let mut b = GraphBuilder::new(4, false);
        b.add_edge(0, 1, 1)
            .add_edge(0, 2, 1)
            .add_edge(1, 3, 1)
            .add_edge(2, 3, 1);
        let g = b.build();
        let (t, _) = build_bfs_tree(&g, 0, EngineConfig::default());
        assert_eq!(t.parent[3], Some(1));
        assert_eq!(t.children[1], vec![3]);
        assert!(t.children[2].is_empty());
    }

    #[test]
    fn disconnected_nodes_marked() {
        let mut b = GraphBuilder::new(4, false);
        b.add_edge(0, 1, 1).add_edge(2, 3, 1);
        let g = b.build();
        let (t, _) = build_bfs_tree(&g, 0, EngineConfig::default());
        assert_eq!(t.size(), 2);
        assert_eq!(t.parent[2], None);
        assert_eq!(t.depth[3], u64::MAX);
    }

    #[test]
    fn random_graph_tree_is_spanning_and_bfs() {
        let g = gen::gnp_connected(60, 0.05, false, WeightDist::Constant(1), 3);
        let (t, _) = build_bfs_tree(&g, 7, EngineConfig::default());
        assert_eq!(t.size(), 60);
        // BFS property: child depth = parent depth + 1, and depth equals
        // hop distance (verified against a local BFS)
        for v in g.nodes() {
            if let Some(p) = t.parent[v as usize] {
                assert_eq!(t.depth[v as usize], t.depth[p as usize] + 1);
                assert!(g.comm_neighbors(v).contains(&p));
            }
        }
        let mut dist = vec![u64::MAX; 60];
        dist[7] = 0;
        let mut q = std::collections::VecDeque::from([7u32]);
        while let Some(v) = q.pop_front() {
            for &u in g.comm_neighbors(v) {
                if dist[u as usize] == u64::MAX {
                    dist[u as usize] = dist[v as usize] + 1;
                    q.push_back(u);
                }
            }
        }
        assert_eq!(dist, t.depth);
    }
}
