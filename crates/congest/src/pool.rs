//! Persistent worker pool for the engine's parallel phases.
//!
//! The previous engine spawned a fresh `std::thread::scope` (and fresh OS
//! threads) every round, which dominates the cost of cheap rounds. This
//! pool keeps the workers alive for the lifetime of the [`crate::Network`]
//! and hands them borrowed closures per phase, scoped-threadpool style:
//! [`WorkerPool::run`] blocks until every submitted job has completed, so
//! borrows captured by the jobs cannot dangle even though the worker
//! threads themselves are `'static`.
//!
//! Determinism: the pool executes jobs in an arbitrary order on arbitrary
//! threads, so callers must make jobs write to disjoint, pre-assigned
//! slots (chunk-ordered result merging). The engine's parallel phases do
//! exactly that — each job owns a contiguous index range of nodes.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A job as stored in the queue. Jobs are type-erased and lifetime-erased;
/// `WorkerPool::run` guarantees they finish before the borrowed data they
/// capture goes away.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Completion signal: `None` for success, `Some(payload)` for a panic.
type Done = Option<Box<dyn Any + Send + 'static>>;

pub struct WorkerPool {
    job_tx: Option<Sender<Job>>,
    job_rx: Arc<Mutex<Receiver<Job>>>,
    done_tx: Sender<Done>,
    done_rx: Receiver<Done>,
    handles: Vec<JoinHandle<()>>,
}

fn worker_loop(job_rx: Arc<Mutex<Receiver<Job>>>, done_tx: Sender<Done>) {
    loop {
        // Hold the lock only while dequeuing, not while running the job.
        let job = match job_rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return, // poisoned: a peer panicked while dequeuing
        };
        match job {
            Ok(job) => {
                let result = catch_unwind(AssertUnwindSafe(job));
                // The pool owner may only be mid-teardown; a closed done
                // channel just means nobody is waiting anymore.
                let _ = done_tx.send(result.err());
            }
            Err(_) => return, // queue closed: pool is being dropped
        }
    }
}

impl WorkerPool {
    /// Spawn a pool with `threads` persistent workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (job_tx, job_rx) = channel::<Job>();
        let (done_tx, done_rx) = channel::<Done>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let handles = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&job_rx);
                let tx = done_tx.clone();
                std::thread::spawn(move || worker_loop(rx, tx))
            })
            .collect();
        WorkerPool {
            job_tx: Some(job_tx),
            job_rx,
            done_tx,
            done_rx,
            handles,
        }
    }

    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Run `jobs` to completion across the workers (the calling thread
    /// also executes jobs while it waits). Blocks until **all** jobs have
    /// finished — only then, if any job panicked, resumes the first panic
    /// on the caller. That all-complete barrier is what makes the
    /// lifetime erasure below sound: no job can outlive this call, hence
    /// none can outlive the `'env` borrows it captured.
    pub fn run<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let total = jobs.len();
        if total == 0 {
            return;
        }
        let job_tx = self.job_tx.as_ref().expect("pool not torn down");
        for job in jobs {
            // SAFETY: lifetime erasure only. The job is executed either by
            // a worker (completion counted below) or inline by this
            // thread; we do not return until `total` completions are
            // accounted for, so the `'env` data outlives every job.
            let job: Job = unsafe {
                std::mem::transmute::<
                    Box<dyn FnOnce() + Send + 'env>,
                    Box<dyn FnOnce() + Send + 'static>,
                >(job)
            };
            job_tx.send(job).expect("worker pool queue closed");
        }

        let mut completed = 0usize;
        let mut first_panic: Option<Box<dyn Any + Send>> = None;

        // Help out: drain jobs on the calling thread while workers churn.
        loop {
            let job = match self.job_rx.try_lock() {
                Ok(rx) => rx.try_recv().ok(),
                Err(_) => None,
            };
            match job {
                Some(job) => {
                    let result = catch_unwind(AssertUnwindSafe(job));
                    if let Err(p) = result {
                        if first_panic.is_none() {
                            first_panic = Some(p);
                        }
                    }
                    completed += 1;
                }
                None => break,
            }
        }

        // Wait for the workers' completions. Even if a job panicked we
        // keep waiting for the rest — returning early would let in-flight
        // jobs race the caller's unwinding (and its borrows).
        while completed < total {
            match self.done_rx.recv() {
                Ok(done) => {
                    if let Some(p) = done {
                        if first_panic.is_none() {
                            first_panic = Some(p);
                        }
                    }
                    completed += 1;
                }
                Err(_) => unreachable!("pool owns done_tx, channel cannot close"),
            }
        }

        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channel makes every worker's recv fail -> exit.
        self.job_tx.take();
        let _ = &self.done_tx; // kept alive so done_rx.recv can't spuriously fail mid-run
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A raw-pointer wrapper that lets jobs write to *disjoint* indices of a
/// shared buffer from multiple threads. `Copy` so closures can capture it
/// by value.
///
/// Safety contract (caller's obligation): every index is written by at
/// most one job per [`WorkerPool::run`] call, and the underlying buffer
/// outlives the call (guaranteed by `run`'s completion barrier).
pub(crate) struct Ptr<T>(pub *mut T);

impl<T> Clone for Ptr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Ptr<T> {}

// SAFETY: see the disjointness contract above; Ptr is only constructed by
// the engine's parallel phases, which partition indices across jobs.
unsafe impl<T> Send for Ptr<T> {}
unsafe impl<T> Sync for Ptr<T> {}

impl<T> Ptr<T> {
    /// # Safety
    /// `idx` must be in bounds and not concurrently accessed by any other
    /// job in the same `run` call.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn at(&self, idx: usize) -> &mut T {
        &mut *self.0.add(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_jobs_with_borrowed_state() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        for _ in 0..3 {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
                .map(|_| {
                    let c = &counter;
                    Box::new(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(jobs);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 192);
    }

    #[test]
    fn disjoint_writes_land_in_order() {
        let pool = WorkerPool::new(3);
        let mut out = vec![0usize; 100];
        let ptr = Ptr(out.as_mut_ptr());
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..100)
            .map(|i| {
                Box::new(move || unsafe {
                    *ptr.at(i) = i * i;
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn panics_propagate_after_all_jobs_finish() {
        let pool = WorkerPool::new(2);
        let done = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..10)
                .map(|i| {
                    let d = &done;
                    Box::new(move || {
                        if i == 3 {
                            panic!("job 3 exploded");
                        }
                        d.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(jobs);
        }));
        assert!(result.is_err());
        // Every non-panicking job still ran to completion.
        assert_eq!(done.load(Ordering::Relaxed), 9);
        // The pool survives a panicking batch.
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(|| {})];
        pool.run(jobs);
    }
}
