//! Reliable delivery over faulty links: a generic protocol adapter.
//!
//! [`Reliable<P>`] wraps any [`Protocol`] and turns the engine's (possibly
//! fault-injected, see [`crate::fault`]) links into per-link reliable FIFO
//! channels, using the classic machinery:
//!
//! * every inner message becomes a `Data { seq, ack, payload }` frame with
//!   a per-directed-link sequence number; transmission is **windowed** —
//!   a fresh frame goes out even while earlier ones await their acks, so
//!   a fault-free link keeps the engine's native one-frame-per-round
//!   throughput and the wrapped protocol's timing;
//! * receivers deliver strictly in sequence order, buffering out-of-order
//!   frames and suppressing duplicates;
//! * acknowledgments are cumulative and piggybacked on data frames, with
//!   standalone `Ack` frames when a link has nothing to say;
//! * unacknowledged frames are retransmitted after
//!   [`ReliableConfig::retry_after`] silent rounds, at most
//!   [`ReliableConfig::max_retries`] times (a link whose frame exhausts its
//!   retries is declared dead — fail-stop semantics).
//!
//! Termination detection is **ack-drained quiescence**: the wrapper's
//! [`Protocol::earliest_send`] keeps the engine awake exactly while some
//! frame is unacknowledged or some acknowledgment is still owed, so
//! [`crate::engine::Network::run`] returns `Quiet` precisely when every
//! delivered frame has been acknowledged *and* the inner protocol itself
//! has gone quiet. No extra control rounds are spent when the network is
//! fault-free beyond the acknowledgment traffic itself.
//!
//! The inner protocol sees the same interface as on a reliable network:
//! its messages arrive exactly once, in per-link order, merely later than
//! scheduled. Pipelined protocols absorb that slack through their
//! late-send re-arm path (`find_send` with `<= r`), which is what the
//! `dw-pipeline` recovery layer measures.

use crate::message::{Envelope, MsgSize};
use crate::outbox::{Outbox, SendOp};
use crate::protocol::{NodeCtx, Protocol, Round};
use dw_graph::NodeId;
use std::collections::BTreeMap;

/// Retry policy for [`Reliable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Rounds to wait for an acknowledgment before retransmitting.
    /// The minimum useful value is 3 (send, ack back, slack).
    pub retry_after: Round,
    /// Retransmissions allowed per frame before the whole outgoing link is
    /// declared dead (fail-stop). Use a large value for lossy-but-alive
    /// links; permanent outages are what this bound is for.
    pub max_retries: u32,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            retry_after: 4,
            max_retries: 64,
        }
    }
}

/// Per-node accounting of the reliability machinery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Data frames put on the wire (first transmissions + retries).
    pub data_sent: u64,
    /// Retransmissions of previously sent frames.
    pub retries: u64,
    /// Standalone ack frames sent.
    pub acks_sent: u64,
    /// Duplicate frames received and suppressed.
    pub dups_suppressed: u64,
    /// Frames that arrived ahead of sequence (a gap before them) and had
    /// to be buffered — direct evidence the link reordered deliveries.
    pub reordered: u64,
    /// Frames delivered to the inner protocol (exactly-once, in order).
    pub delivered: u64,
    /// Frames (and their queued successors) discarded on dead links.
    pub abandoned: u64,
}

impl ReliableStats {
    /// Elementwise sum, for aggregating across nodes.
    pub fn merge(&self, other: &ReliableStats) -> ReliableStats {
        ReliableStats {
            data_sent: self.data_sent + other.data_sent,
            retries: self.retries + other.retries,
            acks_sent: self.acks_sent + other.acks_sent,
            dups_suppressed: self.dups_suppressed + other.dups_suppressed,
            reordered: self.reordered + other.reordered,
            delivered: self.delivered + other.delivered,
            abandoned: self.abandoned + other.abandoned,
        }
    }
}

/// Wire frame of the reliable channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RMsg<M> {
    /// A payload frame. `ack` piggybacks the cumulative acknowledgment for
    /// the reverse direction of this link.
    Data { seq: u32, ack: u32, payload: M },
    /// A standalone cumulative acknowledgment.
    Ack { ack: u32 },
}

impl<M: MsgSize> MsgSize for RMsg<M> {
    fn size_words(&self) -> usize {
        match self {
            // seq + ack are two O(log n)-bit counters.
            RMsg::Data { payload, .. } => 2 + payload.size_words(),
            RMsg::Ack { .. } => 1,
        }
    }
}

/// An unacknowledged outgoing frame.
#[derive(Debug, Clone)]
struct PendingFrame<M> {
    seq: u32,
    payload: M,
    /// Round of the last transmission (0 = never sent).
    last_sent: Round,
    retries: u32,
}

/// Outgoing half of one directed link.
#[derive(Debug, Clone)]
struct OutLink<M> {
    next_seq: u32,
    queue: Vec<PendingFrame<M>>,
    /// Set when retries were exhausted; the link sends nothing ever again.
    dead: bool,
}

impl<M> OutLink<M> {
    fn new() -> Self {
        OutLink {
            next_seq: 1,
            queue: Vec::new(),
            dead: false,
        }
    }
}

/// Incoming half of one directed link.
#[derive(Debug, Clone)]
struct InLink<M> {
    /// Next in-order sequence number to deliver.
    expected: u32,
    /// Buffered out-of-order frames.
    ooo: BTreeMap<u32, M>,
    /// An acknowledgment is owed (new data arrived, or a duplicate showed
    /// the sender missed our previous ack).
    ack_dirty: bool,
}

impl<M> InLink<M> {
    fn new() -> Self {
        InLink {
            expected: 1,
            ooo: BTreeMap::new(),
            ack_dirty: false,
        }
    }

    fn cum_ack(&self) -> u32 {
        self.expected - 1
    }
}

/// The reliable-channel adapter. See the module docs.
pub struct Reliable<P: Protocol> {
    inner: P,
    cfg: ReliableConfig,
    /// Indexed by neighbor rank in `ctx.comm_neighbors()`.
    out: Vec<OutLink<P::Msg>>,
    inl: Vec<InLink<P::Msg>>,
    stats: ReliableStats,
    /// Reused scratch for the inner protocol's sends (per-round
    /// allocation-free once warm).
    inner_out: Outbox<P::Msg>,
    /// Reused scratch for in-order deliveries to the inner protocol.
    staged: Vec<Envelope<P::Msg>>,
}

impl<P: Protocol> Reliable<P> {
    pub fn new(inner: P, cfg: ReliableConfig) -> Self {
        assert!(cfg.retry_after >= 1, "retry_after must be at least 1 round");
        Reliable {
            inner,
            cfg,
            out: Vec::new(),
            inl: Vec::new(),
            stats: ReliableStats::default(),
            inner_out: Outbox::new(),
            staged: Vec::new(),
        }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwrap, discarding channel state.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// This node's reliability accounting.
    pub fn stats(&self) -> &ReliableStats {
        &self.stats
    }

    /// Frames currently waiting for acknowledgment.
    pub fn unacked_frames(&self) -> usize {
        self.out.iter().map(|l| l.queue.len()).sum()
    }

    fn rank_of(&self, ctx: &NodeCtx, v: NodeId) -> usize {
        ctx.comm_neighbors()
            .binary_search(&v)
            .unwrap_or_else(|_| panic!("protocol bug: {} is not a neighbor of {}", v, ctx.id))
    }

    fn enqueue(&mut self, rank: usize, payload: P::Msg) {
        let link = &mut self.out[rank];
        if link.dead {
            self.stats.abandoned += 1;
            return;
        }
        let seq = link.next_seq;
        link.next_seq += 1;
        link.queue.push(PendingFrame {
            seq,
            payload,
            last_sent: 0,
            retries: 0,
        });
    }

    /// Process a cumulative acknowledgment for `rank`.
    fn absorb_ack(&mut self, rank: usize, ack: u32) {
        self.out[rank].queue.retain(|f| f.seq > ack);
    }
}

impl<P: Protocol> Protocol for Reliable<P> {
    type Msg = RMsg<P::Msg>;

    fn init(&mut self, ctx: &NodeCtx) {
        let deg = ctx.comm_neighbors().len();
        self.out = (0..deg).map(|_| OutLink::new()).collect();
        self.inl = (0..deg).map(|_| InLink::new()).collect();
        self.inner.init(ctx);
    }

    fn send(&mut self, round: Round, ctx: &NodeCtx, out: &mut Outbox<Self::Msg>) {
        // 1. Collect the inner protocol's sends for this round and queue
        //    them on their links.
        self.inner.send(round, ctx, &mut self.inner_out);
        let mut ops = self.inner_out.take_ops();
        for op in ops.drain(..) {
            match op {
                SendOp::Broadcast(m) => {
                    for rank in 0..self.out.len() {
                        self.enqueue(rank, m.clone());
                    }
                }
                SendOp::Unicast(v, m) => {
                    let rank = self.rank_of(ctx, v);
                    self.enqueue(rank, m);
                }
            }
        }
        self.inner_out.restore(ops);

        // 2. One frame per link: the oldest *due* data frame if any,
        //    otherwise a standalone ack if one is owed. The window is the
        //    whole queue — a never-sent frame is due immediately even
        //    while earlier frames are still awaiting their acks, so a
        //    fault-free link keeps the raw one-frame-per-round throughput
        //    (stop-and-wait would halve it and skew every pipelined
        //    schedule); sent frames become due again only at their retry
        //    timeout.
        for rank in 0..self.out.len() {
            let v = ctx.comm_neighbors()[rank];
            let ack = self.inl[rank].cum_ack();
            let link = &mut self.out[rank];
            if link.dead {
                continue;
            }
            let due = link
                .queue
                .iter()
                .position(|f| f.last_sent == 0 || f.last_sent + self.cfg.retry_after <= round);
            if let Some(i) = due {
                if link.queue[i].last_sent != 0 && link.queue[i].retries >= self.cfg.max_retries {
                    // Fail-stop: this link never delivered frame `seq`
                    // despite max_retries attempts; everything queued
                    // behind it can never be delivered in order.
                    self.stats.abandoned += link.queue.len() as u64;
                    link.queue.clear();
                    link.dead = true;
                    continue;
                }
                let frame = &mut link.queue[i];
                if frame.last_sent != 0 {
                    frame.retries += 1;
                    self.stats.retries += 1;
                }
                frame.last_sent = round;
                let seq = frame.seq;
                let payload = frame.payload.clone();
                out.unicast(v, RMsg::Data { seq, ack, payload });
                self.stats.data_sent += 1;
                self.inl[rank].ack_dirty = false;
            } else if self.inl[rank].ack_dirty {
                out.unicast(v, RMsg::Ack { ack });
                self.stats.acks_sent += 1;
                self.inl[rank].ack_dirty = false;
            }
        }
    }

    fn receive(&mut self, round: Round, inbox: &[Envelope<Self::Msg>], ctx: &NodeCtx) {
        let mut staged = std::mem::take(&mut self.staged);
        for env in inbox {
            let rank = self.rank_of(ctx, env.from);
            match env.msg() {
                RMsg::Ack { ack } => self.absorb_ack(rank, *ack),
                RMsg::Data { seq, ack, payload } => {
                    self.absorb_ack(rank, *ack);
                    let link = &mut self.inl[rank];
                    if *seq < link.expected {
                        // Already delivered: the sender missed our ack.
                        self.stats.dups_suppressed += 1;
                        link.ack_dirty = true;
                    } else if *seq == link.expected {
                        staged.push(Envelope::new(env.from, payload.clone()));
                        link.expected += 1;
                        // Drain any out-of-order frames this unblocks.
                        while let Some(m) = link.ooo.remove(&link.expected) {
                            staged.push(Envelope::new(env.from, m));
                            link.expected += 1;
                        }
                        link.ack_dirty = true;
                    } else {
                        // Future frame: buffer once.
                        if link.ooo.insert(*seq, payload.clone()).is_some() {
                            self.stats.dups_suppressed += 1;
                        } else {
                            self.stats.reordered += 1;
                        }
                        link.ack_dirty = true;
                    }
                }
            }
        }
        if !staged.is_empty() {
            // `inbox` is sorted by sender and per-link delivery is in
            // sequence order, so `staged` is already sorted by sender.
            self.stats.delivered += staged.len() as u64;
            self.inner.receive(round, &staged, ctx);
        }
        staged.clear();
        self.staged = staged;
    }

    fn earliest_send(&self, after: Round, ctx: &NodeCtx) -> Option<Round> {
        let mut next: Option<Round> = None;
        let mut consider = |r: Round| {
            let r = r.max(after);
            next = Some(next.map_or(r, |cur: Round| cur.min(r)));
        };
        for link in &self.out {
            if link.dead {
                continue;
            }
            for f in &link.queue {
                if f.last_sent == 0 {
                    consider(after);
                    break;
                }
                consider(f.last_sent + self.cfg.retry_after);
            }
        }
        if self.inl.iter().any(|l| l.ack_dirty) {
            consider(after);
        }
        if let Some(r) = self.inner.earliest_send(after, ctx) {
            consider(r);
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, Network, RunOutcome};
    use crate::fault::{FaultPlan, Outage};
    use dw_graph::gen::{self, WeightDist};
    use dw_graph::WGraph;

    /// Unweighted BFS flood (announce-once), the canonical fragile
    /// protocol: a single lost announcement leaves wrong distances.
    struct Flood {
        dist: Option<u64>,
        announced: bool,
    }

    impl Protocol for Flood {
        type Msg = u64;
        fn init(&mut self, ctx: &NodeCtx) {
            if ctx.id == 0 {
                self.dist = Some(0);
            }
        }
        fn send(&mut self, _round: Round, _ctx: &NodeCtx, out: &mut Outbox<u64>) {
            if let (Some(d), false) = (self.dist, self.announced) {
                self.announced = true;
                out.broadcast(d);
            }
        }
        fn receive(&mut self, _round: Round, inbox: &[Envelope<u64>], _ctx: &NodeCtx) {
            for e in inbox {
                let cand = *e.msg() + 1;
                if self.dist.is_none_or(|d| cand < d) {
                    self.dist = Some(cand);
                    self.announced = false;
                }
            }
        }
        fn earliest_send(&self, after: Round, _ctx: &NodeCtx) -> Option<Round> {
            if self.dist.is_some() && !self.announced {
                Some(after)
            } else {
                None
            }
        }
    }

    fn hop_dists(g: &WGraph, s: NodeId) -> Vec<u64> {
        let mut dist = vec![u64::MAX; g.n()];
        dist[s as usize] = 0;
        let mut q = std::collections::VecDeque::from([s]);
        while let Some(v) = q.pop_front() {
            for &u in g.comm_neighbors(v) {
                if dist[u as usize] == u64::MAX {
                    dist[u as usize] = dist[v as usize] + 1;
                    q.push_back(u);
                }
            }
        }
        dist
    }

    fn reliable_flood(
        g: &WGraph,
        faults: Option<FaultPlan>,
        rc: ReliableConfig,
        budget: Round,
    ) -> (Vec<Option<u64>>, ReliableStats, RunOutcome) {
        let cfg = EngineConfig {
            faults,
            ..EngineConfig::default()
        };
        let mut net = Network::new(g, cfg, |_| {
            Reliable::new(
                Flood {
                    dist: None,
                    announced: false,
                },
                rc,
            )
        });
        let outcome = net.run(budget);
        let dists = net.nodes().map(|r| r.inner().dist).collect();
        let stats = net
            .nodes()
            .fold(ReliableStats::default(), |acc, r| acc.merge(r.stats()));
        (dists, stats, outcome)
    }

    #[test]
    fn fault_free_wrap_preserves_results() {
        let g = gen::gnp_connected(32, 0.12, false, WeightDist::Constant(1), 5);
        let (dists, stats, outcome) = reliable_flood(&g, None, ReliableConfig::default(), 10_000);
        assert_eq!(outcome, RunOutcome::Quiet);
        let expect = hop_dists(&g, 0);
        for (v, d) in dists.iter().enumerate() {
            assert_eq!(d.unwrap(), expect[v], "node {v}");
        }
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.dups_suppressed, 0);
        assert_eq!(stats.abandoned, 0);
        assert_eq!(stats.delivered, stats.data_sent);
    }

    #[test]
    fn survives_heavy_drops() {
        let g = gen::gnp_connected(24, 0.15, false, WeightDist::Constant(1), 8);
        let plan = FaultPlan::drop_only(1234, 0.3);
        let (dists, stats, outcome) =
            reliable_flood(&g, Some(plan), ReliableConfig::default(), 50_000);
        assert_eq!(outcome, RunOutcome::Quiet);
        let expect = hop_dists(&g, 0);
        for (v, d) in dists.iter().enumerate() {
            assert_eq!(d.unwrap(), expect[v], "node {v}");
        }
        assert!(stats.retries > 0, "30% drop must force retransmissions");
        assert_eq!(stats.abandoned, 0);
    }

    #[test]
    fn survives_duplicates_and_delays() {
        let g = gen::gnp_connected(20, 0.2, false, WeightDist::Constant(1), 3);
        let plan = FaultPlan::new(77).with_duplicate(0.15).with_delay(0.15, 5);
        let (dists, stats, outcome) =
            reliable_flood(&g, Some(plan), ReliableConfig::default(), 50_000);
        assert_eq!(outcome, RunOutcome::Quiet);
        let expect = hop_dists(&g, 0);
        for (v, d) in dists.iter().enumerate() {
            assert_eq!(d.unwrap(), expect[v], "node {v}");
        }
        assert!(stats.dups_suppressed > 0);
    }

    #[test]
    fn transient_outage_is_ridden_out() {
        let g = gen::path(4, false, WeightDist::Constant(1), 0);
        // Sever the middle link both ways for rounds 1..=10, then heal.
        let plan = FaultPlan::new(5).with_outage(Outage {
            from: 1,
            to: 2,
            start: 1,
            end: 10,
            symmetric: true,
        });
        let (dists, _, outcome) = reliable_flood(&g, Some(plan), ReliableConfig::default(), 10_000);
        assert_eq!(outcome, RunOutcome::Quiet);
        assert_eq!(
            dists.into_iter().map(Option::unwrap).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn permanent_outage_fail_stops() {
        let g = gen::path(3, false, WeightDist::Constant(1), 0);
        let plan = FaultPlan::new(9).with_outage(Outage {
            from: 1,
            to: 2,
            start: 1,
            end: u64::MAX,
            symmetric: true,
        });
        let rc = ReliableConfig {
            retry_after: 2,
            max_retries: 5,
        };
        let (dists, stats, outcome) = reliable_flood(&g, Some(plan), rc, 10_000);
        // The run must still terminate (fail-stop), with node 2 unreached.
        assert_eq!(outcome, RunOutcome::Quiet);
        assert!(stats.abandoned > 0);
        assert_eq!(dists[0], Some(0));
        assert_eq!(dists[1], Some(1));
        assert_eq!(dists[2], None);
    }

    /// Node 0 streams the values `1..=total` (one broadcast per round);
    /// receivers record what the wrapper hands their inner protocol.
    struct Streamer {
        total: u64,
        sent: u64,
        got: Vec<u64>,
    }

    impl Protocol for Streamer {
        type Msg = u64;
        fn send(&mut self, _round: Round, ctx: &NodeCtx, out: &mut Outbox<u64>) {
            if ctx.id == 0 && self.sent < self.total {
                self.sent += 1;
                out.broadcast(self.sent);
            }
        }
        fn receive(&mut self, _round: Round, inbox: &[Envelope<u64>], _ctx: &NodeCtx) {
            for e in inbox {
                self.got.push(*e.msg());
            }
        }
        fn earliest_send(&self, after: Round, ctx: &NodeCtx) -> Option<Round> {
            (ctx.id == 0 && self.sent < self.total).then_some(after)
        }
    }

    /// Heterogeneous per-link delays genuinely reorder deliveries (a
    /// round-`r` frame delayed by 6 arrives after the round-`r+1` frame
    /// delayed by 1); the sequence numbers must buffer the early frames
    /// and the retransmit machinery must fill the gaps, so every inner
    /// protocol still sees the stream exactly once, in order.
    #[test]
    fn link_delay_reordering_is_restored_to_order() {
        use crate::fault::LinkDelay;
        let mut b = dw_graph::GraphBuilder::new(3, false);
        b.add_edge(0, 1, 1).add_edge(0, 2, 1);
        let g = b.build();
        let total = 40;
        let plan = FaultPlan::new(2024)
            .with_link_delay(LinkDelay {
                from: 0,
                to: 1,
                p: 0.6,
                max_delay: 6,
            })
            .with_link_delay(LinkDelay {
                from: 0,
                to: 2,
                p: 0.25,
                max_delay: 2,
            });
        let cfg = EngineConfig {
            faults: Some(plan),
            ..EngineConfig::default()
        };
        let mut net = Network::new(&g, cfg, |_| {
            Reliable::new(
                Streamer {
                    total,
                    sent: 0,
                    got: Vec::new(),
                },
                ReliableConfig::default(),
            )
        });
        let outcome = net.run(10_000);
        assert_eq!(outcome, RunOutcome::Quiet);
        let stats = net
            .nodes()
            .fold(ReliableStats::default(), |acc, r| acc.merge(r.stats()));
        assert!(
            stats.reordered > 0,
            "the plan must actually reorder deliveries: {stats:?}"
        );
        assert!(
            stats.retries > 0,
            "delays past retry_after must force retransmits: {stats:?}"
        );
        assert!(
            stats.dups_suppressed > 0,
            "a delayed original arriving after its retransmit is a dup: {stats:?}"
        );
        let expect: Vec<u64> = (1..=total).collect();
        for (v, node) in net.nodes().enumerate() {
            if v > 0 {
                assert_eq!(
                    node.inner().got,
                    expect,
                    "node {v} must see the stream in order"
                );
            }
        }
        assert!(net.stats().delayed > 0, "engine must tally the delays");
    }

    #[test]
    fn frame_sizes_account_for_headers() {
        let d: RMsg<u64> = RMsg::Data {
            seq: 1,
            ack: 0,
            payload: 7,
        };
        assert_eq!(d.size_words(), 3);
        let a: RMsg<u64> = RMsg::Ack { ack: 1 };
        assert_eq!(a.size_words(), 1);
    }
}
