//! A deterministic simulator for the **CONGEST model** of distributed
//! computation (paper Section I-B).
//!
//! Model recap: `n` processors (nodes) joined by the links of a graph
//! `G = (V, E)`; if `G` is directed the links are still bidirectional, so
//! communication happens on the *underlying undirected* graph `U_G`.
//! Computation proceeds in synchronous rounds. In each round every node may
//! send **one message of `O(log n)` bits per incident link** (possibly a
//! different message per link), and it receives the messages sent to it in
//! that round. Local computation is free; the complexity measure is the
//! number of rounds.
//!
//! What this crate provides:
//!
//! * [`Protocol`] — the per-node program trait (send phase / receive phase);
//! * [`Network`] — the round engine, sequential or thread-parallel, with
//!   **hard enforcement** of the one-message-per-link-per-round and
//!   message-size constraints, schedule fast-forwarding for pipelined
//!   protocols with sparse send schedules, and full metrics (rounds,
//!   messages, per-link congestion, per-node send counts);
//! * [`primitives`] — distributed building blocks used by the blocker-set
//!   machinery: BFS spanning tree, pipelined tree broadcast, convergecast
//!   (global max);
//! * [`scheduler`] — a random-delay composition engine for running many
//!   protocol instances over shared links (the role Ghaffari's scheduling
//!   framework plays in the paper).

pub mod codec;
pub mod engine;
pub mod fault;
pub mod message;
pub mod metrics;
pub mod outbox;
pub mod pool;
pub mod primitives;
pub mod protocol;
pub mod reliable;
pub mod runner;
pub mod scheduler;
pub mod slab;
pub mod trace;

pub use codec::{from_bytes, to_bytes, WireCodec};
pub use engine::{EngineConfig, Network, RunOutcome, SchedulingMode};
pub use fault::{FaultAction, FaultPlan, LinkDelay, Outage};
pub use message::{Envelope, MsgSize};
pub use metrics::RunStats;
// Observability: re-export the recording surface so engine users don't
// need a direct dw-obs dependency for the common cases.
pub use dw_obs::{NullRecorder, ObsRecorder, Recorder, Recording, Span, SpanId};
pub use outbox::Outbox;
pub use protocol::{Checkpointable, NodeCtx, Protocol, Round};
pub use reliable::{Reliable, ReliableConfig, ReliableStats};
pub use runner::{NodeRunner, SendSink};
pub use trace::{RoundRecord, RoundTrace};
