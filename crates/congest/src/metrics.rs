//! Run metrics: everything the paper's bounds talk about.
//!
//! [`RunStats`] itself lives in `dw-obs` (the observability foundation
//! crate, below this one in the dependency order) so that recorded
//! spans can carry stat deltas without a dependency cycle. This module
//! re-exports it; all existing `dw_congest::metrics::RunStats` /
//! `dw_congest::RunStats` paths keep working unchanged.

pub use dw_obs::RunStats;
