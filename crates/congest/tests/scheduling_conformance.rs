//! Scheduling conformance: active-set scheduling must be bit-identical to
//! exhaustive polling — same `RunStats` (including `rounds_executed`),
//! same per-round traces, same final protocol states — across random
//! graphs, random fault plans, and both the sequential and the
//! thread-parallel execution paths.
//!
//! The protocol under test has a deliberately nasty schedule: sparse
//! phased first sends, receive-triggered re-announcements after a
//! per-node gap, and a finite announcement budget, so runs mix dormant
//! nodes, future wakeups, fast-forwarded stretches and quiescence.

use dw_congest::trace::RoundTrace;
use dw_congest::{
    EngineConfig, Envelope, FaultPlan, Network, NodeCtx, Outbox, Protocol, Round, RunOutcome,
    RunStats, SchedulingMode,
};
use dw_graph::{gen, gen::WeightDist, GraphBuilder, NodeId, WGraph};
use proptest::prelude::*;

/// Fires once at `next_fire`; every receive schedules a re-announcement
/// `gap` rounds later (while the budget lasts). `earliest_send` is exact.
#[derive(Clone, Debug, PartialEq, Eq)]
struct SparseRelay {
    next_fire: Option<Round>,
    gap: u64,
    remaining: u32,
    heard: u64,
}

impl SparseRelay {
    fn seeded(v: NodeId) -> Self {
        SparseRelay {
            // Every third node starts with its own phase; the rest are
            // dormant until woken by a neighbor.
            next_fire: v.is_multiple_of(3).then_some(1 + (u64::from(v) * 7) % 13),
            gap: 1 + u64::from(v) % 4,
            remaining: 2 + v % 3,
            heard: 0,
        }
    }
}

impl Protocol for SparseRelay {
    type Msg = u64;

    fn send(&mut self, round: Round, ctx: &NodeCtx, out: &mut Outbox<u64>) {
        if let Some(f) = self.next_fire {
            if round >= f {
                self.next_fire = None;
                if self.remaining > 0 {
                    self.remaining -= 1;
                    out.broadcast(self.heard.wrapping_add(u64::from(ctx.id)) % 1000);
                }
            }
        }
    }

    fn receive(&mut self, round: Round, inbox: &[Envelope<u64>], _ctx: &NodeCtx) {
        for e in inbox {
            self.heard = self.heard.wrapping_add(*e.msg());
        }
        if self.remaining > 0 && self.next_fire.is_none() {
            self.next_fire = Some(round + self.gap);
        }
    }

    fn earliest_send(&self, after: Round, _ctx: &NodeCtx) -> Option<Round> {
        self.next_fire.map(|f| f.max(after))
    }
}

fn arb_graph() -> impl Strategy<Value = WGraph> {
    (3usize..=14).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0u64..=6), 0..(3 * n));
        (Just(n), edges, any::<bool>()).prop_map(|(n, edges, directed)| {
            let mut b = GraphBuilder::new(n, directed);
            for (s, d, w) in edges {
                b.add_edge(s, d, w);
            }
            b.build()
        })
    })
}

fn arb_plan() -> impl Strategy<Value = Option<FaultPlan>> {
    (
        any::<bool>(),
        any::<u64>(),
        0u64..=15,
        0u64..=10,
        0u64..=10,
        1u64..=3,
    )
        .prop_map(|(faulty, seed, drop_pct, dup_pct, delay_pct, max_delay)| {
            faulty.then(|| {
                FaultPlan::new(seed)
                    .with_drop(drop_pct as f64 / 100.0)
                    .with_duplicate(dup_pct as f64 / 100.0)
                    .with_delay(delay_pct as f64 / 100.0, max_delay)
            })
        })
}

fn config(mode: SchedulingMode, parallel: bool, faults: Option<FaultPlan>) -> EngineConfig {
    EngineConfig {
        scheduling: mode,
        parallel_threshold: if parallel { 1 } else { usize::MAX },
        threads: 4,
        faults,
        ..EngineConfig::default()
    }
}

/// As [`config`], additionally pinning the schedule-shard count and the
/// density-fallback threshold (`> 1.0` disables the fallback entirely).
fn config_scaled(
    parallel: bool,
    faults: Option<FaultPlan>,
    shards: usize,
    dense_fraction: f64,
) -> EngineConfig {
    EngineConfig {
        schedule_shards: shards,
        dense_poll_fraction: dense_fraction,
        ..config(SchedulingMode::ActiveSet, parallel, faults)
    }
}

/// Step a network round by round (no fast-forward) capturing everything
/// observable.
fn traced(g: &WGraph, cfg: EngineConfig, rounds: u64) -> (Vec<SparseRelay>, RunStats, RoundTrace) {
    let mut net = Network::new(g, cfg, SparseRelay::seeded);
    let mut trace = RoundTrace::with_payloads();
    for _ in 0..rounds {
        net.step_traced(&mut trace);
    }
    let stats = net.stats();
    (net.into_nodes(), stats, trace)
}

/// Run to quiescence (exercises the fast-forward / heap-peek path).
fn full_run(
    g: &WGraph,
    cfg: EngineConfig,
    budget: u64,
) -> (Vec<SparseRelay>, RunStats, RunOutcome) {
    let mut net = Network::new(g, cfg, SparseRelay::seeded);
    let outcome = net.run(budget);
    let stats = net.stats();
    (net.into_nodes(), stats, outcome)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Stepped execution: every executed round must be bit-identical
    // (trace payloads included) between the scheduling modes.
    #[test]
    fn stepped_rounds_bit_identical_across_modes(
        g in arb_graph(), plan in arb_plan()
    ) {
        let (n_ex, s_ex, t_ex) = traced(
            &g, config(SchedulingMode::ExhaustivePoll, false, plan.clone()), 60);
        let (n_as, s_as, t_as) = traced(
            &g, config(SchedulingMode::ActiveSet, false, plan.clone()), 60);
        prop_assert_eq!(&n_ex, &n_as, "node states diverged");
        prop_assert_eq!(&s_ex, &s_as, "stats diverged");
        prop_assert_eq!(t_ex.records(), t_as.records(), "traces diverged");
        // And the parallel active-set path agrees too.
        let (n_p, s_p, t_p) = traced(
            &g, config(SchedulingMode::ActiveSet, true, plan), 60);
        prop_assert_eq!(&n_as, &n_p, "parallel node states diverged");
        prop_assert_eq!(&s_as, &s_p, "parallel stats diverged");
        prop_assert_eq!(t_as.records(), t_p.records(), "parallel traces diverged");
    }

    // Full runs: the fast-forward decisions (which rounds are simulated at
    // all — `rounds_executed`) must match exactly, as must quiescence
    // detection.
    #[test]
    fn full_runs_bit_identical_across_modes(
        g in arb_graph(), plan in arb_plan(), budget in 20u64..=200
    ) {
        let (n_ex, s_ex, o_ex) = full_run(
            &g, config(SchedulingMode::ExhaustivePoll, false, plan.clone()), budget);
        let (n_as, s_as, o_as) = full_run(
            &g, config(SchedulingMode::ActiveSet, false, plan.clone()), budget);
        prop_assert_eq!(o_ex, o_as, "outcome diverged");
        prop_assert_eq!(&n_ex, &n_as, "node states diverged");
        prop_assert_eq!(&s_ex, &s_as, "stats diverged (incl. rounds_executed)");
        let (n_p, s_p, o_p) = full_run(
            &g, config(SchedulingMode::ActiveSet, true, plan), budget);
        prop_assert_eq!(o_as, o_p);
        prop_assert_eq!(&n_as, &n_p);
        prop_assert_eq!(&s_as, &s_p);
    }

    // The schedule-shard count is a pure layout knob and the density
    // fallback is a pure fast path: every combination of shard count
    // {1, 2, n}, fallback threshold (always-dense 0.0, default-ish 0.4,
    // disabled 2.0), and sequential/parallel execution must reproduce the
    // exhaustive-poll reference bit for bit — stats (incl.
    // `rounds_executed`, so the fast-forward decisions match), traces,
    // and final node states — under faults too.
    #[test]
    fn shard_layout_and_density_fallback_bit_identical(
        g in arb_graph(), plan in arb_plan(), budget in 20u64..=200
    ) {
        let n = g.n();
        let (n_ex, s_ex, t_ex) = traced(
            &g, config(SchedulingMode::ExhaustivePoll, false, plan.clone()), 60);
        let (fn_ex, fs_ex, fo_ex) = full_run(
            &g, config(SchedulingMode::ExhaustivePoll, false, plan.clone()), budget);
        for shards in [1usize, 2, n] {
            for dense in [0.0f64, 0.4, 2.0] {
                for parallel in [false, true] {
                    let label = format!("shards={shards} dense={dense} parallel={parallel}");
                    let (n_s, s_s, t_s) = traced(
                        &g, config_scaled(parallel, plan.clone(), shards, dense), 60);
                    prop_assert_eq!(&n_ex, &n_s, "stepped states diverged: {}", &label);
                    prop_assert_eq!(&s_ex, &s_s, "stepped stats diverged: {}", &label);
                    prop_assert_eq!(
                        t_ex.records(), t_s.records(), "traces diverged: {}", &label);
                    let (fn_s, fs_s, fo_s) = full_run(
                        &g, config_scaled(parallel, plan.clone(), shards, dense), budget);
                    prop_assert_eq!(fo_ex, fo_s, "outcome diverged: {}", &label);
                    prop_assert_eq!(&fn_ex, &fn_s, "full-run states diverged: {}", &label);
                    prop_assert_eq!(&fs_ex, &fs_s, "full-run stats diverged: {}", &label);
                }
            }
        }
    }
}

/// Deterministic density-fallback crossing: a protocol whose active
/// fraction swings from everyone (flood wave) to a sparse trickle forces
/// both the dense-entry and the hysteresis exit transition, at several
/// shard layouts.
#[test]
fn density_fallback_transitions_are_bit_identical() {
    for (name, g) in [
        ("torus", gen::torus(5, 6, WeightDist::Constant(1), 7)),
        (
            "gnp",
            gen::gnp_connected(40, 0.15, false, WeightDist::Uniform { max: 4 }, 11),
        ),
    ] {
        let (n_ex, s_ex, o_ex) = full_run(
            &g,
            config(SchedulingMode::ExhaustivePoll, false, None),
            5_000,
        );
        for shards in [1usize, 3, g.n()] {
            // Threshold low enough that the initial flood enters dense
            // mode and the trailing re-announcement trickle exits it.
            let (n_s, s_s, o_s) = full_run(&g, config_scaled(false, None, shards, 0.25), 5_000);
            assert_eq!(o_ex, o_s, "{name}/shards={shards}: outcome");
            assert_eq!(s_ex, s_s, "{name}/shards={shards}: stats");
            assert_eq!(n_ex, n_s, "{name}/shards={shards}: states");
        }
    }
}

/// Deterministic spot check on a structured family with a long quiet
/// prefix: the heap-peek fast-forward must agree with the O(n) scan about
/// exactly which rounds get simulated.
#[test]
fn fast_forward_rounds_agree_on_structured_graphs() {
    for (name, g) in [
        ("path", gen::path(24, false, WeightDist::Constant(1), 0)),
        ("star", gen::star(16, false, WeightDist::Constant(1), 1)),
        ("torus", gen::torus(4, 6, WeightDist::Constant(1), 2)),
    ] {
        let (n_ex, s_ex, o_ex) = full_run(
            &g,
            config(SchedulingMode::ExhaustivePoll, false, None),
            5_000,
        );
        let (n_as, s_as, o_as) =
            full_run(&g, config(SchedulingMode::ActiveSet, false, None), 5_000);
        assert_eq!(o_ex, o_as, "{name}: outcome");
        assert_eq!(s_ex, s_as, "{name}: stats");
        assert_eq!(n_ex, n_as, "{name}: states");
    }
}

#[test]
#[ignore]
fn brute_force_divergence_hunt() {
    for n in 3usize..=6 {
        for seed in 0u64..400 {
            // Cheap LCG to vary edges deterministically.
            let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(n as u64);
            let mut rng = || {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s >> 33
            };
            let m = (rng() % (3 * n as u64)) as usize;
            let directed = rng() % 2 == 0;
            let mut b = GraphBuilder::new(n, directed);
            for _ in 0..m {
                let u = (rng() % n as u64) as u32;
                let v = (rng() % n as u64) as u32;
                let w = rng() % 7;
                b.add_edge(u, v, w);
            }
            let g = b.build();
            let budget = 20 + (rng() % 180);
            let (n_ex, s_ex, o_ex) = full_run(
                &g,
                config(SchedulingMode::ExhaustivePoll, false, None),
                budget,
            );
            let (n_as, s_as, o_as) =
                full_run(&g, config(SchedulingMode::ActiveSet, false, None), budget);
            if s_ex != s_as || n_ex != n_as || o_ex != o_as {
                panic!("DIVERGED n={n} seed={seed} budget={budget} directed={directed}\nex={s_ex:?}\nas={s_as:?}\ngraph edges: m={m}");
            }
        }
    }
}
