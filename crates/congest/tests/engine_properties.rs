//! Engine- and primitive-level integration tests: degenerate topologies,
//! fast-forward interactions, deterministic parallelism, and primitive
//! composition on the structured graph families.

use dw_congest::primitives::{build_bfs_tree, converge_max, converge_sum, pipeline_broadcast};
use dw_congest::{EngineConfig, Envelope, Network, NodeCtx, Outbox, Protocol, Round, RunOutcome};
use dw_graph::gen::{self, WeightDist};
use dw_graph::GraphBuilder;

/// Counts everything it hears and echoes once.
#[derive(Clone, Default)]
struct Echo {
    heard: u64,
    spoken: bool,
}

impl Protocol for Echo {
    type Msg = u64;
    fn send(&mut self, round: Round, ctx: &NodeCtx, out: &mut Outbox<u64>) {
        if round == 1 && ctx.id == 0 {
            out.broadcast(7);
        } else if self.heard > 0 && !self.spoken {
            self.spoken = true;
            out.broadcast(self.heard);
        }
    }
    fn receive(&mut self, _r: Round, inbox: &[Envelope<u64>], _c: &NodeCtx) {
        self.heard += inbox.len() as u64;
    }
    fn earliest_send(&self, after: Round, ctx: &NodeCtx) -> Option<Round> {
        if (ctx.id == 0 && after <= 1) || (self.heard > 0 && !self.spoken) {
            Some(after.max(1))
        } else {
            None
        }
    }
}

#[test]
fn single_node_network_is_trivially_quiet() {
    let g = gen::path(1, false, WeightDist::Constant(1), 0);
    let mut net = Network::new(&g, EngineConfig::default(), |_| Echo::default());
    assert_eq!(net.run(100), RunOutcome::Quiet);
    assert_eq!(net.stats().messages, 0);
    assert_eq!(net.stats().rounds, 0);
}

#[test]
fn disconnected_components_run_independently() {
    let mut b = GraphBuilder::new(5, false);
    b.add_edge(0, 1, 1).add_edge(2, 3, 1).add_edge(3, 4, 1);
    let g = b.build();
    let mut net = Network::new(&g, EngineConfig::default(), |_| Echo::default());
    assert_eq!(net.run(100), RunOutcome::Quiet);
    // 0 broadcasts to 1; 1 echoes; 0 echoes the echo (its round-1 special
    // send doesn't set `spoken`); then both are done. The 2-3-4 component
    // stays silent throughout.
    assert_eq!(net.node(1).heard, 2);
    assert_eq!(net.node(2).heard, 0);
    assert_eq!(net.node(4).heard, 0);
}

#[test]
fn parallel_engine_deterministic_across_thread_counts() {
    let g = gen::expanderish(48, 4, WeightDist::Constant(1), 9);
    let run = |threads: usize| {
        let cfg = EngineConfig {
            parallel_threshold: 1,
            threads,
            ..EngineConfig::default()
        };
        let mut net = Network::new(&g, cfg, |_| Echo::default());
        net.run(1000);
        (
            net.stats().clone(),
            net.nodes().map(|e| e.heard).collect::<Vec<_>>(),
        )
    };
    let (s1, h1) = run(1);
    let (s2, h2) = run(2);
    let (s3, h3) = run(7);
    assert_eq!(s1, s2);
    assert_eq!(s2, s3);
    assert_eq!(h1, h2);
    assert_eq!(h2, h3);
}

#[test]
fn primitives_compose_on_structured_families() {
    for (name, g) in [
        (
            "tree",
            gen::binary_tree(31, false, WeightDist::Constant(1), 0),
        ),
        ("torus", gen::torus(5, 5, WeightDist::Constant(1), 1)),
        ("barbell", gen::barbell(6, 5, WeightDist::Constant(1), 2)),
    ] {
        let (tree, _) = build_bfs_tree(&g, 0, EngineConfig::default());
        assert_eq!(tree.size(), g.n(), "{name}: spanning");

        // broadcast a payload, then convergecast aggregates over it
        let items: Vec<u64> = (0..5).map(|i| 100 + i).collect();
        let (received, _) = pipeline_broadcast(&g, &tree, items.clone(), EngineConfig::default());
        for (v, got) in received.iter().enumerate().skip(1) {
            assert_eq!(got, &items, "{name}: node {v}");
        }

        let values: Vec<u64> = (0..g.n() as u64).map(|v| (v * 13) % 97).collect();
        let ((mx, arg), _) = converge_max(&g, &tree, &values, EngineConfig::default());
        let expect = values
            .iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i)))
            .unwrap();
        assert_eq!((mx, arg as usize), (*expect.1, expect.0), "{name}: max");

        let (sum, _) = converge_sum(&g, &tree, &values, EngineConfig::default());
        assert_eq!(sum, values.iter().sum::<u64>(), "{name}: sum");
    }
}

#[test]
fn bfs_tree_height_matches_hop_distance_on_barbell() {
    let g = gen::barbell(5, 7, WeightDist::Constant(1), 4);
    let (tree, stats) = build_bfs_tree(&g, 0, EngineConfig::default());
    // root is inside the left clique: height = 1 (clique) .. bridge .. clique
    let expected_height = 1 + 7 + 1;
    assert_eq!(tree.height(), expected_height as u64);
    assert!(stats.rounds <= expected_height as u64 + 2);
}

/// Two LateSenders at different future rounds: fast-forward must hit both
/// in order without skipping either.
#[derive(Clone)]
struct TimedSender {
    fire_at: Round,
    sent: bool,
    heard_rounds: Vec<Round>,
}

impl Protocol for TimedSender {
    type Msg = u64;
    fn send(&mut self, round: Round, _ctx: &NodeCtx, out: &mut Outbox<u64>) {
        if !self.sent && round >= self.fire_at {
            self.sent = true;
            out.broadcast(round);
        }
    }
    fn receive(&mut self, round: Round, _inbox: &[Envelope<u64>], _c: &NodeCtx) {
        self.heard_rounds.push(round);
    }
    fn earliest_send(&self, after: Round, _ctx: &NodeCtx) -> Option<Round> {
        if self.sent {
            None
        } else {
            Some(after.max(self.fire_at))
        }
    }
}

#[test]
fn fast_forward_visits_every_scheduled_round() {
    let g = gen::path(3, false, WeightDist::Constant(1), 0);
    let fires = [50u64, 500, 5000];
    let mut net = Network::new(&g, EngineConfig::default(), |v| TimedSender {
        fire_at: fires[v as usize],
        sent: false,
        heard_rounds: Vec::new(),
    });
    assert_eq!(net.run(10_000), RunOutcome::Quiet);
    let st = net.stats();
    assert_eq!(st.rounds, 5000);
    assert!(st.rounds_executed <= 10, "executed {}", st.rounds_executed);
    // the middle node heard the endpoints exactly at their fire rounds
    assert_eq!(net.node(1).heard_rounds, vec![50, 5000]);
    assert_eq!(net.node(0).heard_rounds, vec![500]);
}
